#include "stats/rng.h"

#include <cmath>

namespace qrn::stats {

namespace {

constexpr std::uint64_t kWeyl = 0x9E3779B97F4A7C15ULL;

/// The splitmix64 output function (finalizer) alone, without advancing.
constexpr std::uint64_t splitmix64_mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += kWeyl;
    return splitmix64_mix(x);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& w : state_) w = splitmix64(s);
    // xoshiro must not start from the all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
        state_[0] = 1;
    }
}

Rng::result_type Rng::operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.141592653589793238462643383279502884 * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) noexcept {
    return mean + sigma * normal();
}

double Rng::exponential(double lambda) noexcept {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
        // Inversion by sequential search (Devroye).
        const double l = std::exp(-mean);
        std::uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > l);
        return k - 1;
    }
    // For large means, a normal approximation with continuity correction is
    // adequate for our workload modelling (relative error < 1% at mean>=30),
    // and keeps sampling deterministic and branch-simple.
    double draw = -1.0;
    while (draw < 0.0) draw = normal(mean, std::sqrt(mean)) + 0.5;
    return static_cast<std::uint64_t>(draw);
}

void Rng::fill_uniform(double* out, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = uniform();
}

void Rng::fill_poisson(const double* means, std::uint64_t* out,
                       std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = poisson(means[i]);
}

double Rng::lognormal(double mu_log, double sigma_log) noexcept {
    return std::exp(normal(mu_log, sigma_log));
}

Rng Rng::split() noexcept {
    return Rng((*this)());
}

std::uint64_t Rng::stream_seed(std::uint64_t seed, std::uint64_t stream_index) noexcept {
    // Whiten the seed first so nearby user seeds (42, 43, ...) map to
    // unrelated base points, then advance by `stream_index` Weyl steps and
    // finalize: exactly the splitmix64 sequence anchored at the whitened
    // seed, evaluated in closed form at position `stream_index`.
    const std::uint64_t base = splitmix64_mix(seed + kWeyl);
    return splitmix64_mix(base + (stream_index + 1) * kWeyl);
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_index) noexcept {
    return Rng(stream_seed(seed, stream_index));
}

}  // namespace qrn::stats
