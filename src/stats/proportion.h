// Interval estimation for proportions.
//
// Contribution fractions of the QRN (the share of an incident type's
// occurrences that land in each consequence class, e.g. the paper's
// "70% of f_I2 contributes to v_S1 and 30% to v_S2") are estimated from
// finite samples - accident databases or simulated incident logs. The
// safety argument needs conservative interval estimates for these shares,
// so we implement the standard exact and score intervals from scratch.
#pragma once

#include <cstdint>

namespace qrn::stats {

/// A two-sided confidence interval on a proportion in [0, 1].
struct ProportionInterval {
    double lower = 0.0;
    double upper = 0.0;
    double point = 0.0;       ///< successes / trials.
    double confidence = 0.0;  ///< Two-sided coverage, e.g. 0.95.
};

/// Wilson score interval. Good coverage for all n; never escapes [0, 1].
[[nodiscard]] ProportionInterval wilson_interval(std::uint64_t successes,
                                                 std::uint64_t trials,
                                                 double confidence);

/// Exact Clopper-Pearson interval via the regularized incomplete beta.
/// Conservative (coverage >= confidence for every true p).
[[nodiscard]] ProportionInterval clopper_pearson_interval(std::uint64_t successes,
                                                          std::uint64_t trials,
                                                          double confidence);

/// Jeffreys (Bayesian, Beta(1/2,1/2) prior) equal-tailed credible interval.
[[nodiscard]] ProportionInterval jeffreys_interval(std::uint64_t successes,
                                                   std::uint64_t trials,
                                                   double confidence);

}  // namespace qrn::stats
