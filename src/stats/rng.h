// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the toolkit (the Monte-Carlo fleet simulator,
// the MECE sampling certificate, property-based tests) draw from this RNG so
// that every figure and table in the repository regenerates bit-identically
// from a seed. The generator is xoshiro256++ seeded through splitmix64,
// which gives full 256-bit state from a single 64-bit seed and passes the
// usual statistical batteries.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace qrn::stats {

/// Deterministic 64-bit PRNG (xoshiro256++), seedable from one uint64.
///
/// Satisfies std::uniform_random_bit_generator so it can also be handed to
/// <random> distributions when convenient, but the member samplers below are
/// preferred because their output is stable across standard libraries.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the full 256-bit state from `seed` via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    /// Next raw 64-bit word.
    result_type operator()() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi). Requires lo <= hi.
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Standard normal via Box-Muller (stable across platforms).
    double normal() noexcept;

    /// Normal with the given mean and standard deviation (sigma >= 0).
    double normal(double mean, double sigma) noexcept;

    /// Exponential with the given rate lambda > 0 (mean 1/lambda).
    double exponential(double lambda) noexcept;

    /// Poisson count with the given mean >= 0. Uses inversion for small
    /// means and the PTRS transformed-rejection method for large ones.
    std::uint64_t poisson(double mean) noexcept;

    /// Batched draws for hot loops. Each fill consumes the generator
    /// exactly as the equivalent sequence of scalar calls would - out[i]
    /// is bit-identical to the i-th sequential draw (pinned by tests) -
    /// so call sites can batch without changing any downstream stream.
    void fill_uniform(double* out, std::size_t n) noexcept;

    /// out[i] = poisson(means[i]), drawn in index order; sequence-
    /// identical to n sequential poisson() calls.
    void fill_poisson(const double* means, std::uint64_t* out,
                      std::size_t n) noexcept;

    /// Log-normal: exp(N(mu_log, sigma_log)).
    double lognormal(double mu_log, double sigma_log) noexcept;

    /// Forks an independent stream; deterministic given this stream's state.
    /// NOTE: order-dependent (the fork consumes one draw of *this*), so the
    /// result depends on how many draws preceded the call. Parallel
    /// workloads must use the schedule-independent stream() instead - as of
    /// the importance-splitting work no production code calls split(); it
    /// stays only for sequential conveniences and its own tests.
    Rng split() noexcept;

    /// Seed of the `stream_index`-th independent substream of `seed`:
    /// the splitmix64 finalizer applied to the whitened seed advanced by
    /// `stream_index` Weyl steps. Pure in (seed, stream_index), so each
    /// fleet/sample/replicate can derive its own RNG regardless of which
    /// thread - or in what order - it runs.
    [[nodiscard]] static std::uint64_t stream_seed(
        std::uint64_t seed, std::uint64_t stream_index) noexcept;

    /// An Rng seeded from stream_seed(seed, stream_index).
    [[nodiscard]] static Rng stream(std::uint64_t seed,
                                    std::uint64_t stream_index) noexcept;

private:
    std::array<std::uint64_t, 4> state_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace qrn::stats
