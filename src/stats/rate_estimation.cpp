#include "stats/rate_estimation.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/distributions.h"
#include "stats/special_functions.h"

namespace qrn::stats {

namespace {

void require_valid(const RateObservation& obs, double confidence) {
    if (obs.exposure_hours <= 0.0) {
        throw std::invalid_argument("rate estimation: exposure_hours must be > 0");
    }
    if (confidence <= 0.0 || confidence >= 1.0) {
        throw std::invalid_argument("rate estimation: confidence must be in (0, 1)");
    }
}

}  // namespace

double rate_mle(const RateObservation& obs) {
    if (obs.exposure_hours <= 0.0) {
        throw std::invalid_argument("rate_mle: exposure_hours must be > 0");
    }
    return static_cast<double>(obs.events) / obs.exposure_hours;
}

RateInterval garwood_interval(const RateObservation& obs, double confidence) {
    require_valid(obs, confidence);
    const double alpha = 1.0 - confidence;
    const double k = static_cast<double>(obs.events);
    RateInterval out;
    out.point = rate_mle(obs);
    out.confidence = confidence;
    // Upper limit through the tail-mass entry point: at confidence
    // 1 - 1e-9 the upper-tail mass alpha/2 is the small quantity, and
    // chi_squared_quantile(1 - alpha/2, .) would round it away.
    out.lower = obs.events == 0
                    ? 0.0
                    : 0.5 * chi_squared_quantile(alpha / 2.0, 2.0 * k) / obs.exposure_hours;
    out.upper = 0.5 * chi_squared_quantile_upper(alpha / 2.0, 2.0 * (k + 1.0)) /
                obs.exposure_hours;
    return out;
}

double rate_upper_bound(const RateObservation& obs, double confidence) {
    require_valid(obs, confidence);
    const double k = static_cast<double>(obs.events);
    return 0.5 * chi_squared_quantile_upper(1.0 - confidence, 2.0 * (k + 1.0)) /
           obs.exposure_hours;
}

double rate_lower_bound(const RateObservation& obs, double confidence) {
    require_valid(obs, confidence);
    if (obs.events == 0) return 0.0;
    const double k = static_cast<double>(obs.events);
    return 0.5 * chi_squared_quantile(1.0 - confidence, 2.0 * k) / obs.exposure_hours;
}

HeterogeneityResult rate_heterogeneity_test(
    const std::vector<RateObservation>& observations) {
    if (observations.size() < 2) {
        throw std::invalid_argument("rate_heterogeneity_test: needs >= 2 observations");
    }
    double total_events = 0.0;
    double total_exposure = 0.0;
    for (const auto& obs : observations) {
        if (obs.exposure_hours <= 0.0) {
            throw std::invalid_argument(
                "rate_heterogeneity_test: exposures must be > 0");
        }
        total_events += static_cast<double>(obs.events);
        total_exposure += obs.exposure_hours;
    }
    HeterogeneityResult out;
    out.degrees_of_freedom = static_cast<double>(observations.size() - 1);
    out.pooled_rate = total_events / total_exposure;
    if (total_events == 0.0) return out;  // chi2 = 0, p = 1
    for (const auto& obs : observations) {
        const double expected = obs.exposure_hours * out.pooled_rate;
        const double delta = static_cast<double>(obs.events) - expected;
        out.chi_squared += delta * delta / expected;
    }
    out.p_value =
        regularized_gamma_q(out.degrees_of_freedom / 2.0, out.chi_squared / 2.0);
    return out;
}

RateComparison rate_ratio_test(const RateObservation& a, const RateObservation& b) {
    if (a.exposure_hours <= 0.0 || b.exposure_hours <= 0.0) {
        throw std::invalid_argument("rate_ratio_test: exposures must be > 0");
    }
    RateComparison out;
    out.rate1 = rate_mle(a);
    out.rate2 = rate_mle(b);
    out.ratio = out.rate2 > 0.0 ? out.rate1 / out.rate2
                                : std::numeric_limits<double>::infinity();
    const std::uint64_t total = a.events + b.events;
    if (total == 0) {
        out.p_value = 1.0;
        return out;
    }
    const double p = a.exposure_hours / (a.exposure_hours + b.exposure_hours);
    const double observed = binomial_pmf(a.events, total, p);
    double p_value = 0.0;
    for (std::uint64_t i = 0; i <= total; ++i) {
        const double prob = binomial_pmf(i, total, p);
        if (prob <= observed * (1.0 + 1e-12)) p_value += prob;
    }
    out.p_value = std::min(p_value, 1.0);
    return out;
}

double exposure_needed_for_zero_events(double target_rate, double confidence) {
    if (target_rate <= 0.0) {
        throw std::invalid_argument("exposure_needed_for_zero_events: target_rate > 0");
    }
    if (confidence <= 0.0 || confidence >= 1.0) {
        throw std::invalid_argument("exposure_needed_for_zero_events: confidence in (0,1)");
    }
    // Upper bound with k=0 is -ln(1-confidence)/T; solve for T.
    return -std::log1p(-confidence) / target_rate;
}

}  // namespace qrn::stats
