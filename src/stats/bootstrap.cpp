#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/parallel.h"

namespace qrn::stats {

BootstrapResult percentile_bootstrap(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double confidence, std::uint64_t seed,
    unsigned jobs) {
    if (sample.empty()) throw std::invalid_argument("bootstrap: empty sample");
    if (replicates < 100) throw std::invalid_argument("bootstrap: replicates >= 100");
    if (confidence <= 0.0 || confidence >= 1.0) {
        throw std::invalid_argument("bootstrap: confidence in (0, 1)");
    }

    BootstrapResult out;
    out.point = statistic(sample);
    out.confidence = confidence;

    const auto n = static_cast<std::int64_t>(sample.size());
    const auto parts = exec::parallel_chunks<std::vector<double>>(
        jobs, replicates, [&](const exec::ChunkRange& chunk) {
            std::vector<double> resample(sample.size());
            std::vector<double> chunk_stats;
            chunk_stats.reserve(chunk.end - chunk.begin);
            for (std::size_t r = chunk.begin; r < chunk.end; ++r) {
                Rng rng = Rng::stream(seed, r);
                for (auto& x : resample) {
                    x = sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
                }
                chunk_stats.push_back(statistic(resample));
            }
            return chunk_stats;
        });
    std::vector<double> stats;
    stats.reserve(replicates);
    for (const auto& part : parts) stats.insert(stats.end(), part.begin(), part.end());
    std::sort(stats.begin(), stats.end());

    const double alpha = 1.0 - confidence;
    const auto index_at = [&](double q) {
        const double pos = q * static_cast<double>(stats.size() - 1);
        const auto i = static_cast<std::size_t>(pos);
        const double frac = pos - static_cast<double>(i);
        if (i + 1 >= stats.size()) return stats.back();
        return stats[i] * (1.0 - frac) + stats[i + 1] * frac;
    };
    out.lower = index_at(alpha / 2.0);
    out.upper = index_at(1.0 - alpha / 2.0);
    return out;
}

}  // namespace qrn::stats
