// Ready queue for DAG dispatch: an explicit binary max-heap keyed by
// critical-path level, ties broken by node id.
//
// The coordinator pushes a node the moment it becomes dispatchable and
// pops the node whose remaining chain to the sink is heaviest - the
// classic critical-path-first order of the artidoro binheap exemplar. The
// id tie-break makes pop order a pure function of the pushed set, so two
// coordinators over the same plan dispatch in the same order (which only
// matters for reproducible traces; correctness never depends on order).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sched/dag.h"

namespace qrn::sched {

/// One dispatchable node: its DAG index, priority (critical-path level)
/// and id (deterministic tie-break).
struct ReadyItem {
    std::size_t node = 0;
    double priority = 0.0;
    std::string id;
};

class ReadyQueue {
public:
    void push(ReadyItem item) {
        heap_.push_back(std::move(item));
        sift_up(heap_.size() - 1);
    }

    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

    /// Removes and returns the highest-priority item. Throws SchedError
    /// on an empty queue.
    ReadyItem pop() {
        if (heap_.empty()) throw SchedError("ReadyQueue::pop: queue is empty");
        ReadyItem top = std::move(heap_.front());
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        if (!heap_.empty()) sift_down(0);
        return top;
    }

private:
    /// True when `a` should pop before `b`.
    [[nodiscard]] static bool before(const ReadyItem& a, const ReadyItem& b) {
        if (a.priority != b.priority) return a.priority > b.priority;
        return a.id < b.id;
    }

    void sift_up(std::size_t at) {
        while (at > 0) {
            const std::size_t parent = (at - 1) / 2;
            if (!before(heap_[at], heap_[parent])) return;
            std::swap(heap_[at], heap_[parent]);
            at = parent;
        }
    }

    void sift_down(std::size_t at) {
        for (;;) {
            std::size_t best = at;
            for (const std::size_t child : {2 * at + 1, 2 * at + 2}) {
                if (child < heap_.size() && before(heap_[child], heap_[best])) {
                    best = child;
                }
            }
            if (best == at) return;
            std::swap(heap_[at], heap_[best]);
            at = best;
        }
    }

    std::vector<ReadyItem> heap_;
};

}  // namespace qrn::sched
