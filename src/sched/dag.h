// The campaign work DAG: nodes with weights, dependency edges,
// deterministic topological order and critical-path levels.
//
// A distributed campaign is compiled into this graph (sched/plan.h builds
// the concrete generate -> simulate-fleet-i -> aggregate -> verify shape)
// and the coordinator dispatches READY nodes in descending critical-path
// order: the node whose remaining chain to the sink is longest goes first,
// so stragglers on the critical path never wait behind bulk work. The
// representation follows the artidoro scheduling exemplar (dag.h adjacency
// + indegree, levels as longest-path-to-sink weights); the hard/soft
// budget machinery follows the ranking-dsl complexity-budget exemplar
// (SNIPPETS.md #3): hard limits reject the plan outright (CLI exit 1),
// soft limits warn with top-offender diagnostics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace qrn::sched {

/// A scheduling-layer contract violation: duplicate or unknown node ids,
/// edges out of range, a cyclic graph, a malformed or mismatched plan.
/// The CLI maps it to exit 1 (bad input), like a parse error.
class SchedError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// One unit of work. `weight` is the node's estimated cost in arbitrary
/// units (the campaign DAG uses simulated hours); it feeds the
/// critical-path levels that order dispatch, never correctness.
struct DagNode {
    std::string id;
    double weight = 1.0;
};

/// A directed acyclic dependency graph. add_node/add_edge accumulate,
/// build() freezes: computes indegrees, a deterministic topological order
/// and critical-path levels, and rejects cycles. Accessors that need the
/// frozen form throw SchedError before build().
class Dag {
public:
    /// Adds a node and returns its index. Ids must be unique and
    /// non-empty; weight must be finite and >= 0.
    std::size_t add_node(std::string id, double weight = 1.0);

    /// Declares "`from` must finish before `to` may start". Self-edges are
    /// rejected; duplicate edges are stored once.
    void add_edge(std::size_t from, std::size_t to);

    /// Freezes the graph. Throws SchedError naming a node on the cycle
    /// when the edges are not acyclic. Idempotent.
    void build();

    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }
    [[nodiscard]] const DagNode& node(std::size_t i) const { return nodes_.at(i); }
    [[nodiscard]] std::optional<std::size_t> index_of(std::string_view id) const;

    [[nodiscard]] const std::vector<std::size_t>& preds(std::size_t i) const {
        return preds_.at(i);
    }
    [[nodiscard]] const std::vector<std::size_t>& succs(std::size_t i) const {
        return succs_.at(i);
    }

    /// Critical-path level: the node's weight plus the heaviest chain of
    /// successors below it (a sink's level is its own weight). Higher
    /// level = more of the campaign is waiting behind this node.
    [[nodiscard]] double level(std::size_t i) const;

    /// Deterministic topological order: Kahn's algorithm with the
    /// smallest-index ready node first, so the order depends only on the
    /// graph, never on hashing or timing.
    [[nodiscard]] const std::vector<std::size_t>& topo_order() const;

private:
    void require_built(const char* what) const;

    std::vector<DagNode> nodes_;
    std::vector<std::vector<std::size_t>> succs_;
    std::vector<std::vector<std::size_t>> preds_;
    std::vector<double> levels_;
    std::vector<std::size_t> topo_;
    std::size_t edges_ = 0;
    bool built_ = false;
};

/// Size and shape metrics of a built DAG, with top offenders for
/// diagnostics (SNIPPETS.md #3 style).
struct DagMetrics {
    std::size_t node_count = 0;
    std::size_t edge_count = 0;
    std::size_t max_depth = 0;    ///< Nodes on the longest path.
    std::size_t fanout_peak = 0;  ///< Max out-degree.
    std::size_t fanin_peak = 0;   ///< Max in-degree.
    double critical_path_weight = 0.0;

    struct Offender {
        std::string id;
        std::size_t degree = 0;
    };
    std::vector<Offender> top_fanout;        ///< Top-K by out-degree, desc.
    std::vector<Offender> top_fanin;         ///< Top-K by in-degree, desc.
    std::vector<std::string> critical_path;  ///< Node ids, source to sink.
};

[[nodiscard]] DagMetrics compute_metrics(const Dag& dag, std::size_t top_k = 5);

/// Budget limits over DagMetrics. 0 means "no limit". Hard limits fail
/// the check (the CLI rejects the campaign, exit 1); soft limits only
/// warn. Both produce diagnostics naming the worst offenders.
struct DagBudget {
    std::size_t node_count_hard = 0;
    std::size_t edge_count_hard = 0;
    std::size_t max_depth_hard = 0;
    std::size_t node_count_soft = 0;
    std::size_t fanout_peak_soft = 0;

    /// The default for campaign DAGs: hard caps aligned with the CLI's
    /// --fleets ceiling (100000 fleets -> 100003 nodes, two edges per
    /// fleet node plus the spine), soft warnings an order below.
    [[nodiscard]] static DagBudget campaign_default();
};

struct BudgetCheck {
    bool passed = true;
    bool has_warnings = false;
    /// Human-readable lines ("sched: DAG over budget: ..."), empty when
    /// clean. Hard violations and warnings both land here.
    std::string diagnostics;
};

[[nodiscard]] BudgetCheck check_budget(const DagMetrics& metrics,
                                       const DagBudget& budget);

}  // namespace qrn::sched
