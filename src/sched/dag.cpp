#include "sched/dag.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace qrn::sched {

namespace {

/// Kahn's ready set as an index-ordered min-heap: pop the smallest index
/// first so the topological order is a pure function of the graph.
class IndexHeap {
public:
    void push(std::size_t value) {
        heap_.push_back(value);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    }
    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    std::size_t pop() {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        const std::size_t value = heap_.back();
        heap_.pop_back();
        return value;
    }

private:
    std::vector<std::size_t> heap_;
};

}  // namespace

std::size_t Dag::add_node(std::string id, double weight) {
    if (built_) throw SchedError("Dag::add_node: graph is already built");
    if (id.empty()) throw SchedError("Dag::add_node: node id must not be empty");
    if (!std::isfinite(weight) || weight < 0.0) {
        throw SchedError("Dag::add_node: weight of '" + id +
                         "' must be finite and >= 0");
    }
    if (index_of(id)) {
        throw SchedError("Dag::add_node: duplicate node id '" + id + "'");
    }
    nodes_.push_back(DagNode{std::move(id), weight});
    succs_.emplace_back();
    preds_.emplace_back();
    return nodes_.size() - 1;
}

void Dag::add_edge(std::size_t from, std::size_t to) {
    if (built_) throw SchedError("Dag::add_edge: graph is already built");
    if (from >= nodes_.size() || to >= nodes_.size()) {
        throw SchedError("Dag::add_edge: node index out of range (" +
                         std::to_string(from) + " -> " + std::to_string(to) +
                         " with " + std::to_string(nodes_.size()) + " nodes)");
    }
    if (from == to) {
        throw SchedError("Dag::add_edge: self-edge on '" + nodes_[from].id + "'");
    }
    auto& out = succs_[from];
    if (std::find(out.begin(), out.end(), to) != out.end()) return;
    out.push_back(to);
    preds_[to].push_back(from);
    ++edges_;
}

std::optional<std::size_t> Dag::index_of(std::string_view id) const {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].id == id) return i;
    }
    return std::nullopt;
}

void Dag::build() {
    if (built_) return;

    // Kahn with an index-ordered ready heap: deterministic topo order and
    // cycle detection in one pass.
    std::vector<std::size_t> indegree(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) indegree[i] = preds_[i].size();
    IndexHeap ready;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (indegree[i] == 0) ready.push(i);
    }
    topo_.clear();
    topo_.reserve(nodes_.size());
    while (!ready.empty()) {
        const std::size_t at = ready.pop();
        topo_.push_back(at);
        for (const std::size_t succ : succs_[at]) {
            if (--indegree[succ] == 0) ready.push(succ);
        }
    }
    if (topo_.size() != nodes_.size()) {
        // Every unprocessed node sits on or behind a cycle; name the
        // smallest-id one so the diagnostic is stable.
        std::string worst;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (indegree[i] == 0) continue;
            if (worst.empty() || nodes_[i].id < worst) worst = nodes_[i].id;
        }
        throw SchedError("Dag::build: dependency cycle through node '" + worst +
                         "'");
    }

    // Critical-path levels in reverse topological order: each node's level
    // is its own weight plus the heaviest successor chain.
    levels_.assign(nodes_.size(), 0.0);
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
        double below = 0.0;
        for (const std::size_t succ : succs_[*it]) {
            below = std::max(below, levels_[succ]);
        }
        levels_[*it] = nodes_[*it].weight + below;
    }
    built_ = true;
}

void Dag::require_built(const char* what) const {
    if (!built_) {
        throw SchedError(std::string("Dag::") + what +
                         ": call build() before querying the frozen graph");
    }
}

double Dag::level(std::size_t i) const {
    require_built("level");
    return levels_.at(i);
}

const std::vector<std::size_t>& Dag::topo_order() const {
    require_built("topo_order");
    return topo_;
}

namespace {

/// Top-K offenders by degree, descending, ties broken by id so the
/// diagnostics are deterministic.
std::vector<DagMetrics::Offender> top_by_degree(
    const Dag& dag, std::size_t top_k,
    const std::function<std::size_t(std::size_t)>& degree_of) {
    std::vector<DagMetrics::Offender> all;
    all.reserve(dag.size());
    for (std::size_t i = 0; i < dag.size(); ++i) {
        all.push_back({dag.node(i).id, degree_of(i)});
    }
    std::sort(all.begin(), all.end(),
              [](const DagMetrics::Offender& a, const DagMetrics::Offender& b) {
                  if (a.degree != b.degree) return a.degree > b.degree;
                  return a.id < b.id;
              });
    if (all.size() > top_k) all.resize(top_k);
    return all;
}

}  // namespace

DagMetrics compute_metrics(const Dag& dag, std::size_t top_k) {
    DagMetrics m;
    m.node_count = dag.size();
    m.edge_count = dag.edge_count();
    if (dag.size() == 0) return m;

    // Depth (node count on the longest path) in reverse topo order.
    const auto& topo = dag.topo_order();
    std::vector<std::size_t> depth(dag.size(), 1);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        for (const std::size_t succ : dag.succs(*it)) {
            depth[*it] = std::max(depth[*it], depth[succ] + 1);
        }
        m.max_depth = std::max(m.max_depth, depth[*it]);
    }
    for (std::size_t i = 0; i < dag.size(); ++i) {
        m.fanout_peak = std::max(m.fanout_peak, dag.succs(i).size());
        m.fanin_peak = std::max(m.fanin_peak, dag.preds(i).size());
    }
    m.top_fanout = top_by_degree(
        dag, top_k, [&](std::size_t i) { return dag.succs(i).size(); });
    m.top_fanin = top_by_degree(
        dag, top_k, [&](std::size_t i) { return dag.preds(i).size(); });

    // Walk the critical path: start from the source with the highest
    // level, follow the heaviest successor; ties break by id.
    std::size_t at = 0;
    bool found = false;
    for (std::size_t i = 0; i < dag.size(); ++i) {
        if (!dag.preds(i).empty()) continue;
        if (!found || dag.level(i) > dag.level(at) ||
            (dag.level(i) == dag.level(at) && dag.node(i).id < dag.node(at).id)) {
            at = i;
            found = true;
        }
    }
    if (found) {
        m.critical_path_weight = dag.level(at);
        for (;;) {
            m.critical_path.push_back(dag.node(at).id);
            const auto& succs = dag.succs(at);
            if (succs.empty()) break;
            std::size_t next = succs.front();
            for (const std::size_t succ : succs) {
                if (dag.level(succ) > dag.level(next) ||
                    (dag.level(succ) == dag.level(next) &&
                     dag.node(succ).id < dag.node(next).id)) {
                    next = succ;
                }
            }
            at = next;
        }
    }
    return m;
}

DagBudget DagBudget::campaign_default() {
    DagBudget b;
    b.node_count_hard = 100003;  // CLI --fleets cap (100000) + the spine.
    b.edge_count_hard = 200002;  // two edges per fleet node + the spine.
    b.max_depth_hard = 64;       // the campaign spine is 4 deep; 64 leaves
                                 // room for staged plans without letting a
                                 // degenerate chain through.
    b.node_count_soft = 10003;
    b.fanout_peak_soft = 10000;
    return b;
}

namespace {

void offender_lines(std::string& out, const char* label,
                    const std::vector<DagMetrics::Offender>& offenders) {
    if (offenders.empty()) return;
    out += "sched:   top ";
    out += label;
    out += ":";
    for (const auto& o : offenders) {
        out += " " + o.id + " (" + std::to_string(o.degree) + ")";
    }
    out += "\n";
}

}  // namespace

BudgetCheck check_budget(const DagMetrics& metrics, const DagBudget& budget) {
    BudgetCheck check;
    const auto hard = [&](const char* what, std::size_t value, std::size_t limit) {
        if (limit == 0 || value <= limit) return;
        check.passed = false;
        check.diagnostics += "sched: DAG over budget: " + std::string(what) +
                             " " + std::to_string(value) + " > hard limit " +
                             std::to_string(limit) + "\n";
    };
    const auto soft = [&](const char* what, std::size_t value, std::size_t limit) {
        if (limit == 0 || value <= limit) return;
        check.has_warnings = true;
        check.diagnostics += "sched: warning: " + std::string(what) + " " +
                             std::to_string(value) + " exceeds soft limit " +
                             std::to_string(limit) + "\n";
    };
    hard("node count", metrics.node_count, budget.node_count_hard);
    hard("edge count", metrics.edge_count, budget.edge_count_hard);
    hard("depth", metrics.max_depth, budget.max_depth_hard);
    soft("node count", metrics.node_count, budget.node_count_soft);
    soft("fan-out peak", metrics.fanout_peak, budget.fanout_peak_soft);
    if (!check.diagnostics.empty()) {
        offender_lines(check.diagnostics, "fan-out", metrics.top_fanout);
        offender_lines(check.diagnostics, "fan-in", metrics.top_fanin);
    }
    return check;
}

}  // namespace qrn::sched
