#include "sched/plan.h"

#include <bit>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "qrn/json.h"
#include "qrn/serialize.h"
#include "store/cache_key.h"
#include "store/format.h"
#include "store/sync.h"

namespace qrn::sched {

namespace {

constexpr std::string_view kPlanKind = "qrn.sched.plan";
constexpr int kPlanSchemaVersion = 1;

sim::TacticalPolicy policy_from_name(const std::string& name) {
    if (name == "cautious") return sim::TacticalPolicy::cautious();
    if (name == "nominal") return sim::TacticalPolicy::nominal();
    if (name == "performance") return sim::TacticalPolicy::performance();
    throw SchedError("campaign plan names unknown policy '" + name +
                     "' (a plan from a different build?)");
}

sim::Odd odd_from_name(const std::string& name) {
    if (name == "urban") return sim::Odd::urban();
    if (name == "highway") return sim::Odd::highway();
    throw SchedError("campaign plan names unknown ODD '" + name +
                     "' (a plan from a different build?)");
}

std::uint64_t plan_u64(const qrn::json::Value& value, const std::string& what) {
    if (!value.is_number() || value.as_number() < 0) {
        throw SchedError("campaign plan field '" + what +
                         "' is not a non-negative number");
    }
    return static_cast<std::uint64_t>(value.as_number());
}

}  // namespace

std::string plan_node_id(std::uint64_t fleet_index) {
    std::string digits = std::to_string(fleet_index);
    if (digits.size() < 5) digits.insert(0, 5 - digits.size(), '0');
    return "fleet-" + digits;
}

std::optional<std::uint64_t> fleet_index_of(std::string_view id) {
    constexpr std::string_view prefix = "fleet-";
    if (id.size() <= prefix.size() || id.substr(0, prefix.size()) != prefix) {
        return std::nullopt;
    }
    std::uint64_t value = 0;
    for (const char ch : id.substr(prefix.size())) {
        if (ch < '0' || ch > '9') return std::nullopt;
        value = value * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    return value;
}

std::string campaign_inputs_digest() {
    return to_json(IncidentTypeSet::paper_vru_example()).dump();
}

CampaignPlan make_plan(std::string policy, std::string odd,
                       const sim::CampaignConfig& config,
                       std::string_view inputs_digest) {
    if (config.fleets == 0) {
        throw SchedError("make_plan: campaign must have at least one fleet");
    }
    CampaignPlan plan;
    plan.policy = std::move(policy);
    plan.odd = std::move(odd);
    plan.seed = config.base.seed;
    plan.fleets = config.fleets;
    plan.hours_per_fleet = config.hours_per_fleet;
    plan.nodes.reserve(config.fleets);
    for (std::size_t i = 0; i < config.fleets; ++i) {
        plan.nodes.push_back(PlanNode{
            i, store::fleet_cache_key(config.base, config.hours_per_fleet, i,
                                      inputs_digest)});
    }
    return plan;
}

sim::CampaignConfig config_from_plan(const CampaignPlan& plan, unsigned jobs) {
    sim::CampaignConfig config;
    config.base.policy = policy_from_name(plan.policy);
    config.base.odd = odd_from_name(plan.odd);
    config.base.seed = plan.seed;
    config.fleets = plan.fleets;
    config.hours_per_fleet = plan.hours_per_fleet;
    config.jobs = jobs;
    return config;
}

void verify_plan_keys(const CampaignPlan& plan, std::string_view inputs_digest) {
    const sim::CampaignConfig config = config_from_plan(plan, 1);
    for (const PlanNode& node : plan.nodes) {
        const std::uint64_t key =
            store::fleet_cache_key(config.base, config.hours_per_fleet,
                                   node.fleet_index, inputs_digest);
        if (key != node.key) {
            throw SchedError(
                "plan key mismatch for " + plan_node_id(node.fleet_index) +
                ": plan says " + store::key_hex(node.key) +
                ", this build computes " + store::key_hex(key) +
                " (config or catalog skew; refusing to produce divergent "
                "shards)");
        }
    }
}

std::string plan_path(const std::string& store_dir) {
    return store_dir + "/sched/plan.json";
}

std::string lease_dir(const std::string& store_dir) {
    return store_dir + "/sched/leases";
}

void write_plan(const std::string& store_dir, const CampaignPlan& plan) {
    namespace json = qrn::json;
    std::error_code ec;
    std::filesystem::create_directories(lease_dir(store_dir), ec);
    if (ec) {
        throw store::StoreError(store::StoreErrorKind::Io,
                                "cannot create '" + lease_dir(store_dir) +
                                    "': " + ec.message());
    }

    json::Array nodes;
    nodes.reserve(plan.nodes.size());
    for (const PlanNode& node : plan.nodes) {
        json::Object row;
        row.emplace_back("fleet_index",
                         json::Value(static_cast<std::size_t>(node.fleet_index)));
        row.emplace_back("key", json::Value(store::key_hex(node.key)));
        nodes.emplace_back(std::move(row));
    }
    json::Object doc;
    doc.emplace_back("kind", json::Value(std::string(kPlanKind)));
    doc.emplace_back("schema_version", json::Value(kPlanSchemaVersion));
    doc.emplace_back("policy", json::Value(plan.policy));
    doc.emplace_back("odd", json::Value(plan.odd));
    doc.emplace_back("seed", json::Value(store::key_hex(plan.seed)));
    doc.emplace_back("hours_bits",
                     json::Value(store::key_hex(
                         std::bit_cast<std::uint64_t>(plan.hours_per_fleet))));
    // Informational rendering only; the bits above are authoritative.
    doc.emplace_back("hours_per_fleet", json::Value(plan.hours_per_fleet));
    doc.emplace_back("fleets", json::Value(static_cast<std::size_t>(plan.fleets)));
    doc.emplace_back("nodes", json::Value(std::move(nodes)));

    const std::string path = plan_path(store_dir);
    const std::string tmp = path + std::string(store::kTempSuffix);
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            throw store::StoreError(store::StoreErrorKind::Io,
                                    "cannot open '" + tmp + "' for writing");
        }
        out << json::Value(std::move(doc)).dump(2) << '\n';
        out.flush();
        if (!out.good()) {
            throw store::StoreError(store::StoreErrorKind::Io,
                                    "I/O error while writing plan '" + tmp + "'");
        }
    }
    store::sync_file(tmp);
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        throw store::StoreError(store::StoreErrorKind::Io,
                                "cannot rename '" + tmp + "' to '" + path +
                                    "': " + ec.message());
    }
    store::sync_directory(store_dir + "/sched");
}

std::optional<CampaignPlan> read_plan(const std::string& store_dir) {
    const std::string path = plan_path(store_dir);
    std::ifstream in(path);
    if (!in) {
        std::error_code ec;
        if (std::filesystem::exists(path, ec)) {
            throw store::StoreError(store::StoreErrorKind::Io,
                                    "plan '" + path + "' exists but cannot be read");
        }
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) {
        throw store::StoreError(store::StoreErrorKind::Io,
                                "I/O error while reading plan '" + path + "'");
    }

    namespace json = qrn::json;
    CampaignPlan plan;
    try {
        const json::Value doc = json::parse(text.str());
        if (doc.at("kind").as_string() != kPlanKind) {
            throw SchedError("'" + path + "' is not a campaign plan (kind '" +
                             doc.at("kind").as_string() + "')");
        }
        const auto version = plan_u64(doc.at("schema_version"), "schema_version");
        if (version != static_cast<std::uint64_t>(kPlanSchemaVersion)) {
            throw SchedError("plan '" + path + "' has schema version " +
                             std::to_string(version) + "; this build reads " +
                             std::to_string(kPlanSchemaVersion));
        }
        plan.policy = doc.at("policy").as_string();
        plan.odd = doc.at("odd").as_string();
        plan.seed = store::key_from_hex(doc.at("seed").as_string());
        plan.hours_per_fleet = std::bit_cast<double>(
            store::key_from_hex(doc.at("hours_bits").as_string()));
        plan.fleets = plan_u64(doc.at("fleets"), "fleets");
        for (const json::Value& row : doc.at("nodes").as_array()) {
            PlanNode node;
            node.fleet_index = plan_u64(row.at("fleet_index"), "fleet_index");
            node.key = store::key_from_hex(row.at("key").as_string());
            plan.nodes.push_back(node);
        }
    } catch (const SchedError&) {
        throw;
    } catch (const std::exception& e) {
        throw SchedError("plan '" + path + "' is malformed: " + e.what());
    }
    if (plan.fleets == 0 || plan.nodes.size() != plan.fleets) {
        throw SchedError("plan '" + path + "' declares " +
                         std::to_string(plan.fleets) + " fleet(s) but lists " +
                         std::to_string(plan.nodes.size()) + " node(s)");
    }
    for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
        if (plan.nodes[i].fleet_index != i) {
            throw SchedError("plan '" + path +
                             "' nodes are not in fleet order at position " +
                             std::to_string(i));
        }
    }
    return plan;
}

Dag build_campaign_dag(const CampaignPlan& plan) {
    Dag dag;
    const std::size_t generate = dag.add_node(std::string(kGenerateNode), 1.0);
    const std::size_t aggregate = dag.add_node(std::string(kAggregateNode), 1.0);
    const std::size_t verify = dag.add_node(std::string(kVerifyNode), 1.0);
    for (const PlanNode& node : plan.nodes) {
        const std::size_t fleet =
            dag.add_node(plan_node_id(node.fleet_index), plan.hours_per_fleet);
        dag.add_edge(generate, fleet);
        dag.add_edge(fleet, aggregate);
    }
    dag.add_edge(aggregate, verify);
    dag.build();
    return dag;
}

}  // namespace qrn::sched
