#include "sched/coordinator.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "sched/ready_queue.h"
#include "store/format.h"
#include "store/lease.h"
#include "store/shard.h"
#include "store/store.h"

// Lock order between the lease board's bookkeeping and the shared stats:
// the renewal thread bumps stats while already inside the board.
// qrn:lock_order(mutex_ < stats_mutex_)

namespace qrn::sched {

namespace {

void declare_sched_metrics() {
    if (!obs::enabled()) return;
    obs::add_counter("sched.nodes_total", 0);
    obs::add_counter("sched.nodes_dispatched", 0);
    obs::add_counter("sched.nodes_completed", 0);
    obs::add_counter("sched.nodes_reused", 0);
    obs::add_counter("sched.leases_acquired", 0);
    obs::add_counter("sched.leases_stolen", 0);
    obs::add_counter("sched.leases_renewed", 0);
    obs::add_counter("sched.workers_spawned", 0);
    obs::add_counter("sched.worker_respawns", 0);
    obs::add_counter("sched.worker_failures", 0);
    obs::declare_timer("sched.dispatch_ns");
    obs::declare_timer("sched.worker_wait_ns");
    obs::declare_timer("sched.node_exec_ns");
}

/// Keeps every lease the coordinator holds alive: a renewal thread
/// re-stamps each held lease at TTL/3 so external workers only steal from
/// a coordinator that actually died (or stalled past the TTL).
class LeaseBoard {
public:
    LeaseBoard(std::string dir, std::string owner, std::uint64_t ttl_ms,
               CoordinatorStats& stats, std::mutex& stats_mutex)
        : dir_(std::move(dir)),
          owner_(std::move(owner)),
          ttl_ms_(ttl_ms),
          stats_(stats),
          stats_mutex_(stats_mutex) {}

    ~LeaseBoard() { stop(); }

    LeaseBoard(const LeaseBoard&) = delete;
    LeaseBoard& operator=(const LeaseBoard&) = delete;

    void start() {
        renewer_ = std::thread([this] { renew_loop(); });
    }

    /// Registers a lease this coordinator now holds (just acquired or
    /// stolen) so the renewal thread keeps it fresh.
    void track(const std::string& node, std::uint64_t generation) {
        const std::lock_guard<std::mutex> lock(mutex_);
        held_[node] = generation;
    }

    /// Stops renewing and removes the node's lease file.
    void release(const std::string& node) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            held_.erase(node);
        }
        store::release_lease(dir_, node);
    }

    void stop() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (stop_) return;
            stop_ = true;
        }
        wake_.notify_all();
        if (renewer_.joinable()) renewer_.join();
    }

private:
    void renew_loop() {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto period =
            std::chrono::milliseconds(std::max<std::uint64_t>(1, ttl_ms_ / 3));
        while (!stop_) {
            wake_.wait_for(lock, period);
            if (stop_) break;
            std::uint64_t renewed = 0;
            for (auto& [node, generation] : held_) {
                ++generation;
                store::overwrite_lease(
                    dir_, store::Lease{node, owner_, store::lease_now_ms(),
                                       ttl_ms_, generation});
                ++renewed;
            }
            if (renewed != 0) {
                const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
                stats_.leases_renewed += renewed;
                if (obs::enabled()) {
                    obs::add_counter("sched.leases_renewed", renewed);
                }
            }
        }
    }

    const std::string dir_;
    const std::string owner_;
    const std::uint64_t ttl_ms_;
    CoordinatorStats& stats_;
    std::mutex& stats_mutex_;

    std::mutex mutex_;
    std::condition_variable wake_;
    // qrn:guarded_by(mutex_)
    std::map<std::string, std::uint64_t> held_;
    // qrn:guarded_by(mutex_)
    bool stop_ = false;
    std::thread renewer_;
};

/// One attached worker child and the pipe plumbing around it.
struct WorkerProc {
    pid_t pid = -1;
    int to_child = -1;    ///< Write end of the child's stdin.
    int from_child = -1;  ///< Read end of the child's stdout.
    std::string buffer;   ///< Partial reply line carried between reads.
    std::optional<std::uint64_t> in_flight;  ///< Fleet index being run.
    unsigned respawns = 0;
    bool alive = false;
    std::uint64_t idle_since_ns = 0;
};

/// Pre-built execv argument block: the child must not allocate between
/// fork and exec (another thread may hold the allocator lock).
struct ExecSpec {
    std::vector<std::string> args;
    std::vector<char*> argv;

    explicit ExecSpec(const CoordinatorConfig& config) {
        args = {"qrn",     "sched",          "worker",
                "--store", config.store_dir, "--attached"};
        argv.reserve(args.size() + 1);
        for (std::string& arg : args) argv.push_back(arg.data());
        argv.push_back(nullptr);
    }
};

void close_fd(int& fd) {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool spawn_worker(const CoordinatorConfig& config, const ExecSpec& spec,
                  WorkerProc& worker) {
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    if (::pipe(to_child) != 0) return false;
    if (::pipe(from_child) != 0) {
        close_fd(to_child[0]);
        close_fd(to_child[1]);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        close_fd(to_child[0]);
        close_fd(to_child[1]);
        close_fd(from_child[0]);
        close_fd(from_child[1]);
        return false;
    }
    if (pid == 0) {
        // Child: only async-signal-safe calls until exec.
        ::dup2(to_child[0], 0);
        ::dup2(from_child[1], 1);
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        ::execv(config.cli_path.c_str(), spec.argv.data());
        ::_exit(127);
    }
    close_fd(to_child[0]);
    close_fd(from_child[1]);
    worker.pid = pid;
    worker.to_child = to_child[1];
    worker.from_child = from_child[0];
    worker.buffer.clear();
    worker.in_flight.reset();
    worker.alive = true;
    worker.idle_since_ns = obs::now_ns();
    return true;
}

/// Writes the whole line or reports the worker's pipe as broken.
bool write_line(int fd, const std::string& line) {
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/// Closes stdin pipes (workers exit on EOF), then reaps each child; any
/// child still running after `patience` polls gets SIGKILL. Used for both
/// clean shutdown and error unwinding.
void shutdown_workers(std::vector<WorkerProc>& workers) {
    for (WorkerProc& worker : workers) close_fd(worker.to_child);
    for (WorkerProc& worker : workers) {
        if (worker.pid < 0) continue;
        int status = 0;
        for (int patience = 0; patience < 100; ++patience) {
            const pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
            if (reaped == worker.pid || (reaped < 0 && errno == ECHILD)) {
                worker.pid = -1;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (worker.pid >= 0) {
            ::kill(worker.pid, SIGKILL);
            ::waitpid(worker.pid, &status, 0);
            worker.pid = -1;
        }
        close_fd(worker.from_child);
        worker.alive = false;
    }
}

struct Assignment {
    std::size_t worker = 0;
    ReadyItem item;
};

// qrn:dispatcher(begin)
/// Pure pairing of idle workers with the heaviest ready nodes - the
/// critical-path-first dispatch decision, free of any I/O or blocking
/// call; the pipe writes happen outside this region.
std::vector<Assignment> pick_assignments(const std::vector<WorkerProc>& workers,
                                         ReadyQueue& ready) {
    std::vector<Assignment> picks;
    for (std::size_t w = 0; w < workers.size(); ++w) {
        if (!workers[w].alive || workers[w].in_flight.has_value()) continue;
        if (ready.empty()) break;
        picks.push_back(Assignment{w, ready.pop()});
    }
    return picks;
}
// qrn:dispatcher(end)

enum class NodeState { Unclaimed, Ready, InFlight, Done };

}  // namespace

CoordinatorStats run_coordinator(const CampaignPlan& plan, const Dag& dag,
                                 const CoordinatorConfig& config) {
    if (config.workers == 0) {
        throw SchedError("run_coordinator: need at least one worker");
    }
    declare_sched_metrics();

    store::Store db(config.store_dir);
    const std::string leases = lease_dir(config.store_dir);
    const std::string owner = "coord:" + std::to_string(::getpid());

    CoordinatorStats stats;
    std::mutex stats_mutex;
    stats.nodes_total = plan.fleets;
    if (obs::enabled()) obs::add_counter("sched.nodes_total", plan.fleets);

    std::vector<NodeState> state(plan.fleets, NodeState::Unclaimed);
    std::vector<unsigned> retries(plan.fleets, 0);
    std::vector<double> priority(plan.fleets, 0.0);
    for (std::uint64_t i = 0; i < plan.fleets; ++i) {
        const std::optional<std::size_t> at = dag.index_of(plan_node_id(i));
        if (!at) {
            throw SchedError("run_coordinator: DAG has no node " +
                             plan_node_id(i));
        }
        priority[i] = dag.level(*at);
    }

    std::size_t done_count = 0;
    // Verifies the node's shard against the plan key and records it in the
    // manifest (this process is the manifest's single writer). Returns
    // false when the shard is absent or does not verify.
    const auto try_finish = [&](std::uint64_t i) {
        const std::string file =
            store::Store::shard_filename(i, plan.nodes[i].key);
        try {
            const store::ShardInfo info =
                store::verify_shard(config.store_dir + "/" + file);
            if (info.cache_key != plan.nodes[i].key || info.fleet_index != i) {
                return false;
            }
            store::ShardEntry entry;
            entry.fleet_index = i;
            entry.file = file;
            entry.cache_key = plan.nodes[i].key;
            entry.records = info.records;
            entry.exposure_hours = info.totals.exposure_hours;
            db.record(entry);
            state[i] = NodeState::Done;
            ++done_count;
            return true;
        } catch (const store::StoreError&) {
            return false;
        }
    };

    // Resume sweep: anything already sealed (a previous run, or standalone
    // workers that got here first) is done before we spawn anything.
    for (std::uint64_t i = 0; i < plan.fleets; ++i) {
        if (try_finish(i)) {
            ++stats.nodes_reused;
            if (obs::enabled()) obs::add_counter("sched.nodes_reused", 1);
        }
    }
    if (done_count == plan.fleets) return stats;

    // A dead worker must not kill the coordinator via a stdin write.
    using SignalHandler = void (*)(int);
    const SignalHandler prior_sigpipe = std::signal(SIGPIPE, SIG_IGN);

    LeaseBoard board(leases, owner, config.lease_ttl_ms, stats, stats_mutex);
    board.start();

    const ExecSpec spec(config);
    std::vector<WorkerProc> workers(config.workers);
    for (WorkerProc& worker : workers) {
        if (spawn_worker(config, spec, worker)) {
            ++stats.workers_spawned;
            if (obs::enabled()) obs::add_counter("sched.workers_spawned", 1);
        }
    }

    ReadyQueue ready;

    // Claims what can be claimed: finishes nodes sealed by others, leases
    // free nodes, steals expired leases, defers to live foreign leases.
    const auto claim_scan = [&] {
        for (std::uint64_t i = 0; i < plan.fleets; ++i) {
            if (state[i] != NodeState::Unclaimed) continue;
            if (try_finish(i)) {
                ++stats.nodes_reused;
                if (obs::enabled()) obs::add_counter("sched.nodes_reused", 1);
                continue;
            }
            const std::string id = plan_node_id(i);
            const std::optional<store::Lease> current =
                store::read_lease(leases, id);
            std::uint64_t generation = 0;
            if (!current) {
                if (!store::try_acquire_lease(
                        leases,
                        store::Lease{id, owner, store::lease_now_ms(),
                                     config.lease_ttl_ms, 1})) {
                    continue;  // Someone else won the race; revisit later.
                }
                generation = 1;
                ++stats.leases_acquired;
                if (obs::enabled()) obs::add_counter("sched.leases_acquired", 1);
            } else if (store::lease_expired(*current, store::lease_now_ms())) {
                generation = current->generation + 1;
                store::overwrite_lease(
                    leases, store::Lease{id, owner, store::lease_now_ms(),
                                         config.lease_ttl_ms, generation});
                ++stats.leases_stolen;
                if (obs::enabled()) obs::add_counter("sched.leases_stolen", 1);
            } else {
                continue;  // Live foreign lease: let its holder work.
            }
            board.track(id, generation);
            state[i] = NodeState::Ready;
            ready.push(ReadyItem{i, priority[i], id});
        }
    };

    const auto requeue = [&](std::uint64_t i) {
        state[i] = NodeState::Ready;
        ready.push(ReadyItem{i, priority[i], plan_node_id(i)});
    };

    const auto on_worker_death = [&](std::size_t w) {
        WorkerProc& worker = workers[w];
        if (!worker.alive) return;
        worker.alive = false;
        close_fd(worker.to_child);
        close_fd(worker.from_child);
        if (worker.pid >= 0) {
            int status = 0;
            ::waitpid(worker.pid, &status, 0);
            worker.pid = -1;
        }
        ++stats.worker_failures;
        if (obs::enabled()) obs::add_counter("sched.worker_failures", 1);
        if (worker.in_flight) {
            // We still hold (and renew) the lease; the node just needs a
            // new pair of hands.
            requeue(*worker.in_flight);
            worker.in_flight.reset();
        }
        if (worker.respawns < config.max_respawns_per_worker) {
            const unsigned next = worker.respawns + 1;
            if (spawn_worker(config, spec, worker)) {
                worker.respawns = next;
                ++stats.worker_respawns;
                ++stats.workers_spawned;
                if (obs::enabled()) {
                    obs::add_counter("sched.worker_respawns", 1);
                    obs::add_counter("sched.workers_spawned", 1);
                }
            }
        }
    };

    const auto on_reply = [&](std::size_t w, std::string_view line) {
        WorkerProc& worker = workers[w];
        const std::size_t space = line.find(' ');
        const std::string_view verb = line.substr(0, space);
        std::string_view rest =
            space == std::string_view::npos ? "" : line.substr(space + 1);
        const std::size_t id_end = rest.find(' ');
        const std::string_view id = rest.substr(0, id_end);
        const std::optional<std::uint64_t> fleet = fleet_index_of(id);
        if (!fleet || *fleet >= plan.fleets || !worker.in_flight ||
            *worker.in_flight != *fleet) {
            throw SchedError("run_coordinator: protocol violation from worker " +
                             std::to_string(worker.pid) + ": '" +
                             std::string(line) + "'");
        }
        worker.in_flight.reset();
        worker.idle_since_ns = obs::now_ns();
        if (verb == "ok" && try_finish(*fleet)) {
            board.release(std::string(id));
            ++stats.nodes_completed;
            if (obs::enabled()) obs::add_counter("sched.nodes_completed", 1);
            return;
        }
        // "fail ..." or an "ok" whose shard does not verify: retry on
        // another slot, bounded.
        if (++retries[*fleet] > config.max_node_retries) {
            throw SchedError("run_coordinator: node " + std::string(id) +
                             " failed " + std::to_string(retries[*fleet]) +
                             " time(s); last reply: '" + std::string(line) +
                             "'");
        }
        requeue(*fleet);
    };

    try {
        std::uint64_t last_scan_ms = 0;
        while (done_count < plan.fleets) {
            const std::uint64_t now_ms = store::lease_now_ms();
            if (now_ms - last_scan_ms >= 250) {
                claim_scan();
                last_scan_ms = now_ms;
                if (done_count == plan.fleets) break;
            }

            // Dispatch: critical-path-first pairing, then the pipe writes.
            {
                obs::ScopedTimer dispatch_timer("sched.dispatch_ns");
                const std::vector<Assignment> picks =
                    pick_assignments(workers, ready);
                for (const Assignment& pick : picks) {
                    WorkerProc& worker = workers[pick.worker];
                    if (!write_line(worker.to_child,
                                    "run " + pick.item.id + "\n")) {
                        requeue(pick.item.node);
                        on_worker_death(pick.worker);
                        continue;
                    }
                    if (obs::enabled()) {
                        obs::record_timer("sched.worker_wait_ns",
                                          obs::now_ns() - worker.idle_since_ns);
                        obs::add_counter("sched.nodes_dispatched", 1);
                    }
                    worker.in_flight = pick.item.node;
                    state[pick.item.node] = NodeState::InFlight;
                    ++stats.nodes_dispatched;
                }
            }

            std::size_t alive = 0;
            std::vector<pollfd> fds;
            std::vector<std::size_t> fd_owner;
            for (std::size_t w = 0; w < workers.size(); ++w) {
                if (!workers[w].alive) continue;
                ++alive;
                fds.push_back(pollfd{workers[w].from_child, POLLIN, 0});
                fd_owner.push_back(w);
            }
            if (alive == 0) {
                throw SchedError(
                    "run_coordinator: every worker died (respawn budget "
                    "exhausted) with " +
                    std::to_string(plan.fleets - done_count) +
                    " node(s) unfinished");
            }
            if (::poll(fds.data(), fds.size(), 50) < 0 && errno != EINTR) {
                throw SchedError(std::string("run_coordinator: poll failed: ") +
                                 std::strerror(errno));
            }
            for (std::size_t at = 0; at < fds.size(); ++at) {
                if ((fds[at].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
                    continue;
                }
                const std::size_t w = fd_owner[at];
                char chunk[4096];
                const ssize_t n =
                    ::read(workers[w].from_child, chunk, sizeof chunk);
                if (n <= 0) {
                    if (n < 0 && errno == EINTR) continue;
                    on_worker_death(w);
                    continue;
                }
                workers[w].buffer.append(chunk, static_cast<std::size_t>(n));
                std::size_t eol = 0;
                while ((eol = workers[w].buffer.find('\n')) !=
                       std::string::npos) {
                    const std::string line = workers[w].buffer.substr(0, eol);
                    workers[w].buffer.erase(0, eol + 1);
                    if (!line.empty()) on_reply(w, line);
                }
            }
        }
    } catch (...) {
        shutdown_workers(workers);
        board.stop();
        std::signal(SIGPIPE, prior_sigpipe);
        throw;
    }

    shutdown_workers(workers);
    board.stop();
    std::signal(SIGPIPE, prior_sigpipe);
    return stats;
}

}  // namespace qrn::sched
