// The distributed-campaign coordinator: owns the work DAG, leases fleet
// nodes in the shared store, dispatches them to attached worker processes
// and work-steals stragglers.
//
// The coordinator is deliberately stateless across restarts: everything it
// needs to resume lives in the store (the plan, the lease files, and the
// sealed shards themselves - a node is "done" iff its shard verifies
// clean). Killing the coordinator at any point and rerunning the same
// command heals to byte-identical output, because the only authoritative
// state transition is the atomic shard seal.
//
// Worker management: N child processes of this binary (`qrn sched worker
// --attached`) speak a one-line pipe protocol ("run <id>" down stdin,
// "ok <id>" / "fail <id> <reason>" up stdout). A worker that dies has its
// in-flight node re-queued (the coordinator still holds the lease) and is
// respawned a bounded number of times. Nodes leased by *external*
// standalone workers are left alone until the lease expires, then stolen.
#pragma once

#include <cstdint>
#include <string>

#include "sched/dag.h"
#include "sched/plan.h"

namespace qrn::sched {

struct CoordinatorConfig {
    std::string store_dir;
    unsigned workers = 2;                ///< Attached worker processes.
    std::uint64_t lease_ttl_ms = 10000;  ///< Lease TTL; renewal at TTL/3.
    std::string cli_path = "/proc/self/exe";  ///< Binary to exec workers from.
    unsigned max_node_retries = 2;       ///< "fail" replies per node before
                                         ///< the campaign errors out.
    unsigned max_respawns_per_worker = 3;
};

/// What one coordinator run did (also mirrored into sched.* obs counters).
struct CoordinatorStats {
    std::uint64_t nodes_total = 0;
    std::uint64_t nodes_dispatched = 0;  ///< "run" lines sent (incl. retries).
    std::uint64_t nodes_completed = 0;   ///< Finished by our workers.
    std::uint64_t nodes_reused = 0;      ///< Shard already sealed (resume or
                                         ///< external worker).
    std::uint64_t leases_acquired = 0;
    std::uint64_t leases_stolen = 0;
    std::uint64_t leases_renewed = 0;
    std::uint64_t workers_spawned = 0;
    std::uint64_t worker_respawns = 0;
    std::uint64_t worker_failures = 0;   ///< Worker deaths + "fail" replies.
};

/// Drives every fleet node of the plan to "done" (sealed shard verifies
/// clean) and records each into the store manifest, making this process
/// the manifest's single writer. Returns when all fleet nodes are done.
/// Throws SchedError when the campaign cannot finish (a node exhausted its
/// retries, or every worker died past its respawn budget) and
/// StoreError(Io) on store failures.
[[nodiscard]] CoordinatorStats run_coordinator(const CampaignPlan& plan,
                                               const Dag& dag,
                                               const CoordinatorConfig& config);

}  // namespace qrn::sched
