#include "sched/worker.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <string_view>
#include <thread>

#include "obs/metrics.h"
#include "sched/plan.h"
#include "store/campaign_store.h"
#include "store/format.h"
#include "store/lease.h"
#include "store/shard.h"
#include "store/store.h"

namespace qrn::sched {

namespace {

/// One-shot crash injection for the crash/steal test matrix. The env
/// value is "<fleet_index>:<marker_path>"; the fault fires only while the
/// marker file does not exist, and creates it when it fires, so the
/// resumed process runs through cleanly.
struct Fault {
    std::uint64_t fleet_index = 0;
    std::string marker;
};

std::optional<Fault> fault_from_env(const char* name) {
    const char* raw = std::getenv(name);
    if (raw == nullptr) return std::nullopt;
    const std::string_view text(raw);
    const std::size_t colon = text.find(':');
    if (colon == 0 || colon == std::string_view::npos ||
        colon + 1 == text.size()) {
        return std::nullopt;
    }
    Fault fault;
    for (const char ch : text.substr(0, colon)) {
        if (ch < '0' || ch > '9') return std::nullopt;
        fault.fleet_index = fault.fleet_index * 10 +
                            static_cast<std::uint64_t>(ch - '0');
    }
    fault.marker = std::string(text.substr(colon + 1));
    return fault;
}

/// True (and burns the one shot) when `fault` targets this fleet and has
/// not fired yet.
bool fault_fires(const std::optional<Fault>& fault, std::uint64_t fleet_index) {
    if (!fault || fault->fleet_index != fleet_index) return false;
    std::error_code ec;
    if (std::filesystem::exists(fault->marker, ec)) return false;
    std::ofstream marker(fault->marker, std::ios::trunc);
    marker << "fired\n";
    return true;
}

/// The shared execution context of one worker: the plan, the config it
/// reconstructs, and the store directory shards seal into.
class NodeRunner {
public:
    explicit NodeRunner(const WorkerOptions& options)
        : store_dir_(options.store_dir),
          inputs_digest_(campaign_inputs_digest()),
          fault_mid_shard_(fault_from_env("QRN_SCHED_FAULT_MID_SHARD")) {
        std::optional<CampaignPlan> plan = read_plan(store_dir_);
        if (!plan) {
            throw store::StoreError(
                store::StoreErrorKind::Io,
                "no campaign plan in '" + store_dir_ +
                    "' (run the coordinator first: qrn campaign --distributed "
                    "--store " +
                    store_dir_ + ")");
        }
        plan_ = std::move(*plan);
        verify_plan_keys(plan_, inputs_digest_);
        config_ = config_from_plan(plan_, options.jobs);
    }

    [[nodiscard]] const CampaignPlan& plan() const noexcept { return plan_; }

    [[nodiscard]] std::string shard_path(std::uint64_t fleet_index) const {
        return store_dir_ + "/" +
               store::Store::shard_filename(fleet_index,
                                            plan_.nodes[fleet_index].key);
    }

    /// True when the fleet's shard already verifies clean under the plan's
    /// key: the node is done no matter who sealed it.
    [[nodiscard]] bool shard_done(std::uint64_t fleet_index) const {
        try {
            const store::ShardInfo info =
                store::verify_shard(shard_path(fleet_index));
            return info.cache_key == plan_.nodes[fleet_index].key &&
                   info.fleet_index == fleet_index;
        } catch (const store::StoreError&) {
            return false;
        }
    }

    /// Simulates and seals the fleet's shard unless it is already done.
    void execute(std::uint64_t fleet_index) {
        if (shard_done(fleet_index)) return;
        if (fault_fires(fault_mid_shard_, fleet_index)) {
            // A crash mid-seal leaves a garbage temp file behind; the
            // sealed name never appears (write_shard renames last).
            std::ofstream garbage(
                shard_path(fleet_index) + std::string(store::kTempSuffix),
                std::ios::trunc);
            garbage << "partial write cut short by crash\n";
            garbage.flush();
            std::_Exit(137);
        }
        obs::ScopedTimer timer("sched.node_exec_ns");
        const store::ShardEntry entry = store::simulate_fleet_shard(
            config_, store_dir_, fleet_index, inputs_digest_);
        if (obs::enabled()) {
            obs::add_counter("sched.nodes_completed", 1);
            obs::add_counter("store.records_written_by_worker", entry.records);
        }
    }

private:
    std::string store_dir_;
    std::string inputs_digest_;
    std::optional<Fault> fault_mid_shard_;
    CampaignPlan plan_;
    sim::CampaignConfig config_;
};

/// Protocol replies must stay one line each.
std::string one_line(std::string text) {
    for (char& ch : text) {
        if (ch == '\n' || ch == '\r') ch = ' ';
    }
    return text;
}

}  // namespace

int run_attached_worker(std::istream& in, std::ostream& out,
                        const WorkerOptions& options) {
    NodeRunner runner(options);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        constexpr std::string_view kRun = "run ";
        if (line.size() <= kRun.size() ||
            std::string_view(line).substr(0, kRun.size()) != kRun) {
            out << "fail - unknown-command " << one_line(line) << "\n";
            out.flush();
            continue;
        }
        const std::string id = line.substr(kRun.size());
        const std::optional<std::uint64_t> fleet = fleet_index_of(id);
        if (!fleet || *fleet >= runner.plan().fleets) {
            out << "fail " << id << " unknown-node\n";
            out.flush();
            continue;
        }
        try {
            runner.execute(*fleet);
            out << "ok " << id << "\n";
        } catch (const std::exception& error) {
            out << "fail " << id << " " << one_line(error.what()) << "\n";
        }
        out.flush();
    }
    return 0;
}

int run_standalone_worker(const WorkerOptions& options) {
    NodeRunner runner(options);
    const std::string owner = options.owner.empty()
                                  ? "worker-" + std::to_string(::getpid())
                                  : options.owner;
    const std::string leases = lease_dir(options.store_dir);
    const std::optional<Fault> fault_mid_lease =
        fault_from_env("QRN_SCHED_FAULT_MID_LEASE");

    for (;;) {
        bool all_done = true;
        bool progressed = false;
        for (std::uint64_t i = 0; i < runner.plan().fleets; ++i) {
            if (runner.shard_done(i)) continue;
            all_done = false;

            const std::string id = plan_node_id(i);
            bool held = false;
            const std::optional<store::Lease> current =
                store::read_lease(leases, id);
            if (!current) {
                held = store::try_acquire_lease(
                    leases, store::Lease{id, owner, store::lease_now_ms(),
                                         options.lease_ttl_ms, 1});
            } else if (store::lease_expired(*current, store::lease_now_ms())) {
                // Steal: the holder died or stalled past its TTL. Two
                // stealers racing here both run the node; duplicate
                // execution is benign (deterministic bytes, atomic seal).
                store::overwrite_lease(
                    leases, store::Lease{id, owner, store::lease_now_ms(),
                                         options.lease_ttl_ms,
                                         current->generation + 1});
                if (obs::enabled()) obs::add_counter("sched.leases_stolen", 1);
                held = true;
            }
            if (!held) continue;
            if (obs::enabled()) obs::add_counter("sched.leases_acquired", 1);

            if (fault_fires(fault_mid_lease, i)) {
                // Crash while holding the lease: the file stays behind and
                // must be stolen after the TTL for the campaign to finish.
                std::_Exit(137);
            }
            runner.execute(i);
            store::release_lease(leases, id);
            progressed = true;
        }
        if (all_done) return 0;
        if (!progressed) {
            // Every remaining node is leased by a live peer; back off
            // until something finishes or a lease expires.
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    }
}

}  // namespace qrn::sched
