// The campaign plan: the distributed scheduler's shared source of truth.
//
// `DIR/sched/plan.json` is written once by the coordinator (that is the
// DAG's "generate" node) and read by every worker sharing the store. It
// pins the campaign's identity - policy, ODD, seed, fleet count, hours -
// and the PR 5 content-addressed cache key of every fleet node, so a node
// is "done" exactly when the sealed shard named by its key verifies clean
// in the store. Workers recompute each key from the reconstructed config
// and refuse to run when any key disagrees with the plan: a build or
// catalog skew between machines must abort loudly, never seal shards a
// byte-identical campaign would not have produced.
//
// Seed and hours travel as 16-digit hex (the seed's u64 value, the hours'
// IEEE-754 bit pattern) because both feed the cache keys bit-for-bit and a
// JSON double cannot carry a full u64 exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sched/dag.h"
#include "sim/campaign.h"

namespace qrn::sched {

inline constexpr std::string_view kGenerateNode = "generate";
inline constexpr std::string_view kAggregateNode = "aggregate";
inline constexpr std::string_view kVerifyNode = "verify";

/// One fleet node of the plan.
struct PlanNode {
    std::uint64_t fleet_index = 0;
    std::uint64_t key = 0;  ///< fleet_cache_key of this fleet.

    friend bool operator==(const PlanNode&, const PlanNode&) = default;
};

/// The whole campaign, as the store's workers see it.
struct CampaignPlan {
    std::string policy;  ///< Tactical-policy name ("nominal", ...).
    std::string odd;     ///< ODD name ("urban" | "highway").
    std::uint64_t seed = 0;
    std::uint64_t fleets = 0;
    double hours_per_fleet = 0.0;
    std::vector<PlanNode> nodes;  ///< One per fleet, fleet order.

    friend bool operator==(const CampaignPlan&, const CampaignPlan&) = default;
};

/// "fleet-00042": the DAG/lease node id of a fleet (5-digit zero-padded,
/// matching the shard file-name convention).
[[nodiscard]] std::string plan_node_id(std::uint64_t fleet_index);

/// Inverse of plan_node_id; nullopt for anything else.
[[nodiscard]] std::optional<std::uint64_t> fleet_index_of(std::string_view id);

/// The opaque inputs digest every campaign cache key folds in: the
/// serialized incident-type catalog evidence is labelled against. Must
/// stay identical to what the CLI's plain --store path digests.
[[nodiscard]] std::string campaign_inputs_digest();

/// Compiles a campaign into a plan: one node per fleet with its content
/// key. `policy`/`odd` must be the names `config.base` was built from.
[[nodiscard]] CampaignPlan make_plan(std::string policy, std::string odd,
                                     const sim::CampaignConfig& config,
                                     std::string_view inputs_digest);

/// Reconstructs the CampaignConfig a plan describes. Throws SchedError on
/// an unknown policy/ODD name (a plan from a newer build).
[[nodiscard]] sim::CampaignConfig config_from_plan(const CampaignPlan& plan,
                                                   unsigned jobs);

/// Recomputes every node key from the reconstructed config and throws
/// SchedError on the first mismatch: this build would not reproduce the
/// plan's shards (config or catalog skew), so it must not participate.
void verify_plan_keys(const CampaignPlan& plan, std::string_view inputs_digest);

/// `DIR/sched/plan.json` and `DIR/sched/leases`.
[[nodiscard]] std::string plan_path(const std::string& store_dir);
[[nodiscard]] std::string lease_dir(const std::string& store_dir);

/// Writes the plan atomically (temp + fsync + rename + directory fsync,
/// the seal order) and creates the sched/ and sched/leases directories.
/// Throws StoreError(Io) on failure.
void write_plan(const std::string& store_dir, const CampaignPlan& plan);

/// Reads a store's plan. Returns nullopt when no plan has been written;
/// throws SchedError when the file exists but is not a valid plan, and
/// StoreError(Io) when it cannot be read.
[[nodiscard]] std::optional<CampaignPlan> read_plan(const std::string& store_dir);

/// The campaign work DAG: generate -> fleet-i (weight hours_per_fleet)
/// -> aggregate -> verify, built and frozen.
[[nodiscard]] Dag build_campaign_dag(const CampaignPlan& plan);

}  // namespace qrn::sched
