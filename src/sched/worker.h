// Scheduler workers: the processes that execute fleet nodes of a
// distributed campaign.
//
// Two modes share one execution path (store::simulate_fleet_shard, the
// same function behind the local cache-miss branch, so shard bytes never
// depend on which process sealed them):
//
//  - *Attached* (`qrn sched worker --attached`): spawned by the
//    coordinator with a pipe on stdin/stdout. Reads "run <node-id>" lines,
//    replies "ok <node-id>" or "fail <node-id> <reason>", exits cleanly on
//    stdin EOF. The coordinator owns all leases in this mode.
//
//  - *Standalone* (`qrn sched worker --store DIR`): launched externally
//    against a store whose plan the coordinator already wrote. Claims
//    ready fleet nodes itself via lease files under DIR/sched/leases
//    (acquire free nodes, steal expired leases), executes them, and exits
//    0 once every fleet shard in the plan verifies clean. Safe to run any
//    number of these concurrently with or without a coordinator: a node is
//    "done" iff its sealed shard verifies, so duplicate execution only
//    wastes cycles.
//
// A worker refuses to participate when its build would not reproduce the
// plan's cache keys (verify_plan_keys): divergent shards must never enter
// a shared store.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace qrn::sched {

struct WorkerOptions {
    std::string store_dir;
    unsigned jobs = 1;                   ///< Reserved; fleets run one at a time.
    std::uint64_t lease_ttl_ms = 10000;  ///< Standalone lease TTL.
    std::string owner;                   ///< Lease owner id; "" = "worker-<pid>".
};

/// Attached mode: serve "run <id>" requests from `in`, answer on `out`.
/// Returns the process exit code (0 on clean EOF).
int run_attached_worker(std::istream& in, std::ostream& out,
                        const WorkerOptions& options);

/// Standalone mode: claim-and-execute loop over the store's plan.
/// Returns 0 when every fleet node's shard verifies clean. Throws
/// StoreError(Io) when the store has no plan yet.
int run_standalone_worker(const WorkerOptions& options);

}  // namespace qrn::sched
