#include "serve/protocol.h"

#include <cmath>

#include "store/format.h"

namespace qrn::serve {

namespace {

using store::get_f64;
using store::get_u32;
using store::get_u64;
using store::kRecordBytes;
using store::put_f64;
using store::put_u32;
using store::put_u64;

void put_u16(std::string& out, std::uint16_t value) {
    out.push_back(static_cast<char>(value & 0xFFu));
    out.push_back(static_cast<char>((value >> 8) & 0xFFu));
}

[[nodiscard]] std::uint16_t get_u16(std::string_view bytes, std::size_t offset) {
    return static_cast<std::uint16_t>(
        static_cast<unsigned char>(bytes[offset]) |
        (static_cast<unsigned char>(bytes[offset + 1]) << 8));
}

void require_size(std::string_view payload, std::size_t expected,
                  const char* what) {
    if (payload.size() != expected) {
        throw ProtocolError(std::string(what) + ": payload is " +
                            std::to_string(payload.size()) + " bytes, expected " +
                            std::to_string(expected));
    }
}

}  // namespace

std::string encode_frame(std::uint8_t code, std::string_view payload) {
    if (payload.size() + 1 > kMaxFrameBytes) {
        throw ProtocolError("frame exceeds kMaxFrameBytes (" +
                            std::to_string(payload.size() + 1) + " bytes)");
    }
    std::string out;
    out.reserve(4 + 1 + payload.size());
    put_u32(out, static_cast<std::uint32_t>(payload.size() + 1));
    out.push_back(static_cast<char>(code));
    out.append(payload);
    return out;
}

std::string encode_classify_payload(double exposure_hours,
                                    const std::vector<Incident>& incidents) {
    std::string out;
    out.reserve(8 + 4 + incidents.size() * kRecordBytes);
    put_f64(out, exposure_hours);
    put_u32(out, static_cast<std::uint32_t>(incidents.size()));
    for (const auto& incident : incidents) {
        store::encode_record(out, incident);
    }
    return out;
}

ClassifyRequest decode_classify_payload(std::string_view payload) {
    if (payload.size() < 12) {
        throw ProtocolError("classify: payload shorter than its fixed header");
    }
    ClassifyRequest out;
    out.exposure_hours = get_f64(payload, 0);
    if (!std::isfinite(out.exposure_hours) || out.exposure_hours < 0.0) {
        throw ProtocolError("classify: exposure delta must be finite and >= 0");
    }
    const std::uint32_t count = get_u32(payload, 8);
    require_size(payload, 12 + static_cast<std::size_t>(count) * kRecordBytes,
                 "classify");
    out.incidents.reserve(count);
    try {
        for (std::uint32_t i = 0; i < count; ++i) {
            out.incidents.push_back(store::decode_record(
                payload, 12 + static_cast<std::size_t>(i) * kRecordBytes,
                "classify record " + std::to_string(i)));
        }
    } catch (const store::StoreError& error) {
        throw ProtocolError(error.what());
    }
    return out;
}

std::string encode_verify_payload(double confidence) {
    std::string out;
    put_f64(out, confidence);
    return out;
}

double decode_verify_payload(std::string_view payload) {
    require_size(payload, 8, "verify");
    const double confidence = get_f64(payload, 0);
    if (!std::isfinite(confidence) || confidence <= 0.0 || confidence >= 1.0) {
        throw ProtocolError("verify: confidence must be in (0, 1)");
    }
    return confidence;
}

std::string encode_classify_reply(const std::vector<ClassifyRow>& rows) {
    std::string out;
    out.reserve(4 + rows.size() * 4);
    put_u32(out, static_cast<std::uint32_t>(rows.size()));
    for (const auto& row : rows) {
        put_u16(out, row.leaf);
        put_u16(out, row.type);
    }
    return out;
}

std::vector<ClassifyRow> decode_classify_reply(std::string_view payload) {
    if (payload.size() < 4) {
        throw ProtocolError("classify reply: payload shorter than its count");
    }
    const std::uint32_t count = get_u32(payload, 0);
    require_size(payload, 4 + static_cast<std::size_t>(count) * 4,
                 "classify reply");
    std::vector<ClassifyRow> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        ClassifyRow row;
        row.leaf = get_u16(payload, 4 + static_cast<std::size_t>(i) * 4);
        row.type = get_u16(payload, 6 + static_cast<std::size_t>(i) * 4);
        out.push_back(row);
    }
    return out;
}

std::string encode_busy_payload(std::uint32_t retry_after_ms) {
    std::string out;
    put_u32(out, retry_after_ms);
    return out;
}

std::uint32_t decode_busy_payload(std::string_view payload) {
    require_size(payload, 4, "busy");
    return get_u32(payload, 0);
}

std::string encode_status_reply(const StatusReply& status) {
    std::string out;
    out.reserve(33);
    put_u64(out, status.records_sealed);
    put_u64(out, status.records_pending);
    put_u64(out, status.shards_sealed);
    put_f64(out, status.exposure_sealed_hours);
    out.push_back(static_cast<char>(status.draining ? 1 : 0));
    return out;
}

StatusReply decode_status_reply(std::string_view payload) {
    require_size(payload, 33, "status reply");
    StatusReply out;
    out.records_sealed = get_u64(payload, 0);
    out.records_pending = get_u64(payload, 8);
    out.shards_sealed = get_u64(payload, 16);
    out.exposure_sealed_hours = get_f64(payload, 24);
    out.draining = payload[32] != 0;
    return out;
}

}  // namespace qrn::serve
