// qrn-serve-load: loopback load generator for a running qrn-serve daemon.
//
//   qrn-serve-load (--socket PATH | --port N) [--batches N]
//                  [--batch-size N] [--connections N] [--exposure H]
//                  [--start-record K] [--status] [--verify]
//
// Streams the canonical synthetic incident stream (serve/stream.h) as
// classify batches, retrying Busy backpressure replies, and prints a
// throughput summary. --start-record resumes the stream at a global
// record offset (what a crash-recovery client does after reading
// records_sealed from a Status reply). Exit codes: 0 ok, 1 usage,
// 2 a batch was finally rejected or a reply was malformed, 3 connect or
// socket failure.
#include <algorithm>
#include <cstdint>
#include <chrono>
// qrn-lint: allow(iostream-in-lib) CLI entry point: stdout/stderr is the product surface
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/stream.h"
#include "tools/parse.h"

namespace {

using qrn::serve::Client;
using qrn::serve::Status;

struct Options {
    std::string socket_path;
    std::uint16_t port = 0;
    bool use_tcp = false;
    std::uint64_t batches = 100;
    std::uint64_t batch_size = 256;
    unsigned connections = 1;
    double exposure_per_batch = 10.0;
    std::uint64_t start_record = 0;
    bool query_status = false;
    bool query_verify = false;
};

int usage() {
    std::cerr << "usage: qrn-serve-load (--socket PATH | --port N)\n"
              << "  [--batches N] [--batch-size N] [--connections N]\n"
              << "  [--exposure HOURS-PER-BATCH] [--start-record K]\n"
              << "  [--status] [--verify]\n";
    return 1;
}

Client connect(const Options& options) {
    return options.use_tcp ? Client::connect_tcp(options.port)
                           : Client::connect_unix(options.socket_path);
}

/// One worker's share of the batches: worker w sends batches w,
/// w + connections, w + 2*connections, ... so every batch is sent exactly
/// once whatever the concurrency.
struct WorkerResult {
    std::uint64_t records = 0;
    std::uint64_t busy_retries = 0;
    bool failed = false;
    std::string error;
};

WorkerResult run_worker(const Options& options, unsigned worker) {
    WorkerResult result;
    try {
        Client client = connect(options);
        for (std::uint64_t b = worker; b < options.batches;
             b += options.connections) {
            std::vector<qrn::Incident> batch;
            batch.reserve(options.batch_size);
            const std::uint64_t base =
                options.start_record + b * options.batch_size;
            for (std::uint64_t i = 0; i < options.batch_size; ++i) {
                batch.push_back(qrn::serve::stream_incident(base + i));
            }
            for (unsigned attempt = 0;; ++attempt) {
                const auto reply =
                    client.classify(options.exposure_per_batch, batch);
                if (reply.status == Status::Ok) {
                    if (reply.rows.size() != batch.size()) {
                        result.failed = true;
                        result.error = "reply row count mismatch";
                        return result;
                    }
                    result.records += batch.size();
                    break;
                }
                if (reply.status != Status::Busy || attempt >= 1000) {
                    result.failed = true;
                    result.error = reply.status == Status::Busy
                                       ? "still busy after 1000 retries"
                                       : "server error: " + reply.payload;
                    return result;
                }
                ++result.busy_retries;
                // Floor the server's hint at 1 ms: a zero hint would spin
                // this worker against a saturated daemon at socket speed.
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    std::max<std::uint32_t>(reply.retry_after_ms, 1)));
            }
        }
    } catch (const std::exception& error) {
        result.failed = true;
        result.error = error.what();
    }
    return result;
}

int run(const Options& options) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    std::vector<WorkerResult> results(options.connections);
    for (unsigned w = 1; w < options.connections; ++w) {
        workers.emplace_back(
            [&, w] { results[w] = run_worker(options, w); });
    }
    results[0] = run_worker(options, 0);
    for (auto& worker : workers) worker.join();
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    WorkerResult total;
    for (const auto& result : results) {
        total.records += result.records;
        total.busy_retries += result.busy_retries;
        if (result.failed && !total.failed) {
            total.failed = true;
            total.error = result.error;
        }
    }
    if (total.failed) {
        std::cerr << "qrn-serve-load: " << total.error << '\n';
        return 2;
    }
    std::cout << "qrn-serve-load: " << total.records << " records in "
              << options.batches << " batches over " << options.connections
              << " connection(s), " << total.busy_retries
              << " busy retries, "
              << static_cast<std::uint64_t>(
                     elapsed > 0.0 ? static_cast<double>(total.records) / elapsed
                                   : 0.0)
              << " records/s\n";

    if (options.query_status) {
        Client client = connect(options);
        const auto status = client.status();
        if (status.status != Status::Ok) {
            std::cerr << "qrn-serve-load: status failed: " << status.payload
                      << '\n';
            return 2;
        }
        std::cout << "status: sealed_records=" << status.state.records_sealed
                  << " pending_records=" << status.state.records_pending
                  << " sealed_shards=" << status.state.shards_sealed
                  << " sealed_exposure_hours="
                  << status.state.exposure_sealed_hours
                  << " draining=" << (status.state.draining ? 1 : 0) << '\n';
    }
    if (options.query_verify) {
        Client client = connect(options);
        const auto verdict = client.verify();
        if (verdict.status != Status::Ok) {
            std::cerr << "qrn-serve-load: verify failed: " << verdict.payload
                      << '\n';
            return 2;
        }
        std::cout << verdict.payload;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using qrn::tools::parse_f64;
    using qrn::tools::parse_u64;
    Options options;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc) {
                    throw qrn::tools::ParseError(arg, "", "a value");
                }
                return argv[++i];
            };
            if (arg == "--socket") {
                options.socket_path = value();
            } else if (arg == "--port") {
                options.port = static_cast<std::uint16_t>(
                    parse_u64(arg, value(), 1, 65535));
                options.use_tcp = true;
            } else if (arg == "--batches") {
                options.batches = parse_u64(arg, value(), 0, 1'000'000'000);
            } else if (arg == "--batch-size") {
                options.batch_size = parse_u64(arg, value(), 1, 500'000);
            } else if (arg == "--connections") {
                options.connections =
                    static_cast<unsigned>(parse_u64(arg, value(), 1, 1024));
            } else if (arg == "--exposure") {
                options.exposure_per_batch = parse_f64(arg, value());
            } else if (arg == "--start-record") {
                options.start_record = parse_u64(arg, value());
            } else if (arg == "--status") {
                options.query_status = true;
            } else if (arg == "--verify") {
                options.query_verify = true;
            } else {
                return usage();
            }
        }
        if (options.socket_path.empty() && !options.use_tcp) return usage();
        if (!options.socket_path.empty() && options.use_tcp) return usage();
        return run(options);
    } catch (const qrn::tools::ParseError& error) {
        std::cerr << "qrn-serve-load: " << error.what() << '\n';
        return 1;
    } catch (const qrn::serve::SocketError& error) {
        std::cerr << "qrn-serve-load: " << error.what() << '\n';
        return 3;
    } catch (const std::exception& error) {
        std::cerr << "qrn-serve-load: " << error.what() << '\n';
        return 2;
    }
}
