// Deterministic synthetic incident stream shared by the loopback load
// generator, the serve benchmark and the crash-recovery tests.
//
// stream_incident(i) is a pure function of the global record index, so a
// replayed stream is byte-identical no matter how it is batched - which
// is exactly the property the kill/restart recovery test leans on.
#pragma once

#include <cstdint>

#include "qrn/incident.h"

namespace qrn::serve {

/// The i-th record of the canonical synthetic stream. Always satisfies
/// qrn::validate(); cycles through ego-involved collisions/near misses
/// and induced incidents across every counterparty type.
[[nodiscard]] Incident stream_incident(std::uint64_t index);

}  // namespace qrn::serve
