#include "serve/socket.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace qrn::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& action) {
    throw SocketError(action + ": " + std::strerror(errno));
}

[[nodiscard]] int new_socket(int domain) {
    const int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    return fd;
}

[[nodiscard]] sockaddr_un unix_address(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        throw SocketError("unix socket path must be 1.." +
                          std::to_string(sizeof(addr.sun_path) - 1) +
                          " bytes: '" + path + "'");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

[[nodiscard]] sockaddr_in loopback_address(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket Socket::listen_unix(const std::string& path) {
    const sockaddr_un addr = unix_address(path);
    Socket sock(new_socket(AF_UNIX));
    ::unlink(path.c_str());  // stale socket file from a previous run
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        throw_errno("bind " + path);
    }
    if (::listen(sock.fd(), SOMAXCONN) != 0) throw_errno("listen " + path);
    return sock;
}

Socket Socket::listen_tcp(std::uint16_t port) {
    const sockaddr_in addr = loopback_address(port);
    Socket sock(new_socket(AF_INET));
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        throw_errno("bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(sock.fd(), SOMAXCONN) != 0) throw_errno("listen tcp");
    return sock;
}

Socket Socket::connect_unix(const std::string& path) {
    const sockaddr_un addr = unix_address(path);
    Socket sock(new_socket(AF_UNIX));
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        throw_errno("connect " + path);
    }
    return sock;
}

Socket Socket::connect_tcp(std::uint16_t port) {
    const sockaddr_in addr = loopback_address(port);
    Socket sock(new_socket(AF_INET));
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        throw_errno("connect 127.0.0.1:" + std::to_string(port));
    }
    return sock;
}

std::uint16_t Socket::bound_port() const {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        throw_errno("getsockname");
    }
    return ntohs(addr.sin_port);
}

bool Socket::wait_readable(int timeout_ms) {
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0) return true;
        if (rc == 0) return false;
        if (errno != EINTR) throw_errno("poll");
    }
}

std::optional<Socket> Socket::accept(int timeout_ms) {
    if (!wait_readable(timeout_ms)) return std::nullopt;
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
        // The peer may have gone away between poll and accept.
        if (errno == ECONNABORTED || errno == EAGAIN || errno == EINTR) {
            return std::nullopt;
        }
        throw_errno("accept");
    }
    return Socket(fd);
}

bool Socket::read_exact(void* buffer, std::size_t size) {
    auto* out = static_cast<char*>(buffer);
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd_, out + got, size - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            if (got == 0) return false;  // clean EOF between messages
            throw SocketError("peer closed mid-message (" + std::to_string(got) +
                              " of " + std::to_string(size) + " bytes)");
        }
        if (errno != EINTR) throw_errno("recv");
    }
    return true;
}

void Socket::write_all(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno != EINTR) throw_errno("send");
    }
}

}  // namespace qrn::serve
