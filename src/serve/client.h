// Blocking client for the qrn-serve protocol: one connection, one
// request/reply in flight. Used by the loopback load generator, the CI
// smoke test and the serve test-suite; it is also the reference encoder
// for third-party clients.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qrn/incident.h"
#include "serve/protocol.h"
#include "serve/socket.h"

namespace qrn::serve {

/// One response, decoded as far as its status allows.
struct Reply {
    Status status = Status::Error;
    std::string payload;            ///< Raw payload (JSON for verify/allocate).
    std::uint32_t retry_after_ms = 0;  ///< Busy only.
};

class Client {
public:
    [[nodiscard]] static Client connect_unix(const std::string& path);
    [[nodiscard]] static Client connect_tcp(std::uint16_t port);

    /// Sends a classify batch. On Ok, `rows` holds one entry per record.
    struct ClassifyReply : Reply {
        std::vector<ClassifyRow> rows;
    };
    [[nodiscard]] ClassifyReply classify(double exposure_hours,
                                         const std::vector<Incident>& incidents);

    /// Like classify(), but retries Busy replies (sleeping the server's
    /// hint each time, floored at 1 ms so a zero hint cannot busy-spin
    /// the connection) until accepted or `max_attempts` is exhausted.
    /// Returns the final Busy reply without sleeping when the budget runs
    /// out - the caller decides what rejection means.
    [[nodiscard]] ClassifyReply classify_with_retry(
        double exposure_hours, const std::vector<Incident>& incidents,
        unsigned max_attempts = 100);

    [[nodiscard]] Reply verify(double confidence = 0.95);
    [[nodiscard]] Reply allocate();

    struct StatusResult : Reply {
        StatusReply state;
    };
    [[nodiscard]] StatusResult status();

    void close() noexcept { socket_.close(); }

private:
    explicit Client(Socket socket) : socket_(std::move(socket)) {}

    [[nodiscard]] Reply roundtrip(Opcode opcode, std::string_view payload);

    Socket socket_;
};

}  // namespace qrn::serve
