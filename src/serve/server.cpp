#include "serve/server.h"

#include <condition_variable>
#include <cstring>
#include <utility>

#include <unistd.h>

#include "obs/metrics.h"
#include "store/format.h"

namespace qrn::serve {

// Server::readers_ is declared in server.h, so its attached annotation
// there is invisible to a per-file lint pass over this translation unit;
// the file-wide form re-states the contract where the accesses live.
// qrn:guarded_by(readers_, readers_mutex_)
//
// The two locks in this file never nest today; the declared order keeps
// it that way: a reader-list holder may take a rendezvous lock, never
// the reverse.
// qrn:lock_order(readers_mutex_ < mutex)

/// Reply rendezvous between the dispatcher and the reader that owns the
/// connection. Shared ownership: the reader may abandon the wait only by
/// process death, but the block must outlive whichever side finishes
/// last.
struct Server::Pending {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;            // qrn:guarded_by(mutex)
    Status status = Status::Error;  // qrn:guarded_by(mutex)
    std::string payload;          // qrn:guarded_by(mutex)
};

/// One decoded request travelling reader -> dispatcher.
struct Server::Job {
    Opcode opcode{};
    ClassifyRequest classify;   ///< Classify only.
    double confidence = 0.95;   ///< Verify only.
    std::shared_ptr<Pending> pending;
};

Server::Server(std::unique_ptr<Service> service, ServerConfig config)
    : service_(std::move(service)),
      config_(std::move(config)),
      queue_(std::make_unique<BoundedQueue<Job>>(config_.queue_capacity)) {
    if (obs::enabled()) {
        obs::add_counter("serve.connections", 0);
        obs::add_counter("serve.rejected_busy", 0);
        obs::add_counter("serve.protocol_errors", 0);
        obs::record_max("serve.queue_depth_max", 0);
    }
}

Server::~Server() {
    try {
        drain();
    } catch (...) {
        // A destructor cannot surface the failure; drain() called
        // explicitly is the path that reports it.
    }
}

void Server::start() {
    if (started_) return;
    listener_ = config_.socket_path.empty()
                    ? Socket::listen_tcp(config_.port)
                    : Socket::listen_unix(config_.socket_path);
    started_ = true;
    dispatch_thread_ = std::thread([this] { dispatch_loop(); });
    accept_thread_ = std::thread([this] { accept_loop(); });
}

std::uint16_t Server::port() const { return listener_.bound_port(); }

void Server::drain() {
    if (!started_ || drained_) {
        drained_ = true;
        return;
    }
    draining_.store(true, std::memory_order_relaxed);
    if (accept_thread_.joinable()) accept_thread_.join();
    listener_.close();
    if (!config_.socket_path.empty()) {
        ::unlink(config_.socket_path.c_str());
    }
    // Readers finish their in-flight request (its reply comes from the
    // still-running dispatcher) and exit at the next poll tick.
    {
        const std::lock_guard<std::mutex> lock(readers_mutex_);
        for (auto& reader : readers_) {
            if (reader.joinable()) reader.join();
        }
        readers_.clear();
    }
    // Nothing can enqueue any more; flush what is queued, then seal.
    queue_->close();
    if (dispatch_thread_.joinable()) dispatch_thread_.join();
    service_->finish();
    drained_ = true;
}

void Server::accept_loop() {
    while (!draining()) {
        std::optional<Socket> conn;
        try {
            conn = listener_.accept(config_.poll_ms);
        } catch (const SocketError&) {
            return;  // listener died; drain() still flushes the queue
        }
        if (!conn) continue;
        if (obs::enabled()) obs::add_counter("serve.connections", 1);
        const std::lock_guard<std::mutex> lock(readers_mutex_);
        readers_.emplace_back(
            [this, sock = std::move(*conn)]() mutable { reader_loop(std::move(sock)); });
    }
}

void Server::reader_loop(Socket socket) {
    std::string payload;
    for (;;) {
        // Poll so a drain is noticed between requests, never mid-request.
        for (;;) {
            if (draining()) return;
            bool readable = false;
            try {
                readable = socket.wait_readable(config_.poll_ms);
            } catch (const SocketError&) {
                return;
            }
            if (readable) break;
        }
        try {
            unsigned char head[4];
            if (!socket.read_exact(head, sizeof(head))) return;  // clean EOF
            const std::uint32_t length =
                static_cast<std::uint32_t>(head[0]) |
                (static_cast<std::uint32_t>(head[1]) << 8) |
                (static_cast<std::uint32_t>(head[2]) << 16) |
                (static_cast<std::uint32_t>(head[3]) << 24);
            if (length == 0 || length > kMaxFrameBytes) return;  // violation
            std::uint8_t opcode = 0;
            if (!socket.read_exact(&opcode, 1)) return;
            payload.resize(length - 1);
            if (length > 1 && !socket.read_exact(payload.data(), payload.size())) {
                return;
            }

            Job job;
            try {
                switch (static_cast<Opcode>(opcode)) {
                    case Opcode::Classify:
                        job.classify = decode_classify_payload(payload);
                        break;
                    case Opcode::Verify:
                        job.confidence = decode_verify_payload(payload);
                        break;
                    case Opcode::Allocate:
                    case Opcode::Status:
                        break;
                    default:
                        throw ProtocolError("unknown opcode " +
                                            std::to_string(opcode));
                }
            } catch (const ProtocolError& error) {
                if (obs::enabled()) obs::add_counter("serve.protocol_errors", 1);
                socket.write_all(encode_frame(
                    static_cast<std::uint8_t>(Status::Error), error.what()));
                continue;
            }
            job.opcode = static_cast<Opcode>(opcode);
            job.pending = std::make_shared<Pending>();
            const auto pending = job.pending;

            if (!queue_->try_push(std::move(job))) {
                // Backpressure: the queue is full. Nothing was enqueued;
                // the client owns the retry.
                if (obs::enabled()) obs::add_counter("serve.rejected_busy", 1);
                socket.write_all(
                    encode_frame(static_cast<std::uint8_t>(Status::Busy),
                                 encode_busy_payload(config_.retry_after_ms)));
                continue;
            }
            if (obs::enabled()) {
                obs::record_max("serve.queue_depth_max", queue_->size());
            }
            std::unique_lock<std::mutex> lock(pending->mutex);
            pending->cv.wait(lock, [&] { return pending->done; });
            socket.write_all(encode_frame(
                static_cast<std::uint8_t>(pending->status), pending->payload));
        } catch (const SocketError&) {
            return;  // peer vanished; its queued work still completes
        }
    }
}

void Server::dispatch_loop() {
    // qrn:dispatcher(begin) -- the sole store-append serializer: blocking
    // here stalls every queued request, so socket/file I/O, sleeps and
    // joins are banned inside (pop() is the one sanctioned wait).
    while (auto job = queue_->pop()) {
        Status status = Status::Ok;
        std::string payload;
        try {
            switch (job->opcode) {
                case Opcode::Classify:
                    payload = encode_classify_reply(
                        service_->classify_batch(job->classify));
                    break;
                case Opcode::Verify:
                    payload = service_->verify_json(job->confidence);
                    break;
                case Opcode::Allocate:
                    payload = service_->allocate_json();
                    break;
                case Opcode::Status: {
                    StatusReply reply = service_->status();
                    reply.draining = draining();
                    payload = encode_status_reply(reply);
                    break;
                }
            }
        } catch (const std::exception& error) {
            status = Status::Error;
            payload = error.what();
        }
        {
            const std::lock_guard<std::mutex> lock(job->pending->mutex);
            job->pending->status = status;
            job->pending->payload = std::move(payload);
            job->pending->done = true;
            job->pending->cv.notify_one();
        }
    }
    // qrn:dispatcher(end)
}

}  // namespace qrn::serve
