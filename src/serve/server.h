// The qrn-serve daemon shell: sockets, threads, the bounded request queue
// and the graceful-drain lifecycle around a single-threaded Service.
//
// Thread structure (the only sanctioned std::thread use outside src/exec):
//
//   accept thread      polls the listener, spawns one reader per client
//   reader threads     read frames, decode, try_push onto the bounded
//                      queue; a full queue answers Busy immediately -
//                      backpressure is explicit, never a latency cliff
//   dispatcher thread  the sole consumer: executes requests against the
//                      Service one at a time, which serializes every
//                      store append into deterministic arrival order
//
// Readers block on their request's reply rendezvous and write the
// response themselves, so per-connection request/reply ordering holds
// without any write-side locking.
//
// Drain (SIGTERM): stop accepting, let readers finish their in-flight
// request, close every connection, flush the queue through the
// dispatcher, then seal the partial shard. After drain() returns the
// store is complete and a restarted daemon resumes exactly there.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/queue.h"
#include "serve/service.h"
#include "serve/socket.h"

namespace qrn::serve {

struct ServerConfig {
    /// Unix-domain socket path; when empty, a loopback TCP socket on
    /// `port` is used instead.
    std::string socket_path;
    std::uint16_t port = 0;  ///< TCP port; 0 picks an ephemeral one.
    std::size_t queue_capacity = 64;
    std::uint32_t retry_after_ms = 50;  ///< Hint carried by Busy replies.
    int poll_ms = 100;  ///< Accept/read poll granularity (drain latency).
};

class Server {
public:
    Server(std::unique_ptr<Service> service, ServerConfig config);
    ~Server();  ///< Drains first if still running.

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds, listens and starts the thread structure. Throws SocketError
    /// when the endpoint cannot be bound.
    void start();

    /// Graceful drain; blocks until the queue is flushed and the partial
    /// shard is sealed. Idempotent.
    void drain();

    /// The TCP port actually bound (after start(); resolves port 0).
    [[nodiscard]] std::uint16_t port() const;

    [[nodiscard]] bool draining() const noexcept {
        return draining_.load(std::memory_order_relaxed);
    }

    /// The service, for post-drain inspection in tests.
    [[nodiscard]] const Service& service() const noexcept { return *service_; }

private:
    struct Pending;
    struct Job;

    void accept_loop();
    void reader_loop(Socket socket);
    void dispatch_loop();

    std::unique_ptr<Service> service_;
    ServerConfig config_;
    Socket listener_;
    std::unique_ptr<BoundedQueue<Job>> queue_;
    std::thread accept_thread_;
    std::thread dispatch_thread_;
    std::mutex readers_mutex_;
    std::vector<std::thread> readers_;  // qrn:guarded_by(readers_mutex_)
    std::atomic<bool> draining_{false};
    bool started_ = false;
    bool drained_ = false;
};

}  // namespace qrn::serve
