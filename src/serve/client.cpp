#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace qrn::serve {

Client Client::connect_unix(const std::string& path) {
    return Client(Socket::connect_unix(path));
}

Client Client::connect_tcp(std::uint16_t port) {
    return Client(Socket::connect_tcp(port));
}

Reply Client::roundtrip(Opcode opcode, std::string_view payload) {
    socket_.write_all(
        encode_frame(static_cast<std::uint8_t>(opcode), payload));
    unsigned char head[4];
    if (!socket_.read_exact(head, sizeof(head))) {
        throw SocketError("server closed the connection before replying "
                          "(draining?)");
    }
    const std::uint32_t length = static_cast<std::uint32_t>(head[0]) |
                                 (static_cast<std::uint32_t>(head[1]) << 8) |
                                 (static_cast<std::uint32_t>(head[2]) << 16) |
                                 (static_cast<std::uint32_t>(head[3]) << 24);
    if (length == 0 || length > kMaxFrameBytes) {
        throw ProtocolError("reply frame length out of range: " +
                            std::to_string(length));
    }
    Reply reply;
    std::uint8_t status = 0;
    if (!socket_.read_exact(&status, 1)) {
        throw SocketError("server closed mid-reply");
    }
    if (status > static_cast<std::uint8_t>(Status::Error)) {
        throw ProtocolError("unknown reply status " + std::to_string(status));
    }
    reply.status = static_cast<Status>(status);
    reply.payload.resize(length - 1);
    if (length > 1 &&
        !socket_.read_exact(reply.payload.data(), reply.payload.size())) {
        throw SocketError("server closed mid-reply");
    }
    if (reply.status == Status::Busy) {
        reply.retry_after_ms = decode_busy_payload(reply.payload);
    }
    return reply;
}

Client::ClassifyReply Client::classify(double exposure_hours,
                                       const std::vector<Incident>& incidents) {
    ClassifyReply out;
    static_cast<Reply&>(out) =
        roundtrip(Opcode::Classify,
                  encode_classify_payload(exposure_hours, incidents));
    if (out.status == Status::Ok) {
        out.rows = decode_classify_reply(out.payload);
    }
    return out;
}

Client::ClassifyReply Client::classify_with_retry(
    double exposure_hours, const std::vector<Incident>& incidents,
    unsigned max_attempts) {
    ClassifyReply reply;
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        reply = classify(exposure_hours, incidents);
        if (reply.status != Status::Busy) return reply;
        if (attempt + 1 == max_attempts) break;  // no pointless final sleep
        // A server under pressure may hint retry_after_ms = 0 ("retry
        // now"); taking that literally busy-spins the connection and keeps
        // the server saturated. Always yield at least 1 ms.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::max<std::uint32_t>(reply.retry_after_ms, 1)));
    }
    return reply;  // still Busy after max_attempts; caller decides
}

Reply Client::verify(double confidence) {
    return roundtrip(Opcode::Verify, encode_verify_payload(confidence));
}

Reply Client::allocate() { return roundtrip(Opcode::Allocate, {}); }

Client::StatusResult Client::status() {
    StatusResult out;
    static_cast<Reply&>(out) = roundtrip(Opcode::Status, {});
    if (out.status == Status::Ok) {
        out.state = decode_status_reply(out.payload);
    }
    return out;
}

}  // namespace qrn::serve
