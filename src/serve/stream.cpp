#include "serve/stream.h"

namespace qrn::serve {

Incident stream_incident(std::uint64_t index) {
    Incident incident;
    if (index % 7 == 5) {
        // Induced incident: ego a causing factor, not a party.
        incident.first = ActorType::Car;
        incident.second =
            (index % 2 == 0) ? ActorType::Truck : ActorType::Vru;
        incident.ego_causing_factor = true;
    } else {
        incident.first = ActorType::EgoVehicle;
        // Counterparties cycle over the six non-ego types.
        incident.second = actor_type_from_index(1 + index % 6);
    }
    incident.mechanism = (index % 3 == 0) ? IncidentMechanism::NearMiss
                                          : IncidentMechanism::Collision;
    incident.relative_speed_kmh =
        5.0 + 1.25 * static_cast<double>(index % 64);
    incident.min_distance_m =
        incident.mechanism == IncidentMechanism::NearMiss
            ? 0.4 + 0.05 * static_cast<double>(index % 40)
            : 0.0;
    incident.timestamp_hours = 0.01 * static_cast<double>(index);
    return incident;
}

}  // namespace qrn::serve
