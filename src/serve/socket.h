// Minimal RAII sockets for the serve daemon: Unix-domain or loopback TCP,
// blocking reads/writes with poll-based timeouts on accept.
//
// Deliberately tiny - listen/accept/connect plus exact-length reads and
// full writes are everything the length-prefixed frame protocol needs.
// TCP listeners bind 127.0.0.1 only: the daemon is a local verification
// service, never an internet-facing one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace qrn::serve {

/// A socket operation failed at the OS level (distinct from
/// ProtocolError: the bytes never arrived, rather than arrived wrong).
class SocketError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// An open socket file descriptor with unique ownership.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) noexcept : fd_(fd) {}
    ~Socket();
    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    /// Listening Unix-domain socket at `path` (unlinks a stale file
    /// first). Throws SocketError on failure.
    [[nodiscard]] static Socket listen_unix(const std::string& path);

    /// Listening TCP socket on 127.0.0.1:`port` (0 = ephemeral; the bound
    /// port is readable via bound_port()).
    [[nodiscard]] static Socket listen_tcp(std::uint16_t port);

    [[nodiscard]] static Socket connect_unix(const std::string& path);
    [[nodiscard]] static Socket connect_tcp(std::uint16_t port);

    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int fd() const noexcept { return fd_; }

    /// The port a listening TCP socket actually bound (resolves 0).
    [[nodiscard]] std::uint16_t bound_port() const;

    /// Waits up to timeout_ms for a connection; nullopt on timeout.
    /// Throws SocketError when the listener itself fails.
    [[nodiscard]] std::optional<Socket> accept(int timeout_ms);

    /// Waits up to timeout_ms for the socket to become readable without
    /// consuming anything; false on timeout.
    [[nodiscard]] bool wait_readable(int timeout_ms);

    /// Reads exactly `size` bytes. Returns false on clean EOF before the
    /// first byte; throws SocketError on mid-message EOF or I/O error.
    [[nodiscard]] bool read_exact(void* buffer, std::size_t size);

    /// Writes all bytes or throws SocketError.
    void write_all(std::string_view bytes);

    void close() noexcept;

private:
    int fd_ = -1;
};

}  // namespace qrn::serve
