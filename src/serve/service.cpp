#include "serve/service.h"

#include <filesystem>
#include <utility>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "qrn/contribution.h"
#include "qrn/injury_risk.h"
#include "qrn/serialize.h"
#include "qrn/verification.h"
#include "store/aggregate.h"
#include "store/cache_key.h"
#include "store/format.h"

namespace qrn::serve {

namespace {

/// Format-version salt of serve shard cache keys. Serve shards are not
/// simulation caches: the key's only job is to make the shard file name a
/// pure function of (catalog, sequence) so a replayed stream reproduces
/// identical names.
constexpr std::string_view kServeKeySalt = "qrn.serve.shard.v1";

/// Declares every serve metric once so --metrics manifests have the same
/// structure whether or not a counter ever fired.
void declare_serve_metrics() {
    obs::add_counter("serve.batches", 0);
    obs::add_counter("serve.records_accepted", 0);
    obs::add_counter("serve.shards_sealed", 0);
    obs::add_counter("serve.requests_verify", 0);
    obs::add_counter("serve.requests_allocate", 0);
    obs::add_counter("serve.requests_status", 0);
    obs::declare_timer("serve.batch_ns");
    obs::declare_timer("serve.seal_ns");
    obs::declare_timer("serve.verify_ns");
}

}  // namespace

Service::Service(RiskNorm norm, IncidentTypeSet types, ServiceConfig config)
    : norm_(std::move(norm)),
      types_(std::move(types)),
      config_(std::move(config)),
      tree_(ClassificationTree::paper_example()),
      types_digest_(to_json(types_).dump()),
      store_(config_.store_dir) {
    if (config_.shard_roll == 0) {
        throw ServeError("shard_roll must be >= 1");
    }
    if (obs::enabled()) declare_serve_metrics();
    for (const auto& leaf : tree_.leaves()) {
        leaf_index_.emplace(leaf.joined(),
                            static_cast<std::uint16_t>(leaf_names_.size()));
        leaf_names_.push_back(leaf.joined());
    }
    {
        // Same construction as `qrn allocate`/`qrn verify`: the replies
        // must be byte-identical to the batch CLI on the same inputs.
        const InjuryRiskModel model;
        const auto matrix =
            ContributionMatrix::from_injury_model(norm_, types_, model, {0.6, 0.4});
        problem_.emplace(norm_, types_, matrix);
        allocation_.emplace(allocate_water_filling(*problem_));
    }
    sealed_type_events_.assign(types_.size(), 0);

    // Heal: an interrupted writer leaves a `.tmp` no reader ever trusts.
    for (const auto& name : store_.stray_temp_files()) {
        std::filesystem::remove(store_.dir() + "/" + name);
    }
    // Rebuild the sealed-prefix fold by re-scanning every sealed shard in
    // fleet order; the scan re-checksums all blocks, so corruption fails
    // startup loudly instead of poisoning the evidence.
    const auto entries = store_.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].fleet_index != i) {
            throw store::StoreError(
                store::StoreErrorKind::Inconsistent,
                store_.dir() + ": serve store must hold a contiguous shard "
                               "sequence; missing sequence " +
                    std::to_string(i));
        }
        fold_sealed_shard(store_.shard_path(entries[i]));
    }
    next_sequence_ = entries.size();
}

Service::~Service() = default;

std::uint64_t Service::cache_key_for(std::uint64_t sequence) const {
    store::KeyHasher hasher;
    hasher.mix_string(kServeKeySalt);
    hasher.mix_string(types_digest_);
    hasher.mix_u64(sequence);
    return hasher.digest();
}

void Service::open_shard_if_needed() {
    if (writer_) return;
    const std::uint64_t key = cache_key_for(next_sequence_);
    const std::string filename = store::Store::shard_filename(next_sequence_, key);
    writer_ = std::make_unique<store::ShardWriter>(store_.dir() + "/" + filename,
                                                   key, next_sequence_);
}

void Service::fold_sealed_shard(const std::string& path) {
    // One-shard aggregate through the same code the batch CLI uses;
    // folding its terms in seal order reproduces a full
    // aggregate_evidence over the sealed prefix bit for bit.
    const store::StoreAggregate agg = store::aggregate_evidence(
        {{sealed_shards_, path}}, types_, /*jobs=*/1);
    for (std::size_t k = 0; k < types_.size(); ++k) {
        sealed_type_events_[k] += agg.evidence[k].events;
    }
    sealed_exposure_ += agg.total_exposure;
    sealed_records_ += agg.total_records;
    ++sealed_shards_;
}

void Service::seal_current_shard() {
    const obs::ScopedTimer timer("serve.seal_ns");
    store::ShardTotals totals;
    totals.exposure_hours = pending_exposure_;
    const store::SealReceipt receipt = writer_->seal(totals);
    if (receipt.records != pending_records_) {
        // The store entry recorded below would claim pending_records_;
        // a footer that disagrees means a verify pass would later brand
        // the shard inconsistent, so fail the seal loudly instead.
        throw store::StoreError(
            store::StoreErrorKind::Inconsistent,
            "seal receipt claims " + std::to_string(receipt.records) +
                " records but the service accepted " +
                std::to_string(pending_records_));
    }
    const std::uint64_t key = cache_key_for(next_sequence_);
    store::ShardEntry entry;
    entry.fleet_index = next_sequence_;
    entry.file = store::Store::shard_filename(next_sequence_, key);
    entry.cache_key = key;
    entry.records = pending_records_;
    entry.exposure_hours = pending_exposure_;
    store_.record(entry);
    writer_.reset();
    fold_sealed_shard(store_.shard_path(entry));
    ++next_sequence_;
    pending_records_ = 0;
    pending_exposure_ = 0.0;
    if (obs::enabled()) obs::add_counter("serve.shards_sealed", 1);
}

std::vector<ClassifyRow> Service::classify_batch(const ClassifyRequest& request) {
    const obs::ScopedTimer timer("serve.batch_ns");
    const auto& incidents = request.incidents;
    // Classification is index-pure, so the batch fans out over the shared
    // exec pool; rows come back in record order regardless of schedule.
    const auto rows = exec::parallel_map<ClassifyRow>(
        config_.jobs, incidents.size(), [&](std::size_t i) {
            ClassifyRow row;
            const auto found = leaf_index_.find(tree_.classify(incidents[i]).joined());
            row.leaf = found == leaf_index_.end() ? std::uint16_t{0xFFFF}
                                                  : found->second;
            const auto type = types_.classify(incidents[i]);
            row.type = type ? static_cast<std::uint16_t>(*type) : kNoType;
            return row;
        });
    // Serial append in arrival order: this is what pins shard bytes.
    if (!incidents.empty()) {
        const double per_record =
            request.exposure_hours / static_cast<double>(incidents.size());
        for (const auto& incident : incidents) {
            open_shard_if_needed();
            writer_->append(incident);
            pending_exposure_ += per_record;
            ++pending_records_;
            if (pending_records_ == config_.shard_roll) seal_current_shard();
        }
    } else {
        // A record-free batch still carries exposure; it attaches to the
        // live shard and seals with it.
        pending_exposure_ += request.exposure_hours;
    }
    if (obs::enabled()) {
        obs::add_counter("serve.batches", 1);
        obs::add_counter("serve.records_accepted", incidents.size());
    }
    return rows;
}

std::vector<TypeEvidence> Service::sealed_evidence() const {
    std::vector<TypeEvidence> out;
    out.reserve(types_.size());
    for (std::size_t k = 0; k < types_.size(); ++k) {
        TypeEvidence e;
        e.incident_type_id = types_.at(k).id();
        e.events = sealed_type_events_[k];
        e.exposure = sealed_exposure_;
        out.push_back(std::move(e));
    }
    return out;
}

std::string Service::verify_json(double confidence) {
    const obs::ScopedTimer timer("serve.verify_ns");
    if (obs::enabled()) obs::add_counter("serve.requests_verify", 1);
    if (sealed_shards_ == 0 || sealed_exposure_.hours() <= 0.0) {
        throw ServeError(
            "no sealed evidence yet: stream classify batches (and drain or "
            "roll a shard) before verifying");
    }
    // Round-trip the evidence through its JSON document exactly as the
    // batch path does (campaign writes it, `verify --evidence` re-reads
    // it), so the report bytes cannot diverge on serialization precision.
    const auto evidence = evidence_from_json(evidence_to_json(sealed_evidence()));
    const auto report =
        verify_against_evidence(*problem_, *allocation_, evidence, confidence);
    return to_json(report).dump(2) + "\n";
}

std::string Service::allocate_json() const {
    if (obs::enabled()) obs::add_counter("serve.requests_allocate", 1);
    return to_json(*allocation_, types_).dump(2) + "\n";
}

StatusReply Service::status() const {
    if (obs::enabled()) obs::add_counter("serve.requests_status", 1);
    StatusReply out;
    out.records_sealed = sealed_records_;
    out.records_pending = pending_records_;
    out.shards_sealed = sealed_shards_;
    out.exposure_sealed_hours = sealed_exposure_.hours();
    return out;
}

void Service::finish() {
    if (writer_ && pending_records_ > 0) {
        seal_current_shard();
    } else {
        writer_.reset();  // removes an empty .tmp, if one was opened
    }
}

}  // namespace qrn::serve
