// The serve daemon's domain core: classify batches, append them to live
// qrn-store shards, and verify Eq. 1 incrementally over the sealed prefix.
//
// Single-threaded by contract: every method (except the const status
// snapshot) is called only from the dispatcher thread, which is what makes
// shard contents deterministic in arrival order without any locking here.
// The classification of a batch itself fans out over the shared exec
// thread pool (per-record work is index-pure), so a large batch still uses
// every core while the append stays serial.
//
// Crash recovery: on startup the service deletes stray `.tmp` files (an
// interrupted writer's leavings), re-scans every sealed shard through the
// PR 5 aggregator (which re-checksums all blocks), and resumes appending
// at the next shard sequence number. Shard names and cache keys are pure
// functions of (catalog digest, sequence), so a replayed stream with the
// same batching reproduces byte-identical shards.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "qrn/allocation.h"
#include "qrn/classification.h"
#include "qrn/incident_type.h"
#include "qrn/risk_norm.h"
#include "serve/protocol.h"
#include "store/shard.h"
#include "store/store.h"

namespace qrn::serve {

/// The daemon could not serve a request for a domain reason (no sealed
/// evidence yet, inconsistent store). Maps to an Error reply, never to a
/// dropped connection.
class ServeError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct ServiceConfig {
    std::string store_dir;          ///< Required: the live shard store.
    std::uint64_t shard_roll = 4096;  ///< Records per shard before sealing.
    unsigned jobs = 1;              ///< Parallelism of batch classification.
};

class Service {
public:
    /// Opens (and heals) the store, rebuilds the sealed-prefix evidence
    /// fold, and precomputes the allocation the verify/allocate replies
    /// are derived from. Throws StoreError on unreadable/corrupt shards.
    Service(RiskNorm norm, IncidentTypeSet types, ServiceConfig config);
    ~Service();

    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /// Classifies the batch, appends every record to the live shard
    /// (rolling at shard_roll records), and returns one row per record in
    /// request order. The batch's exposure delta spreads uniformly over
    /// its records, so a batch spanning a roll boundary splits its
    /// exposure proportionally between the two shards.
    [[nodiscard]] std::vector<ClassifyRow> classify_batch(const ClassifyRequest& request);

    /// The Eq. 1 verification report for the sealed prefix, serialized
    /// exactly as `qrn verify` prints it (same JSON, same trailing
    /// newline). Throws ServeError when no sealed evidence exists yet.
    [[nodiscard]] std::string verify_json(double confidence);

    /// The allocation snapshot, serialized exactly as `qrn allocate`
    /// prints it.
    [[nodiscard]] std::string allocate_json() const;

    [[nodiscard]] StatusReply status() const;

    /// Seals the partially-filled live shard (if any records are pending)
    /// so a graceful drain loses nothing. Idempotent.
    void finish();

    [[nodiscard]] const IncidentTypeSet& types() const noexcept { return types_; }

private:
    void seal_current_shard();
    void open_shard_if_needed();
    void fold_sealed_shard(const std::string& path);
    [[nodiscard]] std::uint64_t cache_key_for(std::uint64_t sequence) const;
    [[nodiscard]] std::vector<TypeEvidence> sealed_evidence() const;

    RiskNorm norm_;
    IncidentTypeSet types_;
    ServiceConfig config_;
    ClassificationTree tree_;
    std::vector<std::string> leaf_names_;  ///< joined() paths, leaf order.
    std::unordered_map<std::string, std::uint16_t> leaf_index_;
    std::optional<AllocationProblem> problem_;
    std::optional<Allocation> allocation_;
    std::string types_digest_;

    store::Store store_;
    std::unique_ptr<store::ShardWriter> writer_;
    std::uint64_t next_sequence_ = 0;     ///< fleet index of the live shard.
    std::uint64_t pending_records_ = 0;   ///< records in the live shard.
    double pending_exposure_ = 0.0;       ///< exposure in the live shard.

    // Sealed-prefix fold, in seal (= fleet) order; reproduces
    // store::aggregate_evidence over the same shards term for term.
    std::vector<std::uint64_t> sealed_type_events_;
    ExposureHours sealed_exposure_;
    std::uint64_t sealed_records_ = 0;
    std::uint64_t sealed_shards_ = 0;
};

}  // namespace qrn::serve
