// Bounded MPSC request queue: the daemon's explicit backpressure point.
//
// Reader threads try_push; a full queue is an immediate, visible rejection
// (the connection replies Busy with a retry hint) instead of an invisible
// latency cliff. The single dispatcher pops, which serializes every store
// append and keeps shard contents deterministic in arrival order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace qrn::serve {

template <typename T>
class BoundedQueue {
public:
    /// capacity == 0 is treated as 1 (a queue that can hold nothing would
    /// reject every request).
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity) {}

    /// Enqueues unless the queue is full or closed; never blocks.
    [[nodiscard]] bool try_push(T item) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_) return false;
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
        return true;
    }

    /// Blocks until an item arrives or the queue is closed AND drained;
    /// nullopt only in the latter case, so closing never loses items.
    [[nodiscard]] std::optional<T> pop() {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /// Rejects future pushes; pop() keeps serving what is already queued.
    void close() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    [[nodiscard]] std::size_t size() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> items_;    // qrn:guarded_by(mutex_)
    bool closed_ = false;    // qrn:guarded_by(mutex_)
};

}  // namespace qrn::serve
