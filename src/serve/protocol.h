// The qrn-serve wire protocol: length-prefixed binary frames over a
// Unix-domain or loopback TCP socket (docs/SERVE.md has the full
// specification).
//
// Every message is one frame:
//
//   u32 length   payload size + 1, little-endian (the length counts the
//                opcode/status byte, never itself)
//   u8  code     request opcode or response status
//   ...          payload, layout per opcode/status
//
// Requests:
//   Classify  f64 exposure-hours delta, u32 record count, then count
//             28-byte incident records - the exact record encoding of the
//             shard format (store/format.h), so accepted records land in
//             a shard bit-identically to how they travelled the wire.
//   Verify    f64 confidence.
//   Allocate  (empty)
//   Status    (empty)
//
// Responses:
//   Ok        Classify: u32 count, then count * (u16 leaf index, u16
//             incident-type index; 0xFFFF = no catalog type matched).
//             Verify/Allocate: the UTF-8 JSON text the batch CLI prints
//             for the same inputs, byte for byte.
//             Status: u64 records sealed, u64 records pending, u64 shards
//             sealed, f64 sealed exposure hours, u8 draining flag.
//   Busy      u32 suggested retry delay in milliseconds (backpressure:
//             the request queue was full; nothing was enqueued).
//   Error     UTF-8 message.
//
// All integers and doubles are little-endian via the store codecs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "qrn/incident.h"

namespace qrn::serve {

enum class Opcode : std::uint8_t {
    Classify = 1,
    Verify = 2,
    Allocate = 3,
    Status = 4,
};

enum class Status : std::uint8_t {
    Ok = 0,
    Busy = 1,
    Error = 2,
};

/// Frames larger than this are a protocol violation: the connection is
/// closed without reading the payload. 16 MiB bounds a classify batch at
/// ~599k records, far beyond any sane batch.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Incident-type index meaning "no catalog type matched" in a classify
/// reply row.
inline constexpr std::uint16_t kNoType = 0xFFFF;

/// A peer violated the protocol (bad frame, bad opcode, malformed
/// payload). The connection that produced it is closed.
class ProtocolError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// One decoded classify request.
struct ClassifyRequest {
    double exposure_hours = 0.0;  ///< Exposure the batch adds, in hours.
    std::vector<Incident> incidents;
};

/// One classify reply row, in request record order.
struct ClassifyRow {
    std::uint16_t leaf = 0;       ///< Classification-tree leaf index.
    std::uint16_t type = kNoType; ///< Incident-type catalog index.

    friend bool operator==(const ClassifyRow&, const ClassifyRow&) = default;
};

/// The status snapshot the daemon reports; `records_sealed` is the resume
/// point for a client replaying a stream after a crash.
struct StatusReply {
    std::uint64_t records_sealed = 0;   ///< Records in sealed shards.
    std::uint64_t records_pending = 0;  ///< Accepted, not yet sealed.
    std::uint64_t shards_sealed = 0;
    double exposure_sealed_hours = 0.0;
    bool draining = false;

    friend bool operator==(const StatusReply&, const StatusReply&) = default;
};

// ---- frame assembly ----------------------------------------------------

/// Wraps a payload into a full frame: length prefix + code + payload.
[[nodiscard]] std::string encode_frame(std::uint8_t code, std::string_view payload);

// ---- request payloads --------------------------------------------------

[[nodiscard]] std::string encode_classify_payload(double exposure_hours,
                                                  const std::vector<Incident>& incidents);
/// Throws ProtocolError on malformed bytes (count/size mismatch,
/// non-finite or negative exposure, invalid record fields).
[[nodiscard]] ClassifyRequest decode_classify_payload(std::string_view payload);

[[nodiscard]] std::string encode_verify_payload(double confidence);
[[nodiscard]] double decode_verify_payload(std::string_view payload);

// ---- response payloads -------------------------------------------------

[[nodiscard]] std::string encode_classify_reply(const std::vector<ClassifyRow>& rows);
[[nodiscard]] std::vector<ClassifyRow> decode_classify_reply(std::string_view payload);

[[nodiscard]] std::string encode_busy_payload(std::uint32_t retry_after_ms);
[[nodiscard]] std::uint32_t decode_busy_payload(std::string_view payload);

[[nodiscard]] std::string encode_status_reply(const StatusReply& status);
[[nodiscard]] StatusReply decode_status_reply(std::string_view payload);

}  // namespace qrn::serve
