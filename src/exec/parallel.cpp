#include "exec/parallel.h"

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace qrn::exec {

namespace detail {

namespace {
std::function<void(std::size_t)> g_submit_fault;
}  // namespace

void set_submit_fault_for_test(std::function<void(std::size_t)> hook) {
    g_submit_fault = std::move(hook);
}

}  // namespace detail

namespace {

/// Declares every metric parallel_for may touch, on BOTH execution paths,
/// so a --metrics manifest has the same structure (same names, same
/// order) for every --jobs value; only the values are schedule-dependent.
void declare_parallel_metrics() {
    obs::add_counter("exec.parallel_calls", 1);
    obs::add_counter("exec.chunks_executed", 0);
    obs::add_counter("exec.chunks_serial", 0);
    obs::add_counter("exec.tasks_submitted", 0);
    obs::add_counter("exec.pool.tasks_executed", 0);
    obs::record_max("exec.pool.queue_depth_max", 0);
    obs::declare_timer("exec.chunk_ns");
    obs::declare_timer("exec.task_wait_ns");
}

}  // namespace

unsigned default_jobs() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::vector<ChunkRange> chunk_ranges(unsigned jobs, std::size_t count) {
    std::vector<ChunkRange> out;
    if (count == 0) return out;
    // Oversubscribe parallel runs: kChunksPerJob chunks per worker (capped
    // by count). With one chunk per worker, the whole run waits on the
    // slowest chunk - per-index cost varies (incident-heavy stretches,
    // PR 4 chunk_ns vs task_wait_ns timers), so smaller chunks let fast
    // workers absorb the straggler's tail. Chunks stay coarse enough that
    // chunk cost dominates the ~µs dispatch cost, and since results merge
    // in chunk-index order the output is unchanged by the split.
    constexpr std::size_t kChunksPerJob = 4;
    const std::size_t target =
        jobs <= 1 ? 1 : static_cast<std::size_t>(jobs) * kChunksPerJob;
    const std::size_t chunks = std::min<std::size_t>(count, target);
    out.reserve(chunks);
    const std::size_t base = count / chunks;
    const std::size_t extra = count % chunks;  // first `extra` chunks get +1
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t size = base + (c < extra ? 1 : 0);
        out.push_back(ChunkRange{begin, begin + size, c});
        begin += size;
    }
    return out;
}

void parallel_for(unsigned jobs, std::size_t count,
                  const std::function<void(const ChunkRange&)>& body) {
    const auto chunks = chunk_ranges(jobs, count);
    if (chunks.empty()) return;

    const bool metrics = obs::enabled();
    if (metrics) declare_parallel_metrics();

    // Serial fallback: one job requested, a single chunk, or we are already
    // on a pool worker (nested parallel_for would deadlock a fixed pool).
    if (jobs <= 1 || chunks.size() == 1 || ThreadPool::on_worker_thread()) {
        if (metrics) {
            obs::add_counter("exec.chunks_executed", chunks.size());
            obs::add_counter("exec.chunks_serial", chunks.size());
        }
        for (const auto& chunk : chunks) {
            const obs::ScopedTimer timer("exec.chunk_ns");
            body(chunk);
        }
        return;
    }
    if (metrics) {
        obs::add_counter("exec.chunks_executed", chunks.size());
        obs::add_counter("exec.tasks_submitted", chunks.size());
    }

    // Completion state lives in a shared block co-owned by every submitted
    // task, NOT on this stack frame: if submit() throws mid-loop (pool
    // stopping), already-queued tasks still run and must find their
    // errors/mutex/counter alive even while this frame unwinds.
    struct Completion {
        std::vector<std::exception_ptr> errors;
        std::mutex mutex;
        std::condition_variable done;
        std::size_t remaining = 0;
    };
    auto state = std::make_shared<Completion>();
    state->errors.resize(chunks.size());
    state->remaining = chunks.size();

    auto& pool = ThreadPool::shared();
    std::size_t submitted = 0;
    try {
        for (const auto& chunk : chunks) {
            if (detail::g_submit_fault) detail::g_submit_fault(chunk.index);
            const std::uint64_t enqueue_ns = metrics ? obs::now_ns() : 0;
            pool.submit([state, &body, chunk, enqueue_ns, metrics] {
                if (metrics) {
                    obs::record_timer("exec.task_wait_ns",
                                      obs::now_ns() - enqueue_ns);
                }
                try {
                    const obs::ScopedTimer timer("exec.chunk_ns");
                    body(chunk);
                } catch (...) {
                    state->errors[chunk.index] = std::current_exception();
                }
                {
                    // Notify while holding the lock: the waiter may return
                    // from wait() as soon as it observes remaining == 0,
                    // which it can only do after we release the mutex -
                    // i.e. strictly after notify_one returns.
                    const std::lock_guard<std::mutex> lock(state->mutex);
                    --state->remaining;
                    state->done.notify_one();
                }
            });
            ++submitted;
        }
    } catch (...) {
        // Submission failed mid-loop. The chunks never submitted will not
        // run; drain the ones that were, so the caller-owned `body` is not
        // referenced after this frame unwinds, then surface the failure.
        {
            std::unique_lock<std::mutex> lock(state->mutex);
            state->remaining -= chunks.size() - submitted;
            state->done.wait(lock, [&] { return state->remaining == 0; });
        }
        throw;
    }
    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->done.wait(lock, [&] { return state->remaining == 0; });
    }
    // Rethrow the lowest-index failure: the same exception a serial
    // left-to-right loop would have raised first.
    for (auto& error : state->errors) {
        if (error) std::rethrow_exception(error);
    }
}

}  // namespace qrn::exec
