#include "exec/parallel.h"

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace qrn::exec {

namespace detail {

namespace {
std::function<void(std::size_t)> g_submit_fault;
}  // namespace

void set_submit_fault_for_test(std::function<void(std::size_t)> hook) {
    g_submit_fault = std::move(hook);
}

}  // namespace detail

namespace {

/// Declares every metric parallel_for may touch, on BOTH execution paths,
/// so a --metrics manifest has the same structure (same names, same
/// order) for every --jobs value; only the values are schedule-dependent.
void declare_parallel_metrics() {
    obs::add_counter("exec.parallel_calls", 1);
    obs::add_counter("exec.chunks_executed", 0);
    obs::add_counter("exec.chunks_serial", 0);
    obs::add_counter("exec.tasks_submitted", 0);
    obs::add_counter("exec.pool.tasks_executed", 0);
    obs::record_max("exec.pool.queue_depth_max", 0);
    obs::declare_timer("exec.chunk_ns");
    obs::declare_timer("exec.task_wait_ns");
}

}  // namespace

unsigned default_jobs() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::vector<ChunkRange> chunk_ranges(unsigned jobs, std::size_t count) {
    std::vector<ChunkRange> out;
    if (count == 0) return out;
    // Oversubscribe parallel runs: kChunksPerJob chunks per worker (capped
    // by count). With one chunk per worker, the whole run waits on the
    // slowest chunk - per-index cost varies (incident-heavy stretches,
    // PR 4 chunk_ns vs task_wait_ns timers), so smaller chunks let fast
    // workers absorb the straggler's tail. Chunks stay coarse enough that
    // chunk cost dominates the ~µs dispatch cost, and since results merge
    // in chunk-index order the output is unchanged by the split.
    constexpr std::size_t kChunksPerJob = 4;
    const std::size_t target =
        jobs <= 1 ? 1 : static_cast<std::size_t>(jobs) * kChunksPerJob;
    const std::size_t chunks = std::min<std::size_t>(count, target);
    out.reserve(chunks);
    const std::size_t base = count / chunks;
    const std::size_t extra = count % chunks;  // first `extra` chunks get +1
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t size = base + (c < extra ? 1 : 0);
        out.push_back(ChunkRange{begin, begin + size, c});
        begin += size;
    }
    return out;
}

void parallel_for(unsigned jobs, std::size_t count,
                  const std::function<void(const ChunkRange&)>& body) {
    const auto chunks = chunk_ranges(jobs, count);
    if (chunks.empty()) return;

    const bool metrics = obs::enabled();
    if (metrics) declare_parallel_metrics();

    // Serial fallback: one job requested, a single chunk, or we are already
    // on a pool worker (nested parallel_for would deadlock a fixed pool).
    if (jobs <= 1 || chunks.size() == 1 || ThreadPool::on_worker_thread()) {
        if (metrics) {
            obs::add_counter("exec.chunks_executed", chunks.size());
            obs::add_counter("exec.chunks_serial", chunks.size());
        }
        for (const auto& chunk : chunks) {
            const obs::ScopedTimer timer("exec.chunk_ns");
            body(chunk);
        }
        return;
    }
    if (metrics) {
        obs::add_counter("exec.chunks_executed", chunks.size());
        obs::add_counter("exec.tasks_submitted", chunks.size());
    }

    // Completion state lives on THIS stack frame, and workers reach it
    // only through a raw pointer held by their task objects. That is safe
    // because this frame never unwinds - not even when submit() throws
    // mid-loop - until `remaining` says every constructed task has been
    // DESTROYED, and it is the whole point: after the final decrement a
    // worker touches no memory this thread will ever look at again, so
    // there is no teardown tail racing the main thread's reads. (The
    // previous design co-owned a heap block via shared_ptr and decremented
    // from the task body; a worker's late release of its last reference
    // could then free the stored exception while the main thread was still
    // inspecting the rethrown copy - synchronized only by uninstrumented
    // libstdc++ refcounts, which ThreadSanitizer flagged intermittently.)
    struct Completion {
        std::vector<std::exception_ptr> errors;
        std::mutex mutex;
        std::condition_variable done;
        std::size_t remaining = 0;
    };
    Completion state;
    state.errors.resize(chunks.size());
    state.remaining = chunks.size();

    // One chunk's unit of work, tied to the completion state by its
    // DESTRUCTOR, not by its body: the decrement fires only once the pool
    // worker has fully torn the task down (body returned, the caught
    // exception stored, the chunk's turn at the shared block over). So
    // `remaining == 0` means "no submitted task will ever touch the
    // completion state or `body` again" - the quiesce that lets this frame
    // safely rethrow the stored exceptions and unwind.
    struct ChunkTask {
        Completion* state;
        const std::function<void(const ChunkRange&)>* body;
        ChunkRange chunk;
        std::uint64_t enqueue_ns;
        bool metrics;

        ChunkTask(Completion* state_in,
                  const std::function<void(const ChunkRange&)>* body_in,
                  const ChunkRange& chunk_in, std::uint64_t enqueue_ns_in,
                  bool metrics_in)
            : state(state_in),
              body(body_in),
              chunk(chunk_in),
              enqueue_ns(enqueue_ns_in),
              metrics(metrics_in) {}

        ChunkTask(const ChunkTask&) = delete;
        ChunkTask& operator=(const ChunkTask&) = delete;

        ~ChunkTask() {
            // Notify while holding the lock: the waiter may return from
            // wait() as soon as it observes remaining == 0, which it can
            // only do after we release the mutex - i.e. strictly after
            // notify_one returns. This is the task's last access to any
            // shared state; what remains is freeing the task's own block.
            const std::lock_guard<std::mutex> lock(state->mutex);
            --state->remaining;
            state->done.notify_one();
        }

        void run() {
            if (metrics) {
                obs::record_timer("exec.task_wait_ns",
                                  obs::now_ns() - enqueue_ns);
            }
            try {
                const obs::ScopedTimer timer("exec.chunk_ns");
                (*body)(chunk);
            } catch (...) {
                state->errors[chunk.index] = std::current_exception();
            }
        }
    };

    auto& pool = ThreadPool::shared();
    // Chunks whose decrement is owned by a constructed ChunkTask. A task
    // destroyed without ever running (its submit() threw after the task
    // existed) still decrements, so the accounting holds on every path.
    std::size_t accounted = 0;
    try {
        for (const auto& chunk : chunks) {
            if (detail::g_submit_fault) detail::g_submit_fault(chunk.index);
            const std::uint64_t enqueue_ns = metrics ? obs::now_ns() : 0;
            // shared_ptr only to satisfy std::function's copyability; the
            // dtor - and therefore the decrement - still runs exactly once.
            auto task = std::make_shared<ChunkTask>(&state, &body, chunk,
                                                    enqueue_ns, metrics);
            ++accounted;
            pool.submit([task] { task->run(); });
        }
    } catch (...) {
        // Submission failed mid-loop. Chunks that never got a task will
        // not decrement; take their share off ourselves, then wait for
        // every constructed task to be destroyed - which drains the ones
        // that were queued, so neither the caller-owned `body` nor this
        // frame's state is referenced after it unwinds - then surface the
        // failure.
        {
            std::unique_lock<std::mutex> lock(state.mutex);
            state.remaining -= chunks.size() - accounted;
            state.done.wait(lock, [&] { return state.remaining == 0; });
        }
        throw;
    }
    {
        std::unique_lock<std::mutex> lock(state.mutex);
        state.done.wait(lock, [&] { return state.remaining == 0; });
    }
    // Rethrow the lowest-index failure: the same exception a serial
    // left-to-right loop would have raised first.
    for (auto& error : state.errors) {
        if (error) std::rethrow_exception(error);
    }
}

}  // namespace qrn::exec
