// Fixed-size thread pool: the execution substrate for every parallel
// Monte-Carlo workload in the toolkit.
//
// The pool is deliberately minimal: tasks are type-erased thunks, workers
// pull from one mutex-guarded queue, and destruction drains then joins.
// Determinism is NOT the pool's job - it comes from the layer above
// (exec::parallel_* collect chunk results in index order) and from the
// schedule-independent RNG streams of stats::Rng::stream(). The pool only
// promises that every submitted task runs exactly once.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qrn::exec {

/// A fixed-size worker pool. Threads are started in the constructor and
/// joined in the destructor; submitted tasks may not outlive the pool.
class ThreadPool {
public:
    /// Starts `threads` workers (>= 1).
    explicit ThreadPool(unsigned threads);

    /// Drains the queue, then stops and joins every worker.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Drains the queue, then stops and joins every worker. The pool
    /// object stays valid; any later submit() throws std::logic_error.
    /// Idempotent. Must not be called from a worker thread (a task cannot
    /// join its own pool).
    void stop();

    /// Enqueues one task. Tasks must not throw out of the thunk itself;
    /// exec::parallel_* wrap user work in exception capture before
    /// submitting. Thread-safe. Throws std::logic_error after stop().
    void submit(std::function<void()> task);

    /// Number of worker threads.
    [[nodiscard]] unsigned size() const noexcept;

    /// The process-wide pool, lazily started with hardware_concurrency
    /// workers. Shared by every parallel_* call so repeated campaigns do
    /// not pay thread start-up per invocation.
    static ThreadPool& shared();

    /// True when the calling thread is a worker of any ThreadPool. Used by
    /// parallel_* to fall back to serial execution instead of deadlocking
    /// on nested submission.
    static bool on_worker_thread() noexcept;

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

}  // namespace qrn::exec
