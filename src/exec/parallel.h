// Deterministic parallel-for / parallel-map over index ranges.
//
// Every stochastic workload in the toolkit (fleet campaigns, the MECE
// sampling certificate, bootstrap resampling, incident labelling) is a map
// over an index range where item i's randomness comes from its own RNG
// stream (stats::Rng::stream(seed, i)). That makes the work
// schedule-independent: these helpers only have to (a) spread chunks over
// the shared thread pool and (b) collect results in chunk-index order, and
// the output is bit-identical for every `jobs` value, including the serial
// fallback at jobs == 1.
//
// Contract for callers: with jobs > 1 the per-index work must be safe to
// run concurrently (no shared mutable state; derive RNGs per index) and
// its result must depend only on the index, never on execution order.
//
// Exceptions thrown by the work are captured per chunk and the one from
// the lowest chunk index is rethrown after all chunks finish - the same
// exception the serial loop would have surfaced first.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

namespace qrn::exec {

namespace detail {
/// Test seam: invoked with the chunk index right before each task
/// submission inside parallel_for. A hook that throws simulates
/// ThreadPool::submit failing mid-loop (e.g. the pool stopping), which is
/// how the unwind-safety regression tests drive that path
/// deterministically. Pass nullptr to restore production behaviour.
/// Not thread-safe against concurrent parallel_for calls; tests only.
void set_submit_fault_for_test(std::function<void(std::size_t)> hook);
}  // namespace detail

/// Number of jobs to use when the caller expressed no preference:
/// hardware_concurrency, with a floor of 1.
[[nodiscard]] unsigned default_jobs() noexcept;

/// One contiguous chunk of an index range: indices [begin, end).
struct ChunkRange {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t index = 0;  ///< Chunk number, 0-based, in range order.
};

/// The chunk decomposition parallel_for uses: contiguous near-equal chunks
/// covering [0, count) - one chunk at jobs <= 1, up to 4 per job otherwise
/// (oversubscription smooths stragglers when per-index cost varies).
/// Exposed so callers (and tests) can reason about partial ordering;
/// results must never depend on it.
[[nodiscard]] std::vector<ChunkRange> chunk_ranges(unsigned jobs, std::size_t count);

/// Runs `body` over [0, count) split into the chunk_ranges decomposition.
/// jobs <= 1 (or nesting inside a pool worker) runs serially in the
/// calling thread, in chunk order. Blocks until every chunk is done.
void parallel_for(unsigned jobs, std::size_t count,
                  const std::function<void(const ChunkRange&)>& body);

/// Runs `chunk_fn` over the chunk decomposition of [0, count) and returns
/// one result per chunk, ordered by chunk index regardless of which thread
/// finished first. This is the mergeable-partials primitive: callers fold
/// the returned partials left-to-right (e.g. per-chunk IncidentLogs).
template <typename R>
[[nodiscard]] std::vector<R> parallel_chunks(
    unsigned jobs, std::size_t count,
    const std::function<R(const ChunkRange&)>& chunk_fn) {
    // One slot per chunk, sized up front: concurrent writes then target
    // distinct elements, which is safe without further synchronization.
    std::vector<std::optional<R>> parts(chunk_ranges(jobs, count).size());
    parallel_for(jobs, count, [&](const ChunkRange& chunk) {
        parts[chunk.index].emplace(chunk_fn(chunk));
    });
    std::vector<R> out;
    out.reserve(parts.size());
    for (auto& part : parts) out.push_back(std::move(*part));
    return out;
}

/// Maps `fn` over every index of [0, count), returning results in index
/// order. T must be default-constructible (results are written in place).
template <typename T>
[[nodiscard]] std::vector<T> parallel_map(
    unsigned jobs, std::size_t count,
    const std::function<T(std::size_t)>& fn) {
    std::vector<T> out(count);
    parallel_for(jobs, count, [&](const ChunkRange& chunk) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) out[i] = fn(i);
    });
    return out;
}

}  // namespace qrn::exec
