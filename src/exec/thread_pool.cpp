#include "exec/thread_pool.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace qrn::exec {

namespace {

thread_local bool t_on_worker_thread = false;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
    if (threads == 0) {
        throw std::invalid_argument("ThreadPool: threads must be >= 1");
    }
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
}

void ThreadPool::submit(std::function<void()> task) {
    std::size_t depth = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            throw std::logic_error("ThreadPool: submit after shutdown");
        }
        queue_.push_back(std::move(task));
        depth = queue_.size();
    }
    wake_.notify_one();
    // Recorded outside the pool mutex: the registry has its own lock and
    // a stale depth only ever under-reports the high-water mark by the
    // tasks that raced past, never over-reports it.
    if (obs::enabled()) {
        obs::record_max("exec.pool.queue_depth_max", depth);
    }
}

unsigned ThreadPool::size() const noexcept {
    return static_cast<unsigned>(workers_.size());
}

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
    return pool;
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker_thread; }

void ThreadPool::worker_loop() {
    t_on_worker_thread = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        if (obs::enabled()) {
            obs::add_counter("exec.pool.tasks_executed", 1);
        }
    }
}

}  // namespace qrn::exec
