// Sensitivity of the risk-norm argument to contribution-fraction errors.
//
// Eq. 1 rests on the contribution matrix, which the paper insists "must be
// well substantiated". Substantiation is never exact, so the safety case
// should know which fractions are load-bearing: how fast each class's
// utilization moves with each fraction, and how much estimation error each
// cell tolerates before the class budget is violated at the current
// allocation. Cells with small tolerable error are where data quality
// matters most - and where the conservative upper-bound fractions (see
// empirical.h) should be used.
#pragma once

#include <cstddef>
#include <vector>

#include "qrn/allocation.h"

namespace qrn {

/// Sensitivity of one (class, type) cell at a given allocation.
struct FractionSensitivity {
    std::size_t class_index = 0;
    std::size_t type_index = 0;
    /// d(utilization_j) / d(c[j][k]) = f_k / limit_j.
    double utilization_gradient = 0.0;
    /// Largest additive increase of c[j][k] that keeps class j within its
    /// limit at the current budgets; +infinity when f_k is zero.
    double tolerable_error = 0.0;
};

/// Computes sensitivities for every cell, given budgets that satisfy the
/// norm (checked). Rows are ordered by descending utilization gradient.
/// With jobs > 1 the per-class rows are computed in parallel chunks;
/// bit-identical for every jobs value.
[[nodiscard]] std::vector<FractionSensitivity> fraction_sensitivities(
    const AllocationProblem& problem, const Allocation& allocation, unsigned jobs = 1);

/// The most critical cells: the `count` rows with the smallest tolerable
/// error (ties broken by gradient).
[[nodiscard]] std::vector<FractionSensitivity> critical_fractions(
    const AllocationProblem& problem, const Allocation& allocation, std::size_t count,
    unsigned jobs = 1);

/// Returns a copy of the problem's matrix with one cell replaced (used for
/// what-if analyses). The new value must keep the matrix valid.
[[nodiscard]] ContributionMatrix with_fraction(const ContributionMatrix& matrix,
                                               std::size_t class_index,
                                               std::size_t type_index, double value);

}  // namespace qrn
