#include "qrn/severity.h"

#include <stdexcept>
#include <unordered_set>

namespace qrn {

std::string_view to_string(ConsequenceDomain domain) noexcept {
    switch (domain) {
        case ConsequenceDomain::Quality: return "quality";
        case ConsequenceDomain::Safety: return "safety";
    }
    return "unknown";
}

ConsequenceClassSet::ConsequenceClassSet(std::vector<ConsequenceClass> classes)
    : classes_(std::move(classes)) {
    if (classes_.empty()) {
        throw std::invalid_argument("ConsequenceClassSet: needs at least one class");
    }
    std::unordered_set<std::string> ids;
    bool seen_safety = false;
    const ConsequenceClass* prev = nullptr;
    for (const auto& c : classes_) {
        if (c.id.empty()) {
            throw std::invalid_argument("ConsequenceClassSet: class id must be non-empty");
        }
        if (!ids.insert(c.id).second) {
            throw std::invalid_argument("ConsequenceClassSet: duplicate class id " + c.id);
        }
        if (prev != nullptr && c.rank <= prev->rank) {
            throw std::invalid_argument(
                "ConsequenceClassSet: ranks must be strictly increasing (" + c.id + ")");
        }
        if (c.domain == ConsequenceDomain::Safety) {
            seen_safety = true;
        } else if (seen_safety) {
            throw std::invalid_argument(
                "ConsequenceClassSet: quality classes must precede safety classes (" +
                c.id + ")");
        }
        prev = &c;
    }
}

const ConsequenceClass& ConsequenceClassSet::at(std::size_t index) const {
    if (index >= classes_.size()) {
        throw std::out_of_range("ConsequenceClassSet::at: bad index");
    }
    return classes_[index];
}

std::optional<std::size_t> ConsequenceClassSet::index_of(
    std::string_view id) const noexcept {
    for (std::size_t i = 0; i < classes_.size(); ++i) {
        if (classes_[i].id == id) return i;
    }
    return std::nullopt;
}

const ConsequenceClass& ConsequenceClassSet::by_id(std::string_view id) const {
    const auto idx = index_of(id);
    if (!idx) throw std::out_of_range("ConsequenceClassSet: no class " + std::string(id));
    return classes_[*idx];
}

std::size_t ConsequenceClassSet::count(ConsequenceDomain domain) const noexcept {
    std::size_t n = 0;
    for (const auto& c : classes_) {
        if (c.domain == domain) ++n;
    }
    return n;
}

ConsequenceClassSet ConsequenceClassSet::paper_example() {
    return ConsequenceClassSet({
        {"vQ1", "Perceived safety", ConsequenceDomain::Quality, 1,
         "causing scared pedestrian or passenger"},
        {"vQ2", "Emergency manoeuvre", ConsequenceDomain::Quality, 2,
         "causing evasive manoeuvre for other road user"},
        {"vQ3", "Material damage", ConsequenceDomain::Quality, 3,
         "collision resulting in bodywork damage"},
        {"vS1", "Light to moderate injuries", ConsequenceDomain::Safety, 4,
         "collision with other car at low speed"},
        {"vS2", "Severe injuries", ConsequenceDomain::Safety, 5,
         "collision with other car at medium speed"},
        {"vS3", "Life-threatening injuries", ConsequenceDomain::Safety, 6,
         "collision with car at high speed or collision with pedestrian"},
    });
}

}  // namespace qrn
