#include "qrn/incident_type.h"

#include <stdexcept>
#include <unordered_set>

namespace qrn {

IncidentType::IncidentType(std::string id, ActorType counterparty,
                           ToleranceMargin margin, std::string description)
    : id_(std::move(id)),
      counterparty_(counterparty),
      margin_(margin),
      description_(std::move(description)) {
    if (id_.empty()) throw std::invalid_argument("IncidentType: id must be non-empty");
    if (counterparty_ == ActorType::EgoVehicle) {
        throw std::invalid_argument("IncidentType: counterparty cannot be EgoVehicle");
    }
}

IncidentType IncidentType::induced(std::string id, ActorType first, ActorType second,
                                   ToleranceMargin margin, std::string description) {
    if (first == ActorType::EgoVehicle || second == ActorType::EgoVehicle) {
        throw std::invalid_argument(
            "IncidentType::induced: induced incidents are between third parties");
    }
    IncidentType type(std::move(id), first, margin, std::move(description));
    type.second_party_ = second;
    type.induced_ = true;
    return type;
}

bool IncidentType::matches(const Incident& incident) const noexcept {
    if (induced_) {
        if (!incident.ego_causing_factor) return false;
        const bool pair_matches =
            (incident.first == counterparty_ && incident.second == second_party_) ||
            (incident.first == second_party_ && incident.second == counterparty_);
        return pair_matches && margin_.matches(incident);
    }
    if (!incident.involves_ego()) return false;
    const ActorType other =
        incident.first == ActorType::EgoVehicle ? incident.second : incident.first;
    if (other != counterparty_) return false;
    return margin_.matches(incident);
}

std::string IncidentType::interaction_text() const {
    if (induced_) {
        return std::string(to_string(counterparty_)) + "<->" +
               std::string(to_string(second_party_)) + " (induced), " +
               margin_.to_string();
    }
    return "Ego<->" + std::string(to_string(counterparty_)) + ", " + margin_.to_string();
}

IncidentTypeSet::IncidentTypeSet(std::vector<IncidentType> types)
    : types_(std::move(types)) {
    if (types_.empty()) {
        throw std::invalid_argument("IncidentTypeSet: needs at least one type");
    }
    std::unordered_set<std::string> ids;
    for (const auto& t : types_) {
        if (!ids.insert(t.id()).second) {
            throw std::invalid_argument("IncidentTypeSet: duplicate id " + t.id());
        }
    }
    // Structural mutual-exclusivity where provable: two types over the same
    // scope and actor set must have disjoint margins, otherwise one incident
    // would be double-counted against the risk norm.
    const auto same_actor_set = [](const IncidentType& a, const IncidentType& b) {
        if (a.is_induced() != b.is_induced()) return false;
        if (!a.is_induced()) return a.counterparty() == b.counterparty();
        return (a.counterparty() == b.counterparty() &&
                a.second_party() == b.second_party()) ||
               (a.counterparty() == b.second_party() &&
                a.second_party() == b.counterparty());
    };
    for (std::size_t i = 0; i < types_.size(); ++i) {
        for (std::size_t j = i + 1; j < types_.size(); ++j) {
            if (!same_actor_set(types_[i], types_[j])) continue;
            if (!types_[i].margin().disjoint_with(types_[j].margin())) {
                throw std::invalid_argument("IncidentTypeSet: overlapping margins for " +
                                            types_[i].id() + " and " + types_[j].id());
            }
        }
    }
}

const IncidentType& IncidentTypeSet::at(std::size_t index) const {
    if (index >= types_.size()) throw std::out_of_range("IncidentTypeSet::at: bad index");
    return types_[index];
}

std::optional<std::size_t> IncidentTypeSet::index_of(std::string_view id) const noexcept {
    for (std::size_t i = 0; i < types_.size(); ++i) {
        if (types_[i].id() == id) return i;
    }
    return std::nullopt;
}

const IncidentType& IncidentTypeSet::by_id(std::string_view id) const {
    const auto idx = index_of(id);
    if (!idx) throw std::out_of_range("IncidentTypeSet: no type " + std::string(id));
    return types_[*idx];
}

std::optional<std::size_t> IncidentTypeSet::classify(
    const Incident& incident) const noexcept {
    for (std::size_t i = 0; i < types_.size(); ++i) {
        if (types_[i].matches(incident)) return i;
    }
    return std::nullopt;
}

std::size_t IncidentTypeSet::match_count(const Incident& incident) const noexcept {
    std::size_t n = 0;
    for (const auto& t : types_) {
        if (t.matches(incident)) ++n;
    }
    return n;
}

IncidentTypeSet IncidentTypeSet::paper_vru_example() {
    return IncidentTypeSet({
        IncidentType("I1", ActorType::Vru, ToleranceMargin::proximity(1.0, 10.0),
                     "Ego approaches VRU with > 10 km/h when closer than 1 m "
                     "(scary near miss, possible VRU emergency action)"),
        IncidentType("I2", ActorType::Vru, ToleranceMargin::impact_speed(0.0, 10.0),
                     "Collision with impact speed <= 10 km/h "
                     "(light or moderate injuries)"),
        IncidentType("I3", ActorType::Vru, ToleranceMargin::impact_speed(10.0, 70.0),
                     "Collision with impact speed 10-70 km/h "
                     "(up to life-threatening injuries)"),
    });
}

}  // namespace qrn
