#include "qrn/norm_builder.h"

#include <cmath>
#include <stdexcept>

namespace qrn {

namespace {

void require_valid(const NormCalibration& calibration) {
    if (!(calibration.claimable_floor_per_hour > 0.0) ||
        !(calibration.societal_ceiling_per_hour >
          calibration.claimable_floor_per_hour)) {
        throw std::invalid_argument(
            "NormCalibration: requires 0 < claimable floor < societal ceiling "
            "(otherwise society demands what engineering cannot demonstrate)");
    }
    if (calibration.target_fraction < 0.0 || calibration.target_fraction > 1.0) {
        throw std::invalid_argument("NormCalibration: target_fraction in [0, 1]");
    }
    if (!(calibration.class_ratio > 1.0)) {
        throw std::invalid_argument("NormCalibration: class_ratio must be > 1");
    }
}

}  // namespace

Frequency calibrated_worst_class_limit(const NormCalibration& calibration) {
    require_valid(calibration);
    const double log_floor = std::log(calibration.claimable_floor_per_hour);
    const double log_ceiling = std::log(calibration.societal_ceiling_per_hour);
    return Frequency::per_hour(std::exp(
        log_floor + calibration.target_fraction * (log_ceiling - log_floor)));
}

RiskNorm calibrate_norm(const ConsequenceClassSet& classes,
                        const NormCalibration& calibration, std::string name) {
    require_valid(calibration);
    const double worst = calibrated_worst_class_limit(calibration).per_hour_value();
    std::vector<Frequency> limits(classes.size());
    for (std::size_t j = 0; j < classes.size(); ++j) {
        const auto steps = static_cast<double>(classes.size() - 1 - j);
        limits[j] = Frequency::per_hour(worst * std::pow(calibration.class_ratio, steps));
    }
    return RiskNorm(classes, std::move(limits), std::move(name));
}

}  // namespace qrn
