// Calibrating a risk norm between social acceptance and the state of the art.
//
// Sec. III-A leaves the absolute level of the norm open: "On the one hand
// it will be a political upper limit of acceptance from the society and
// customers; and on the other hand, it should not contradict the lower
// claim limits understood as the state of the art in the industrial and
// scientific community." This builder makes that bracketing executable:
// the most severe class's limit is placed inside the admissible interval
// [claimable floor, societal ceiling] (geometrically, by `target_fraction`)
// and less severe classes receive limits relaxed by a constant per-class
// ratio - yielding a valid, monotone RiskNorm by construction.
#pragma once

#include <string>

#include "qrn/risk_norm.h"

namespace qrn {

/// The calibration inputs.
struct NormCalibration {
    /// Societal/political ceiling on the most severe class (per hour):
    /// frequencies above this are unacceptable regardless of engineering.
    double societal_ceiling_per_hour = 1e-7;
    /// State-of-the-art floor (per hour): claims below this cannot credibly
    /// be demonstrated today, so a norm must not demand them.
    double claimable_floor_per_hour = 1e-9;
    /// Position of the chosen limit inside [floor, ceiling] on a log scale:
    /// 0 = at the floor (maximally ambitious), 1 = at the ceiling
    /// (minimally acceptable). Default: geometric midpoint.
    double target_fraction = 0.5;
    /// Ratio between adjacent class limits (less severe = this much more
    /// frequent). Must be > 1.
    double class_ratio = 10.0;
};

/// The worst-class limit the calibration selects:
/// floor^(1 - f) * ceiling^f (log-linear interpolation).
[[nodiscard]] Frequency calibrated_worst_class_limit(const NormCalibration& calibration);

/// Builds the full norm over `classes`: the highest-rank (most severe)
/// class receives the calibrated limit; each class below it (towards
/// quality) is `class_ratio` times more permissive. Throws when the
/// calibration is inconsistent (floor >= ceiling, fraction outside [0,1],
/// ratio <= 1).
[[nodiscard]] RiskNorm calibrate_norm(const ConsequenceClassSet& classes,
                                      const NormCalibration& calibration,
                                      std::string name = "calibrated norm");

}  // namespace qrn
