#include "qrn/banding.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace qrn {

namespace {

constexpr double kSearchCeilingKmh = 300.0;

}  // namespace

double severity_cut_point(const InjuryRiskModel& model, ActorType counterparty,
                          InjuryGrade grade, double probability) {
    if (!(probability > 0.0) || !(probability < 1.0)) {
        throw std::invalid_argument("severity_cut_point: probability in (0, 1)");
    }
    if (model.exceedance(counterparty, grade, kSearchCeilingKmh) < probability) {
        return kSearchCeilingKmh;
    }
    double lo = 0.0, hi = kSearchCeilingKmh;
    for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (model.exceedance(counterparty, grade, mid) < probability) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

std::vector<double> severity_cut_points(const InjuryRiskModel& model,
                                        ActorType counterparty, InjuryGrade grade,
                                        const std::vector<double>& probabilities) {
    std::vector<double> cuts;
    cuts.reserve(probabilities.size());
    double prev = 0.0;
    for (const double p : probabilities) {
        const double cut = severity_cut_point(model, counterparty, grade, p);
        if (cut <= prev) {
            throw std::invalid_argument(
                "severity_cut_points: thresholds must produce strictly increasing "
                "cut points");
        }
        cuts.push_back(cut);
        prev = cut;
    }
    return cuts;
}

IncidentTypeSet generate_complete_types(const InjuryRiskModel& model,
                                        const BandingConfig& config) {
    if (config.thresholds.empty()) {
        throw std::invalid_argument("generate_complete_types: at least one threshold");
    }
    std::vector<IncidentType> types;
    for (std::size_t a = 0; a < kActorTypeCount; ++a) {
        const ActorType counterparty = actor_type_from_index(a);
        if (counterparty == ActorType::EgoVehicle) continue;
        const std::string actor_name(to_string(counterparty));
        const auto cuts =
            severity_cut_points(model, counterparty, config.grade, config.thresholds);
        double lower = 0.0;
        for (std::size_t c = 0; c < cuts.size(); ++c) {
            types.emplace_back("I-" + actor_name + "-C" + std::to_string(c + 1),
                               counterparty, ToleranceMargin::impact_speed(lower, cuts[c]),
                               "collision band derived from " +
                                   std::to_string(static_cast<int>(
                                       config.thresholds[c] * 100)) +
                                   "% exceedance of the severity grade");
            lower = cuts[c];
        }
        types.emplace_back("I-" + actor_name + "-C" + std::to_string(cuts.size() + 1),
                           counterparty,
                           ToleranceMargin::impact_speed(
                               lower, std::numeric_limits<double>::infinity()),
                           "open-ended top band (collective exhaustiveness)");
        if (config.include_near_miss) {
            types.emplace_back(
                "I-" + actor_name + "-NM", counterparty,
                ToleranceMargin::proximity(config.near_miss_distance_m,
                                           config.near_miss_speed_kmh),
                "near miss within the quality tolerance margin");
        }
    }
    return IncidentTypeSet(std::move(types));
}

}  // namespace qrn
