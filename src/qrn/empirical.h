// Empirical contribution estimation from labelled incident data.
//
// The paper grounds contribution fractions in accident data: "this is a
// topic where much data and domain knowledge is available, e.g. from
// research and national traffic analysis databases" (Sec. III-B). This
// module plays the role of such a database for the simulated world: each
// recorded incident is labelled with a concrete consequence (sampled from
// the injury-risk model for collisions, from an authored profile for near
// misses), and the per-type consequence-class fractions are estimated from
// the resulting counts - with exact Clopper-Pearson upper bounds for
// conservative use in the safety argument.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "qrn/contribution.h"
#include "qrn/incident.h"
#include "qrn/incident_type.h"
#include "qrn/injury_risk.h"
#include "qrn/risk_norm.h"
#include "stats/rng.h"

namespace qrn {

/// A labelled incident: which consequence class (if any) it landed in.
struct LabelledIncident {
    Incident incident;
    std::optional<std::size_t> class_index;  ///< Index into the norm's classes.
};

/// Samples a concrete consequence for one incident:
///  - collisions: an injury grade from the model's outcome distribution,
///    mapped onto the norm's classes (material damage -> most severe
///    quality class, injury grades -> safety classes in rank order);
///  - near misses: one of the quality classes per `near_miss_profile`
///    (fractions over the quality classes in order; remainder = none).
/// Returns nullopt when the sampled consequence falls outside every class.
[[nodiscard]] std::optional<std::size_t> sample_consequence(
    const Incident& incident, const RiskNorm& norm, const InjuryRiskModel& model,
    const std::vector<double>& near_miss_profile, stats::Rng& rng);

/// Labels a whole incident log. Deterministic given the RNG.
[[nodiscard]] std::vector<LabelledIncident> label_incidents(
    std::span<const Incident> incidents, const RiskNorm& norm,
    const InjuryRiskModel& model, const std::vector<double>& near_miss_profile,
    stats::Rng& rng);

/// Labels a whole incident log with incident i drawn from its own RNG
/// stream stats::Rng::stream(seed, i). With jobs > 1 the incidents are
/// labelled in parallel chunks; the result is bit-identical for every
/// jobs value (but differs from the sequential-Rng overload above, which
/// threads one generator through the log).
[[nodiscard]] std::vector<LabelledIncident> label_incidents(
    std::span<const Incident> incidents, const RiskNorm& norm,
    const InjuryRiskModel& model, const std::vector<double>& near_miss_profile,
    std::uint64_t seed, unsigned jobs);

/// Count data underlying an empirical contribution estimate.
struct ContributionCounts {
    /// counts[class][type]: labelled incidents of the type landing in the class.
    std::vector<std::vector<std::uint64_t>> counts;
    /// totals[type]: incidents matching the type (labelled or not).
    std::vector<std::uint64_t> totals;

    /// The point-estimate matrix (see ContributionMatrix::from_counts).
    [[nodiscard]] ContributionMatrix point_matrix() const;

    /// Per-cell one-sided Clopper-Pearson upper bounds at `confidence`.
    /// Cells with zero totals get 1.0 (no evidence = no credit). The rows
    /// are NOT a valid ContributionMatrix (columns may sum above 1); they
    /// are meant for conservative per-class checks.
    [[nodiscard]] std::vector<std::vector<double>> upper_bounds(double confidence) const;
};

/// Tallies labelled incidents against an incident-type catalog.
[[nodiscard]] ContributionCounts tally_contributions(
    std::span<const LabelledIncident> labelled, const IncidentTypeSet& types,
    std::size_t class_count);

}  // namespace qrn
