// Contribution matrices: how incident types distribute over consequence
// classes.
//
// "Each type of incident (I) will contribute to one or several of the
// consequence classes (v)" (Sec. III-B). The contribution matrix holds, for
// every incident type k and consequence class j, the fraction c[j][k] of
// type-k occurrences whose consequence lands in class j. Rows of the
// transpose (per-type fractions) may sum to less than 1: the remainder is
// the share of occurrences with no consequence in any class of the norm.
#pragma once

#include <cstddef>
#include <vector>

#include "qrn/incident_type.h"
#include "qrn/injury_risk.h"
#include "qrn/risk_norm.h"

namespace qrn {

/// Validated contribution fractions: classes x incident types.
class ContributionMatrix {
public:
    /// `fractions[j][k]` = share of type-k incidents landing in class j.
    /// Requires the matrix shape to match (classes x types), every entry in
    /// [0, 1], and every per-type column sum <= 1 (+ small tolerance).
    ContributionMatrix(std::size_t class_count, std::size_t type_count,
                       std::vector<std::vector<double>> fractions);

    [[nodiscard]] std::size_t class_count() const noexcept { return class_count_; }
    [[nodiscard]] std::size_t type_count() const noexcept { return type_count_; }

    /// Fraction of type-k incidents landing in class j.
    [[nodiscard]] double fraction(std::size_t class_index, std::size_t type_index) const;

    /// Sum over classes of type k's fractions (<= 1).
    [[nodiscard]] double column_sum(std::size_t type_index) const;

    /// True if incident type k contributes to class j at all.
    [[nodiscard]] bool contributes(std::size_t class_index, std::size_t type_index) const;

    /// Number of classes a type contributes to. Sec. III-B: separating
    /// incidents by severity should make "each I contribute to as few of
    /// the defined v as possible"; benches report this spread.
    [[nodiscard]] std::size_t spread(std::size_t type_index) const;

    /// Derives a matrix from the injury-risk model:
    ///  - collision types: band-average outcome distribution mapped onto the
    ///    norm's classes (material damage -> highest-severity quality class
    ///    when present, injury grades -> safety classes by rank order);
    ///  - near-miss types: routed to the quality classes via
    ///    `near_miss_profile` = fractions for (perceived safety, emergency
    ///    manoeuvre) style classes, matched by quality-class order.
    [[nodiscard]] static ContributionMatrix from_injury_model(
        const RiskNorm& norm, const IncidentTypeSet& types, const InjuryRiskModel& model,
        const std::vector<double>& near_miss_profile);

    /// Estimates a matrix empirically from labelled consequences: counts[j][k]
    /// = number of type-k incidents observed to land in class j, totals[k] =
    /// number of type-k incidents overall (>= column sums).
    [[nodiscard]] static ContributionMatrix from_counts(
        std::size_t class_count, std::size_t type_count,
        const std::vector<std::vector<std::uint64_t>>& counts,
        const std::vector<std::uint64_t>& totals);

private:
    std::size_t class_count_;
    std::size_t type_count_;
    std::vector<std::vector<double>> fractions_;  // [class][type]
};

}  // namespace qrn
