#include "qrn/frequency.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace qrn {

ExposureHours::ExposureHours(double hours) : hours_(hours) {
    if (!std::isfinite(hours) || hours < 0.0) {
        throw std::invalid_argument("ExposureHours: requires finite hours >= 0");
    }
}

ExposureHours& ExposureHours::operator+=(ExposureHours other) noexcept {
    hours_ += other.hours_;
    return *this;
}

ExposureHours operator+(ExposureHours a, ExposureHours b) noexcept { return a += b; }

Frequency Frequency::per_hour(double value) {
    if (!std::isfinite(value) || value < 0.0) {
        throw std::invalid_argument("Frequency: requires finite value >= 0 per hour");
    }
    return Frequency(value);
}

Frequency Frequency::once_per_hours(double hours) {
    if (!std::isfinite(hours) || hours <= 0.0) {
        throw std::invalid_argument("Frequency::once_per_hours: requires hours > 0");
    }
    return Frequency(1.0 / hours);
}

Frequency Frequency::of_count(double events, ExposureHours exposure) {
    if (!std::isfinite(events) || events < 0.0) {
        throw std::invalid_argument("Frequency::of_count: requires events >= 0");
    }
    if (exposure.hours() <= 0.0) {
        throw std::invalid_argument("Frequency::of_count: requires exposure > 0");
    }
    return Frequency(events / exposure.hours());
}

double Frequency::expected_events(ExposureHours exposure) const noexcept {
    return value_ * exposure.hours();
}

Frequency& Frequency::operator+=(Frequency other) noexcept {
    value_ += other.value_;
    return *this;
}

Frequency operator+(Frequency a, Frequency b) noexcept { return a += b; }

Frequency Frequency::saturating_sub(Frequency other) const noexcept {
    return Frequency(value_ > other.value_ ? value_ - other.value_ : 0.0);
}

Frequency operator*(Frequency f, double factor) {
    if (!std::isfinite(factor) || factor < 0.0) {
        throw std::invalid_argument("Frequency scaling: requires finite factor >= 0");
    }
    return Frequency(f.value_ * factor);
}

Frequency operator*(double factor, Frequency f) { return f * factor; }

double Frequency::ratio(Frequency denominator) const {
    if (denominator.value_ <= 0.0) {
        throw std::invalid_argument("Frequency::ratio: denominator must be > 0");
    }
    return value_ / denominator.value_;
}

std::string Frequency::to_string() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.1e /h", value_);
    return buf;
}

std::ostream& operator<<(std::ostream& os, Frequency f) { return os << f.to_string(); }

}  // namespace qrn
