// Strong types for incident frequencies and operational exposure.
//
// The quantitative risk norm is "essentially a budget of acceptable
// frequencies of incidents" (paper, Sec. I). Everything in the toolkit that
// carries an events-per-operational-hour meaning uses the Frequency type
// below instead of a bare double, so budgets, observed rates and limits
// cannot be accidentally mixed with probabilities or counts.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

namespace qrn {

/// Operational exposure expressed in hours of ADS operation.
class ExposureHours {
public:
    constexpr ExposureHours() noexcept = default;

    /// Requires a finite, non-negative number of hours (checked).
    explicit ExposureHours(double hours);

    [[nodiscard]] constexpr double hours() const noexcept { return hours_; }

    friend constexpr auto operator<=>(ExposureHours, ExposureHours) noexcept = default;
    ExposureHours& operator+=(ExposureHours other) noexcept;
    friend ExposureHours operator+(ExposureHours a, ExposureHours b) noexcept;

private:
    double hours_ = 0.0;
};

/// An event frequency in events per operational hour. Non-negative.
class Frequency {
public:
    constexpr Frequency() noexcept = default;

    /// Named constructor: events per operational hour. Requires a finite,
    /// non-negative value (checked).
    [[nodiscard]] static Frequency per_hour(double value);

    /// Named constructor: one event per the given number of hours
    /// (e.g. once_per_hours(1e7) = 1e-7 /h). Requires hours > 0.
    [[nodiscard]] static Frequency once_per_hours(double hours);

    /// Named constructor: k events over an exposure. Requires exposure > 0.
    [[nodiscard]] static Frequency of_count(double events, ExposureHours exposure);

    [[nodiscard]] constexpr double per_hour_value() const noexcept { return value_; }

    /// Expected number of events over the given exposure.
    [[nodiscard]] double expected_events(ExposureHours exposure) const noexcept;

    [[nodiscard]] constexpr bool is_zero() const noexcept { return value_ == 0.0; }

    friend constexpr auto operator<=>(Frequency, Frequency) noexcept = default;

    // Frequencies form a cone: addition and non-negative scaling are closed.
    Frequency& operator+=(Frequency other) noexcept;
    friend Frequency operator+(Frequency a, Frequency b) noexcept;
    /// Saturating difference: max(a - b, 0). Budget headroom never goes
    /// negative silently; use per_hour_value() arithmetic to detect deficits.
    [[nodiscard]] Frequency saturating_sub(Frequency other) const noexcept;
    /// Scaling by a contribution fraction. Requires factor >= 0 (checked).
    friend Frequency operator*(Frequency f, double factor);
    friend Frequency operator*(double factor, Frequency f);

    /// Ratio of two frequencies; requires a non-zero denominator (checked).
    [[nodiscard]] double ratio(Frequency denominator) const;

    /// Human-readable form, e.g. "1.0e-07 /h".
    [[nodiscard]] std::string to_string() const;

private:
    constexpr explicit Frequency(double value) noexcept : value_(value) {}
    double value_ = 0.0;
};

std::ostream& operator<<(std::ostream& os, Frequency f);

}  // namespace qrn
