#include "qrn/safety_goal.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace qrn {

std::string render_goal_text(const IncidentType& type, Frequency budget) {
    std::ostringstream os;
    os << "Avoid "
       << (type.margin().mechanism() == IncidentMechanism::Collision ? "collision"
                                                                     : "near-miss")
       << ' ' << type.interaction_text() << ", to below " << budget.to_string() << '.';
    return os.str();
}

SafetyGoalSet SafetyGoalSet::derive(const AllocationProblem& problem,
                                    const Allocation& allocation) {
    if (allocation.budgets.size() != problem.types().size()) {
        throw std::invalid_argument("SafetyGoalSet::derive: budget/type count mismatch");
    }
    if (!satisfies_norm(problem, allocation.budgets)) {
        throw std::invalid_argument(
            "SafetyGoalSet::derive: allocation does not satisfy the risk norm "
            "(Eq. 1 violated); refusing to derive an unsound goal set");
    }
    std::vector<SafetyGoal> goals;
    goals.reserve(problem.types().size());
    for (std::size_t k = 0; k < problem.types().size(); ++k) {
        const IncidentType& t = problem.types().at(k);
        SafetyGoal g;
        g.id = "SG-" + t.id();
        g.incident_type_id = t.id();
        g.counterparty = t.counterparty();
        g.mechanism = t.margin().mechanism();
        g.max_frequency = allocation.budgets[k];
        g.text = render_goal_text(t, g.max_frequency);
        goals.push_back(std::move(g));
    }
    return SafetyGoalSet(std::move(goals));
}

const SafetyGoal& SafetyGoalSet::at(std::size_t index) const {
    if (index >= goals_.size()) throw std::out_of_range("SafetyGoalSet::at: bad index");
    return goals_[index];
}

const SafetyGoal& SafetyGoalSet::by_incident_type(std::string_view type_id) const {
    for (const auto& g : goals_) {
        if (g.incident_type_id == type_id) return g;
    }
    throw std::out_of_range("SafetyGoalSet: no goal for incident type " +
                            std::string(type_id));
}

std::string SafetyGoalSet::completeness_argument(const ClassificationTree& tree,
                                                 const MeceReport& certificate,
                                                 const TypeCoverageReport* coverage) const {
    if (!certificate.certified()) {
        throw std::invalid_argument(
            "completeness_argument: the MECE certificate has violations; "
            "completeness cannot be argued");
    }
    std::ostringstream os;
    os << "Completeness argument for the set of safety goals\n"
       << "--------------------------------------------------\n"
       << "1. The incident classification below is complete by definition:\n"
       << "   every theoretically possible incident belongs to exactly one\n"
       << "   leaf (mutually exclusive and collectively exhaustive).\n\n";
    for (const auto& leaf : tree.leaves()) {
        os << "   - " << leaf.joined() << '\n';
    }
    os << "\n2. Machine-checked MECE certificate: " << certificate.samples
       << " sampled incidents, each accepted by exactly one child at every\n"
       << "   level of the classification; 0 gaps, 0 overlaps.\n\n"
       << "3. Each incident type refines one leaf of the classification with\n"
       << "   a tolerance margin; each type carries one safety goal with a\n"
       << "   quantitative integrity attribute (maximum frequency):\n\n";
    for (const auto& g : goals_) {
        os << "   " << g.id << ": " << g.text << '\n';
    }
    os << "\n4. The allocated frequencies satisfy Eq. 1 of the risk norm for\n"
       << "   every consequence class (checked at derivation time), hence\n"
       << "   fulfilling all safety goals implies the quantitative risk norm\n"
       << "   is met, which is the definition of sufficiently safe in the\n"
       << "   design-time safety-case top claim.\n";
    if (coverage != nullptr) {
        os << "\n5. Goal coverage of the classification (" << coverage->samples
           << " sampled incidents):\n";
        for (const auto& leaf : coverage->leaves) {
            char line[160];
            std::snprintf(line, sizeof line, "   %-24s %6.1f%% (%zu of %zu)\n",
                          leaf.leaf.c_str(), leaf.fraction() * 100.0, leaf.covered,
                          leaf.sampled);
            os << line;
        }
        const auto gaps = coverage->gaps();
        if (gaps.empty()) {
            os << "   Every sampled incident is constrained by a safety goal.\n";
        } else {
            os << "   OPEN OBLIGATIONS - incidents in the following leaves are not\n"
               << "   (fully) constrained by any safety goal; each must be covered\n"
               << "   by further incident types or explicitly waived with rationale:\n";
            for (const auto& gap : gaps) os << "     - " << gap << '\n';
        }
    }
    return os.str();
}

}  // namespace qrn
