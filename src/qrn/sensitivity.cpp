#include "qrn/sensitivity.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "exec/parallel.h"

namespace qrn {

std::vector<FractionSensitivity> fraction_sensitivities(const AllocationProblem& problem,
                                                        const Allocation& allocation,
                                                        unsigned jobs) {
    if (!satisfies_norm(problem, allocation.budgets)) {
        throw std::invalid_argument(
            "fraction_sensitivities: the allocation must satisfy the norm");
    }
    const auto usage = evaluate_usage(problem, allocation.budgets);
    // One task per consequence class: each computes its row of cells; the
    // rows concatenate in class order, so the pre-sort order (and hence
    // the sorted output) matches the serial scan for every jobs value.
    auto rows = exec::parallel_chunks<std::vector<FractionSensitivity>>(
        jobs, problem.norm().size(), [&](const exec::ChunkRange& chunk) {
            std::vector<FractionSensitivity> part;
            part.reserve((chunk.end - chunk.begin) * problem.types().size());
            for (std::size_t j = chunk.begin; j < chunk.end; ++j) {
                const double limit = problem.norm().limit(j).per_hour_value();
                const double headroom = limit - usage[j].used.per_hour_value();
                for (std::size_t k = 0; k < problem.types().size(); ++k) {
                    FractionSensitivity s;
                    s.class_index = j;
                    s.type_index = k;
                    const double budget = allocation.budgets[k].per_hour_value();
                    s.utilization_gradient = budget / limit;
                    s.tolerable_error = budget > 0.0
                                            ? std::max(headroom, 0.0) / budget
                                            : std::numeric_limits<double>::infinity();
                    part.push_back(s);
                }
            }
            return part;
        });
    std::vector<FractionSensitivity> out;
    out.reserve(problem.norm().size() * problem.types().size());
    for (auto& row : rows) {
        out.insert(out.end(), row.begin(), row.end());
    }
    std::sort(out.begin(), out.end(),
              [](const FractionSensitivity& a, const FractionSensitivity& b) {
                  return a.utilization_gradient > b.utilization_gradient;
              });
    return out;
}

std::vector<FractionSensitivity> critical_fractions(const AllocationProblem& problem,
                                                    const Allocation& allocation,
                                                    std::size_t count, unsigned jobs) {
    auto all = fraction_sensitivities(problem, allocation, jobs);
    std::sort(all.begin(), all.end(),
              [](const FractionSensitivity& a, const FractionSensitivity& b) {
                  if (a.tolerable_error != b.tolerable_error) {
                      return a.tolerable_error < b.tolerable_error;
                  }
                  return a.utilization_gradient > b.utilization_gradient;
              });
    if (all.size() > count) all.resize(count);
    return all;
}

ContributionMatrix with_fraction(const ContributionMatrix& matrix,
                                 std::size_t class_index, std::size_t type_index,
                                 double value) {
    if (class_index >= matrix.class_count() || type_index >= matrix.type_count()) {
        throw std::out_of_range("with_fraction: bad cell");
    }
    std::vector<std::vector<double>> fractions(matrix.class_count(),
                                               std::vector<double>(matrix.type_count()));
    for (std::size_t j = 0; j < matrix.class_count(); ++j) {
        for (std::size_t k = 0; k < matrix.type_count(); ++k) {
            fractions[j][k] = matrix.fraction(j, k);
        }
    }
    fractions[class_index][type_index] = value;
    return ContributionMatrix(matrix.class_count(), matrix.type_count(),
                              std::move(fractions));
}

}  // namespace qrn
