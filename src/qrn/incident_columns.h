// Struct-of-arrays incident storage: the native in-memory layout of the
// incident pipeline.
//
// Every layer that touches incidents in bulk - the fleet simulator's
// accumulation loop, the campaign aggregators, the evidence scans and the
// qrn-store shard codec - iterates over *columns*, not records. The seven
// columns mirror the store's 28-byte v1 record field for field (four u8
// fields, three IEEE-754 doubles; docs/STORE.md), so a shard writer can
// serialize a column run without materializing a single Incident and a
// reader can decode straight back into columns. The row-oriented Incident
// struct (incident.h) remains the unit of *observation* - single records
// cross API boundaries as Incident; bulk data lives here.
//
// Invariant: all seven columns always have equal length; only the member
// functions below mutate them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "qrn/incident.h"

namespace qrn {

class IncidentTypeSet;

/// Parallel columns of incident records (one entry per incident).
class IncidentColumns {
public:
    IncidentColumns() = default;

    [[nodiscard]] std::size_t size() const noexcept { return firsts_.size(); }
    [[nodiscard]] bool empty() const noexcept { return firsts_.empty(); }

    void reserve(std::size_t n);
    void clear() noexcept;

    /// Appends one record (row -> columns).
    void push_back(const Incident& incident);

    /// Appends one record from raw fields, skipping the Incident
    /// round-trip; the caller guarantees the same invariants `validate`
    /// checks (the simulator validates before emplacing).
    void emplace_back(ActorType first, ActorType second, IncidentMechanism mechanism,
                      double relative_speed_kmh, double min_distance_m,
                      bool ego_causing_factor, double timestamp_hours);

    /// Materializes row `index` (columns -> row). No bounds check beyond
    /// the debug assert of the underlying vectors.
    [[nodiscard]] Incident operator[](std::size_t index) const;

    /// Appends every row of `other` in order (columnar memcpy-style).
    void append(const IncidentColumns& other);

    friend bool operator==(const IncidentColumns&, const IncidentColumns&) = default;

    // ---- column views (hot scans read these directly) -------------------
    [[nodiscard]] const std::vector<std::uint8_t>& firsts() const noexcept { return firsts_; }
    [[nodiscard]] const std::vector<std::uint8_t>& seconds() const noexcept { return seconds_; }
    [[nodiscard]] const std::vector<std::uint8_t>& mechanisms() const noexcept { return mechanisms_; }
    [[nodiscard]] const std::vector<std::uint8_t>& induced_flags() const noexcept { return induced_; }
    [[nodiscard]] const std::vector<double>& relative_speeds_kmh() const noexcept { return relative_speed_kmh_; }
    [[nodiscard]] const std::vector<double>& min_distances_m() const noexcept { return min_distance_m_; }
    [[nodiscard]] const std::vector<double>& timestamps_hours() const noexcept { return timestamp_hours_; }

    // ---- row-compatible iteration ---------------------------------------
    //
    // Materializing proxy iterator: `*it` yields an Incident by value, so
    // range-for and <algorithm> code written against std::vector<Incident>
    // keeps working. Bulk consumers should prefer the column views.
    class const_iterator {
    public:
        using iterator_category = std::input_iterator_tag;
        using value_type = Incident;
        using difference_type = std::ptrdiff_t;
        using pointer = void;
        using reference = Incident;

        const_iterator() = default;
        const_iterator(const IncidentColumns* columns, std::size_t index)
            : columns_(columns), index_(index) {}

        [[nodiscard]] Incident operator*() const { return (*columns_)[index_]; }
        const_iterator& operator++() { ++index_; return *this; }
        const_iterator operator++(int) { auto old = *this; ++index_; return old; }
        friend bool operator==(const const_iterator&, const const_iterator&) = default;

    private:
        const IncidentColumns* columns_ = nullptr;
        std::size_t index_ = 0;
    };

    [[nodiscard]] const_iterator begin() const noexcept { return {this, 0}; }
    [[nodiscard]] const_iterator end() const noexcept { return {this, size()}; }

    // ---- AoS <-> SoA conversion -----------------------------------------
    [[nodiscard]] static IncidentColumns from_vector(const std::vector<Incident>& rows);
    [[nodiscard]] std::vector<Incident> to_vector() const;

private:
    std::vector<std::uint8_t> firsts_;
    std::vector<std::uint8_t> seconds_;
    std::vector<std::uint8_t> mechanisms_;
    std::vector<std::uint8_t> induced_;
    std::vector<double> relative_speed_kmh_;
    std::vector<double> min_distance_m_;
    std::vector<double> timestamp_hours_;
};

/// All per-type match counts in ONE pass over the columns (index k of the
/// result counts incidents matching types.at(k)). Replaces the K
/// re-scans of a per-type count_matching loop: the record data streams
/// through cache once however many types the norm carries.
[[nodiscard]] std::vector<std::uint64_t> count_matching_all(
    const IncidentColumns& columns, const IncidentTypeSet& types);

}  // namespace qrn
