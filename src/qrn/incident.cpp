#include "qrn/incident.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace qrn {

std::string_view to_string(ActorType type) noexcept {
    switch (type) {
        case ActorType::EgoVehicle: return "Ego";
        case ActorType::Car: return "Car";
        case ActorType::Truck: return "Truck";
        case ActorType::Vru: return "VRU";
        case ActorType::Animal: return "Animal";
        case ActorType::StaticObject: return "StaticObject";
        case ActorType::OtherActor: return "Other";
    }
    return "unknown";
}

ActorType actor_type_from_index(std::size_t index) {
    static constexpr std::array<ActorType, kActorTypeCount> kAll = {
        ActorType::EgoVehicle, ActorType::Car,          ActorType::Truck,
        ActorType::Vru,        ActorType::Animal,       ActorType::StaticObject,
        ActorType::OtherActor,
    };
    if (index >= kAll.size()) {
        throw std::out_of_range("actor_type_from_index: bad index");
    }
    return kAll[index];
}

std::string_view to_string(IncidentMechanism mechanism) noexcept {
    switch (mechanism) {
        case IncidentMechanism::Collision: return "collision";
        case IncidentMechanism::NearMiss: return "near-miss";
    }
    return "unknown";
}

void validate(const Incident& incident) {
    if (!std::isfinite(incident.relative_speed_kmh) || incident.relative_speed_kmh < 0.0) {
        throw std::invalid_argument("Incident: relative_speed_kmh must be finite >= 0");
    }
    if (!std::isfinite(incident.min_distance_m) || incident.min_distance_m < 0.0) {
        throw std::invalid_argument("Incident: min_distance_m must be finite >= 0");
    }
    if (incident.mechanism == IncidentMechanism::Collision &&
        incident.min_distance_m != 0.0) {
        throw std::invalid_argument("Incident: collision requires min_distance_m == 0");
    }
    if (incident.involves_ego() && incident.ego_causing_factor) {
        throw std::invalid_argument(
            "Incident: ego_causing_factor is only for induced incidents "
            "(ego not a party)");
    }
    if (!incident.involves_ego() && !incident.ego_causing_factor) {
        throw std::invalid_argument(
            "Incident: incidents without ego involvement must be marked as "
            "ego-induced to be in scope of the safety case");
    }
    if (!std::isfinite(incident.timestamp_hours) || incident.timestamp_hours < 0.0) {
        throw std::invalid_argument("Incident: timestamp_hours must be finite >= 0");
    }
}

std::string describe(const Incident& incident) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s<->%s %s dv=%.1fkm/h dmin=%.2fm%s",
                  std::string(to_string(incident.first)).c_str(),
                  std::string(to_string(incident.second)).c_str(),
                  std::string(to_string(incident.mechanism)).c_str(),
                  incident.relative_speed_kmh, incident.min_distance_m,
                  incident.ego_causing_factor ? " (induced)" : "");
    return buf;
}

}  // namespace qrn
