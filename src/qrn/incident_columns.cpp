#include "qrn/incident_columns.h"

#include "qrn/incident_type.h"

namespace qrn {

void IncidentColumns::reserve(std::size_t n) {
    firsts_.reserve(n);
    seconds_.reserve(n);
    mechanisms_.reserve(n);
    induced_.reserve(n);
    relative_speed_kmh_.reserve(n);
    min_distance_m_.reserve(n);
    timestamp_hours_.reserve(n);
}

void IncidentColumns::clear() noexcept {
    firsts_.clear();
    seconds_.clear();
    mechanisms_.clear();
    induced_.clear();
    relative_speed_kmh_.clear();
    min_distance_m_.clear();
    timestamp_hours_.clear();
}

void IncidentColumns::push_back(const Incident& incident) {
    emplace_back(incident.first, incident.second, incident.mechanism,
                 incident.relative_speed_kmh, incident.min_distance_m,
                 incident.ego_causing_factor, incident.timestamp_hours);
}

void IncidentColumns::emplace_back(ActorType first, ActorType second,
                                   IncidentMechanism mechanism,
                                   double relative_speed_kmh, double min_distance_m,
                                   bool ego_causing_factor, double timestamp_hours) {
    firsts_.push_back(static_cast<std::uint8_t>(first));
    seconds_.push_back(static_cast<std::uint8_t>(second));
    mechanisms_.push_back(static_cast<std::uint8_t>(mechanism));
    induced_.push_back(ego_causing_factor ? 1 : 0);
    relative_speed_kmh_.push_back(relative_speed_kmh);
    min_distance_m_.push_back(min_distance_m);
    timestamp_hours_.push_back(timestamp_hours);
}

Incident IncidentColumns::operator[](std::size_t index) const {
    Incident incident;
    incident.first = static_cast<ActorType>(firsts_[index]);
    incident.second = static_cast<ActorType>(seconds_[index]);
    incident.mechanism = static_cast<IncidentMechanism>(mechanisms_[index]);
    incident.relative_speed_kmh = relative_speed_kmh_[index];
    incident.min_distance_m = min_distance_m_[index];
    incident.ego_causing_factor = induced_[index] != 0;
    incident.timestamp_hours = timestamp_hours_[index];
    return incident;
}

void IncidentColumns::append(const IncidentColumns& other) {
    firsts_.insert(firsts_.end(), other.firsts_.begin(), other.firsts_.end());
    seconds_.insert(seconds_.end(), other.seconds_.begin(), other.seconds_.end());
    mechanisms_.insert(mechanisms_.end(), other.mechanisms_.begin(),
                       other.mechanisms_.end());
    induced_.insert(induced_.end(), other.induced_.begin(), other.induced_.end());
    relative_speed_kmh_.insert(relative_speed_kmh_.end(),
                               other.relative_speed_kmh_.begin(),
                               other.relative_speed_kmh_.end());
    min_distance_m_.insert(min_distance_m_.end(), other.min_distance_m_.begin(),
                           other.min_distance_m_.end());
    timestamp_hours_.insert(timestamp_hours_.end(), other.timestamp_hours_.begin(),
                            other.timestamp_hours_.end());
}

IncidentColumns IncidentColumns::from_vector(const std::vector<Incident>& rows) {
    IncidentColumns columns;
    columns.reserve(rows.size());
    for (const Incident& incident : rows) columns.push_back(incident);
    return columns;
}

std::vector<Incident> IncidentColumns::to_vector() const {
    std::vector<Incident> rows;
    rows.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) rows.push_back((*this)[i]);
    return rows;
}

std::vector<std::uint64_t> count_matching_all(const IncidentColumns& columns,
                                              const IncidentTypeSet& types) {
    const std::size_t type_count = types.size();
    std::vector<std::uint64_t> counts(type_count, 0);
    // Resolve the type list once so the row loop is a flat pointer walk.
    std::vector<const IncidentType*> resolved;
    resolved.reserve(type_count);
    for (std::size_t k = 0; k < type_count; ++k) resolved.push_back(&types.at(k));
    const std::size_t n = columns.size();
    for (std::size_t i = 0; i < n; ++i) {
        // One row materialization amortized over all K predicates - the
        // record data streams through cache once however many types the
        // norm carries.
        const Incident incident = columns[i];
        for (std::size_t k = 0; k < type_count; ++k) {
            if (resolved[k]->matches(incident)) ++counts[k];
        }
    }
    return counts;
}

}  // namespace qrn
