// Minimal self-contained JSON document model, writer and parser.
//
// The toolkit exchanges safety-case artifacts (risk norms, incident-type
// catalogs, allocations, verification reports) as JSON files so they can be
// reviewed, diffed and versioned alongside the safety case. No external
// dependency is used; this is a small, strict (RFC 8259 subset) recursive-
// descent implementation sufficient for those artifacts.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace qrn::json {

class Value;
using Array = std::vector<Value>;
/// Objects preserve insertion order so serialized artifacts diff stably.
using Object = std::vector<std::pair<std::string, Value>>;

/// One JSON value (null / bool / number / string / array / object).
class Value {
public:
    Value() : data_(nullptr) {}
    Value(std::nullptr_t) : data_(nullptr) {}
    Value(bool b) : data_(b) {}
    Value(double d) : data_(d) {}
    Value(int i) : data_(static_cast<double>(i)) {}
    Value(std::size_t n) : data_(static_cast<double>(n)) {}
    Value(const char* s) : data_(std::string(s)) {}
    Value(std::string s) : data_(std::move(s)) {}
    Value(Array a) : data_(std::move(a)) {}
    Value(Object o) : data_(std::move(o)) {}

    [[nodiscard]] bool is_null() const noexcept;
    [[nodiscard]] bool is_bool() const noexcept;
    [[nodiscard]] bool is_number() const noexcept;
    [[nodiscard]] bool is_string() const noexcept;
    [[nodiscard]] bool is_array() const noexcept;
    [[nodiscard]] bool is_object() const noexcept;

    /// Typed accessors; throw std::runtime_error on kind mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const Array& as_array() const;
    [[nodiscard]] const Object& as_object() const;

    /// Object member lookup; throws std::runtime_error when absent.
    [[nodiscard]] const Value& at(const std::string& key) const;
    /// True iff this is an object containing the key.
    [[nodiscard]] bool contains(const std::string& key) const noexcept;

    /// Serializes the value. `indent` > 0 pretty-prints with that many
    /// spaces per level.
    [[nodiscard]] std::string dump(int indent = 0) const;

private:
    void dump_to(std::string& out, int indent, int depth) const;
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
/// Throws std::runtime_error with a byte offset on malformed input.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace qrn::json
