#include "qrn/contribution.h"

#include <cmath>
#include <stdexcept>

namespace qrn {

namespace {

constexpr double kSumTolerance = 1e-9;

}  // namespace

ContributionMatrix::ContributionMatrix(std::size_t class_count, std::size_t type_count,
                                       std::vector<std::vector<double>> fractions)
    : class_count_(class_count), type_count_(type_count), fractions_(std::move(fractions)) {
    if (class_count_ == 0 || type_count_ == 0) {
        throw std::invalid_argument("ContributionMatrix: empty dimensions");
    }
    if (fractions_.size() != class_count_) {
        throw std::invalid_argument("ContributionMatrix: row count != class count");
    }
    for (const auto& row : fractions_) {
        if (row.size() != type_count_) {
            throw std::invalid_argument("ContributionMatrix: row width != type count");
        }
        for (double f : row) {
            if (!std::isfinite(f) || f < 0.0 || f > 1.0) {
                throw std::invalid_argument("ContributionMatrix: fraction outside [0,1]");
            }
        }
    }
    for (std::size_t k = 0; k < type_count_; ++k) {
        if (column_sum(k) > 1.0 + kSumTolerance) {
            throw std::invalid_argument(
                "ContributionMatrix: per-type fractions sum above 1");
        }
    }
}

double ContributionMatrix::fraction(std::size_t class_index,
                                    std::size_t type_index) const {
    if (class_index >= class_count_ || type_index >= type_count_) {
        throw std::out_of_range("ContributionMatrix::fraction: bad index");
    }
    return fractions_[class_index][type_index];
}

double ContributionMatrix::column_sum(std::size_t type_index) const {
    if (type_index >= type_count_) {
        throw std::out_of_range("ContributionMatrix::column_sum: bad index");
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < class_count_; ++j) sum += fractions_[j][type_index];
    return sum;
}

bool ContributionMatrix::contributes(std::size_t class_index,
                                     std::size_t type_index) const {
    return fraction(class_index, type_index) > 0.0;
}

std::size_t ContributionMatrix::spread(std::size_t type_index) const {
    std::size_t n = 0;
    for (std::size_t j = 0; j < class_count_; ++j) {
        if (contributes(j, type_index)) ++n;
    }
    return n;
}

ContributionMatrix ContributionMatrix::from_injury_model(
    const RiskNorm& norm, const IncidentTypeSet& types, const InjuryRiskModel& model,
    const std::vector<double>& near_miss_profile) {
    const std::size_t classes = norm.size();
    const std::size_t n_types = types.size();

    // Locate the norm's quality and safety classes in severity order.
    std::vector<std::size_t> quality_idx, safety_idx;
    for (std::size_t j = 0; j < classes; ++j) {
        (norm.classes().at(j).domain == ConsequenceDomain::Quality ? quality_idx
                                                                   : safety_idx)
            .push_back(j);
    }
    if (near_miss_profile.size() > quality_idx.size()) {
        throw std::invalid_argument(
            "from_injury_model: near-miss profile longer than quality class list");
    }

    std::vector<std::vector<double>> fractions(classes, std::vector<double>(n_types, 0.0));
    for (std::size_t k = 0; k < n_types; ++k) {
        const IncidentType& t = types.at(k);
        if (t.margin().mechanism() == IncidentMechanism::NearMiss) {
            for (std::size_t q = 0; q < near_miss_profile.size(); ++q) {
                fractions[quality_idx[q]][k] = near_miss_profile[q];
            }
            continue;
        }
        const auto& band = t.margin().impact_band();
        const double upper = std::isinf(band.upper_kmh)
                                 ? band.lower_kmh + 200.0  // practical tail cut-off
                                 : band.upper_kmh;
        const InjuryOutcome avg =
            model.band_average(t.counterparty(), band.lower_kmh, upper);
        // Material damage -> most severe quality class (vQ3 in the paper's
        // example) when the norm has quality classes at all.
        if (!quality_idx.empty()) {
            fractions[quality_idx.back()][k] = avg.at(InjuryGrade::MaterialDamage);
        }
        // Injury grades -> safety classes in rank order. If the norm has
        // fewer safety classes than grades, the worst grades collapse into
        // the most severe class (conservative).
        const InjuryGrade grades[] = {InjuryGrade::LightModerate, InjuryGrade::Severe,
                                      InjuryGrade::LifeThreatening};
        for (std::size_t g = 0; g < 3; ++g) {
            if (safety_idx.empty()) break;
            const std::size_t j = safety_idx[std::min(g, safety_idx.size() - 1)];
            fractions[j][k] += avg.at(grades[g]);
        }
    }
    return ContributionMatrix(classes, n_types, std::move(fractions));
}

ContributionMatrix ContributionMatrix::from_counts(
    std::size_t class_count, std::size_t type_count,
    const std::vector<std::vector<std::uint64_t>>& counts,
    const std::vector<std::uint64_t>& totals) {
    if (counts.size() != class_count || totals.size() != type_count) {
        throw std::invalid_argument("from_counts: shape mismatch");
    }
    std::vector<std::vector<double>> fractions(class_count,
                                               std::vector<double>(type_count, 0.0));
    for (std::size_t k = 0; k < type_count; ++k) {
        std::uint64_t classified = 0;
        for (std::size_t j = 0; j < class_count; ++j) {
            if (counts[j].size() != type_count) {
                throw std::invalid_argument("from_counts: row width mismatch");
            }
            classified += counts[j][k];
        }
        if (classified > totals[k]) {
            throw std::invalid_argument(
                "from_counts: classified incidents exceed the type total");
        }
        if (totals[k] == 0) continue;  // no evidence -> zero contributions
        for (std::size_t j = 0; j < class_count; ++j) {
            fractions[j][k] =
                static_cast<double>(counts[j][k]) / static_cast<double>(totals[k]);
        }
    }
    return ContributionMatrix(class_count, type_count, std::move(fractions));
}

}  // namespace qrn
