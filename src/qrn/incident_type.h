// Incident types: the partitions of the incident space that become
// safety goals.
//
// Sec. III-B defines each incident type I as an interaction between the ego
// vehicle and an <object_type> within a <tolerance_margin>, chosen so that
// (a) its contribution to each consequence class can be shown, and (b) it
// provides meaningful input to refined safety requirements. The paper's
// running example (Fig. 5): I1 = Ego<->VRU near miss (d < 1 m, dv > 10
// km/h); I2 = Ego<->VRU collision 0 < dv <= 10 km/h; I3 = Ego<->VRU
// collision 10 < dv <= 70 km/h.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qrn/incident.h"
#include "qrn/tolerance_margin.h"

namespace qrn {

/// One incident type (I_k in the paper).
///
/// Two scopes exist, mirroring the two halves of Fig. 4:
///  - ego-involved (the constructor): an interaction between the ego
///    vehicle and a counterparty within the tolerance margin;
///  - induced (the `induced` factory): an incident between two third-party
///    actors for which ego was a causing factor - the paper notes these
///    "may be more difficult to clearly define" but belong to the budget.
class IncidentType {
public:
    /// Ego-involved type. Requires a non-empty id and a counterparty that
    /// is not EgoVehicle (ego-to-ego is not a meaningful interaction).
    IncidentType(std::string id, ActorType counterparty, ToleranceMargin margin,
                 std::string description = {});

    /// Induced type: matches incidents between the unordered actor pair
    /// {first, second} (neither may be EgoVehicle) where ego was a causing
    /// factor, within the margin.
    [[nodiscard]] static IncidentType induced(std::string id, ActorType first,
                                              ActorType second, ToleranceMargin margin,
                                              std::string description = {});

    [[nodiscard]] const std::string& id() const noexcept { return id_; }
    [[nodiscard]] bool is_induced() const noexcept { return induced_; }
    /// Ego-involved types: the non-ego party. Induced types: the first of
    /// the pair (see `second_party`).
    [[nodiscard]] ActorType counterparty() const noexcept { return counterparty_; }
    /// Induced types: the other actor of the pair. Ego-involved types:
    /// EgoVehicle.
    [[nodiscard]] ActorType second_party() const noexcept { return second_party_; }
    [[nodiscard]] const ToleranceMargin& margin() const noexcept { return margin_; }
    [[nodiscard]] const std::string& description() const noexcept { return description_; }

    /// True iff the incident falls in this type's scope, actor set and
    /// tolerance margin.
    [[nodiscard]] bool matches(const Incident& incident) const noexcept;

    /// "Ego<->VRU, 0 < dv <= 10 km/h" or "Car<->VRU (induced), ..." -
    /// the phrase used inside SG text.
    [[nodiscard]] std::string interaction_text() const;

private:
    std::string id_;
    ActorType counterparty_;
    ActorType second_party_ = ActorType::EgoVehicle;
    bool induced_ = false;
    ToleranceMargin margin_;
    std::string description_;
};

/// A validated collection of incident types (unique ids; pairwise-disjoint
/// matching is checked statistically by the MECE machinery, and
/// structurally where margins allow).
class IncidentTypeSet {
public:
    explicit IncidentTypeSet(std::vector<IncidentType> types);

    [[nodiscard]] std::size_t size() const noexcept { return types_.size(); }
    [[nodiscard]] const IncidentType& at(std::size_t index) const;
    [[nodiscard]] const std::vector<IncidentType>& all() const noexcept { return types_; }
    [[nodiscard]] std::optional<std::size_t> index_of(std::string_view id) const noexcept;
    [[nodiscard]] const IncidentType& by_id(std::string_view id) const;

    /// Index of the first type matching the incident, if any.
    [[nodiscard]] std::optional<std::size_t> classify(const Incident& incident) const noexcept;

    /// Number of types matching the incident (MECE requires <= 1 among
    /// same-counterparty types; used by tests and the MECE certificate).
    [[nodiscard]] std::size_t match_count(const Incident& incident) const noexcept;

    /// The paper's Fig. 5 example set {I1, I2, I3} for Ego<->VRU.
    [[nodiscard]] static IncidentTypeSet paper_vru_example();

private:
    std::vector<IncidentType> types_;
};

}  // namespace qrn
