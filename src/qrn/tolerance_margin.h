// Tolerance margins: the quantitative part of an incident-type definition.
//
// Sec. III-B: "many of the incident types can be defined as an interaction
// between ego vehicle and <object_type> within <tolerance_margin>. ... The
// <tolerance_margin> is for accidents telling the impact speed, and for
// quality-related incidents limits for distance and corresponding relative
// speed." A margin is therefore either an impact-speed band over collisions
// or a proximity band (distance below a threshold while closing faster than
// a threshold) over near misses.
#pragma once

#include <string>
#include <variant>

#include "qrn/incident.h"

namespace qrn {

/// Impact-speed band for collisions: lower < delta-v <= upper (km/h).
/// A half-open band (lo, hi] makes adjacent bands like (0,10] and (10,70]
/// mutually exclusive by construction, as the paper's I2/I3 example needs.
struct ImpactSpeedBand {
    double lower_kmh = 0.0;   ///< Exclusive lower bound.
    double upper_kmh = 0.0;   ///< Inclusive upper bound; may be +infinity.

    [[nodiscard]] bool contains(double delta_v_kmh) const noexcept {
        return delta_v_kmh > lower_kmh && delta_v_kmh <= upper_kmh;
    }
};

/// Proximity band for quality incidents: separation strictly below
/// `max_distance_m` while the closing speed exceeds `min_speed_kmh`
/// (the paper's I1: "Ego approaches the VRU with > 10 km/h when closer
/// than 1 m").
struct ProximityBand {
    double max_distance_m = 0.0;  ///< Exclusive upper bound on separation.
    double min_speed_kmh = 0.0;   ///< Exclusive lower bound on closing speed.

    [[nodiscard]] bool contains(double distance_m, double speed_kmh) const noexcept {
        return distance_m < max_distance_m && speed_kmh > min_speed_kmh;
    }
};

/// A tolerance margin is one of the two band kinds.
class ToleranceMargin {
public:
    /// Collision margin. Requires 0 <= lower < upper.
    [[nodiscard]] static ToleranceMargin impact_speed(double lower_kmh, double upper_kmh);

    /// Near-miss margin. Requires max_distance_m > 0 and min_speed_kmh >= 0.
    [[nodiscard]] static ToleranceMargin proximity(double max_distance_m,
                                                   double min_speed_kmh);

    /// Which incident mechanism this margin applies to.
    [[nodiscard]] IncidentMechanism mechanism() const noexcept;

    /// True iff the incident's mechanism matches and its measurements fall
    /// inside the band.
    [[nodiscard]] bool matches(const Incident& incident) const noexcept;

    /// The underlying band, for reporting. Throws std::bad_variant_access
    /// when asked for the wrong kind.
    [[nodiscard]] const ImpactSpeedBand& impact_band() const;
    [[nodiscard]] const ProximityBand& proximity_band() const;

    /// Rendering in the paper's SG style, e.g. "0 < dv <= 10 km/h" or
    /// "d < 1 m & dv > 10 km/h".
    [[nodiscard]] std::string to_string() const;

    /// True when the two margins cannot match the same incident (different
    /// mechanisms, or disjoint speed bands). Used by the MECE checker.
    [[nodiscard]] bool disjoint_with(const ToleranceMargin& other) const noexcept;

private:
    explicit ToleranceMargin(ImpactSpeedBand band) : band_(band) {}
    explicit ToleranceMargin(ProximityBand band) : band_(band) {}
    std::variant<ImpactSpeedBand, ProximityBand> band_;
};

}  // namespace qrn
