// Incident classification trees and the MECE completeness argument.
//
// The QRN approach replaces "completeness of identified situations" with
// completeness of an incident classification: "we can guarantee
// completeness by making the classification scheme complete by definition,
// i.e. every theoretically possible incident belongs to one of the defined
// incident types" (Sec. III-B). This module provides:
//  - a predicate tree mirroring the paper's Fig. 4 example classification;
//  - classify(): route any incident to exactly one leaf;
//  - a machine-checked MECE certificate: for a sampled incident population,
//    every internal node must have exactly one accepting child (mutual
//    exclusivity + collective exhaustiveness at every level).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qrn/incident.h"

namespace qrn {

/// Predicate over incidents used to route classification.
using IncidentPredicate = std::function<bool(const Incident&)>;

/// A node in the classification tree. Internal nodes partition their
/// incident subset among children; leaves are the classification buckets.
class ClassificationNode {
public:
    ClassificationNode(std::string name, IncidentPredicate accepts);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] bool accepts(const Incident& incident) const { return accepts_(incident); }
    [[nodiscard]] bool is_leaf() const noexcept { return children_.empty(); }
    [[nodiscard]] const std::vector<std::unique_ptr<ClassificationNode>>& children()
        const noexcept {
        return children_;
    }

    /// Adds a child partition; returns a reference for chained building.
    ClassificationNode& add_child(std::string name, IncidentPredicate accepts);

private:
    std::string name_;
    IncidentPredicate accepts_;
    std::vector<std::unique_ptr<ClassificationNode>> children_;
};

/// Result of classifying one incident: the path of node names from the
/// root's child down to the accepting leaf.
struct ClassificationPath {
    std::vector<std::string> path;

    [[nodiscard]] const std::string& leaf() const { return path.back(); }
    [[nodiscard]] std::string joined(const std::string& sep = " / ") const;
};

/// One MECE violation discovered during certification.
struct MeceViolation {
    std::string node;          ///< Internal node where the violation occurred.
    std::size_t accepting_children = 0;  ///< 0 = gap, >= 2 = overlap.
    std::string incident;      ///< describe() of the offending incident.
};

/// Outcome of a MECE certification run.
struct MeceReport {
    std::size_t samples = 0;
    std::vector<MeceViolation> violations;  ///< Capped; empty means certified.

    [[nodiscard]] bool certified() const noexcept { return violations.empty(); }
};

/// A complete classification tree rooted at "any incident in scope".
class ClassificationTree {
public:
    /// Takes ownership of the root; the root must accept every incident
    /// that `validate(incident)` accepts.
    explicit ClassificationTree(std::unique_ptr<ClassificationNode> root);

    [[nodiscard]] const ClassificationNode& root() const noexcept { return *root_; }

    /// Routes the incident down the tree. Throws std::logic_error if at any
    /// level zero or more than one child accepts (a MECE defect), making
    /// classification failures loud rather than silently arbitrary.
    [[nodiscard]] ClassificationPath classify(const Incident& incident) const;

    /// Certifies the MECE property over a population of sampled incidents.
    /// `next_incident(i)` must return the i-th sample. At most
    /// `max_violations` defects are recorded (the first ones in sample
    /// order) before early exit.
    ///
    /// With jobs > 1 the samples are scanned in parallel chunks on the
    /// shared thread pool; `next_incident` must then be safe to call
    /// concurrently and pure in its index (derive any randomness via
    /// stats::Rng::stream(seed, i)). The report is bit-identical for every
    /// jobs value.
    [[nodiscard]] MeceReport certify_mece(
        std::size_t samples, const std::function<Incident(std::size_t)>& next_incident,
        std::size_t max_violations = 10, unsigned jobs = 1) const;

    /// All leaf paths (depth-first), for reporting the tree (Fig. 4).
    [[nodiscard]] std::vector<ClassificationPath> leaves() const;

    /// Renders the tree as indented text.
    [[nodiscard]] std::string render() const;

    /// The paper's Fig. 4 example classification, complete by construction:
    /// top half partitions ego-involved incidents by counterparty (road
    /// user: car/truck/VRU/other; non-human: elk(animal)/static
    /// object/other), bottom half partitions induced incidents (ego a
    /// causing factor) by actor pair with catch-all "Other<->Other".
    [[nodiscard]] static ClassificationTree paper_example();

private:
    std::unique_ptr<ClassificationNode> root_;
};

/// Coverage of one classification leaf by an incident-type catalog.
struct LeafCoverage {
    std::string leaf;
    std::size_t sampled = 0;  ///< Incidents routed to this leaf.
    std::size_t covered = 0;  ///< Of those, matched by >= 1 incident type.

    [[nodiscard]] double fraction() const noexcept {
        return sampled == 0
                   ? 0.0
                   : static_cast<double>(covered) / static_cast<double>(sampled);
    }
};

/// Result of a type-coverage check over the classification.
struct TypeCoverageReport {
    std::size_t samples = 0;
    std::vector<LeafCoverage> leaves;  ///< Only leaves with sampled > 0.

    /// Leaves whose covered fraction is below `min_fraction` - the gaps a
    /// real study must close with further incident types (or explicitly
    /// waive with rationale in the safety case).
    [[nodiscard]] std::vector<std::string> gaps(double min_fraction = 1.0) const;
};

class IncidentTypeSet;  // incident_type.h; full definition needed by users.

/// The completeness argument needs more than a MECE tree: every leaf's
/// incidents must also be constrained by some safety goal. This check
/// samples incidents, routes each through the tree, and records whether
/// any incident type matches it. Same concurrency contract as
/// certify_mece: with jobs > 1, `next_incident` must be thread-safe and
/// index-pure; per-leaf tallies are merged and are bit-identical for
/// every jobs value.
[[nodiscard]] TypeCoverageReport check_type_coverage(
    const ClassificationTree& tree, const IncidentTypeSet& types, std::size_t samples,
    const std::function<Incident(std::size_t)>& next_incident, unsigned jobs = 1);

}  // namespace qrn
