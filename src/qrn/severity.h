// Consequence classes: the discrete severity levels of the risk norm.
//
// Sec. III-A of the paper divides the severity/criticality dimension into
// "a manageable number of discrete levels, or consequence classes", spanning
// both quality-related consequences (perceived safety, emergency manoeuvres
// forced on other road users, material damage) and safety-related ones
// (light/moderate, severe, life-threatening injuries). The paper does not
// fix the number of classes; ConsequenceClassSet supports any ordered set.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qrn {

/// Whether a consequence class concerns quality (economic harm / harm to
/// brand) or functional safety (harm of injury to humans). Paper Fig. 2.
enum class ConsequenceDomain { Quality, Safety };

[[nodiscard]] std::string_view to_string(ConsequenceDomain domain) noexcept;

/// One discrete consequence class (denoted v in the paper).
struct ConsequenceClass {
    std::string id;           ///< Short key, e.g. "vQ1", "vS3".
    std::string name;         ///< Human name, e.g. "Severe injuries".
    ConsequenceDomain domain = ConsequenceDomain::Safety;
    int rank = 0;             ///< Strictly increasing with severity.
    std::string example;      ///< Illustrative incident (Fig. 2 blue box).
};

/// An ordered, validated set of consequence classes.
///
/// Invariants established at construction:
///  - at least one class;
///  - ids unique and non-empty;
///  - ranks strictly increasing in the order given;
///  - quality classes (if any) precede safety classes, matching the paper's
///    severity axis where quality consequences are less severe than injury
///    consequences.
class ConsequenceClassSet {
public:
    explicit ConsequenceClassSet(std::vector<ConsequenceClass> classes);

    [[nodiscard]] std::size_t size() const noexcept { return classes_.size(); }
    [[nodiscard]] const ConsequenceClass& at(std::size_t index) const;
    [[nodiscard]] const std::vector<ConsequenceClass>& all() const noexcept {
        return classes_;
    }

    /// Index of the class with the given id, if present.
    [[nodiscard]] std::optional<std::size_t> index_of(std::string_view id) const noexcept;

    /// The class with the given id; throws std::out_of_range if absent.
    [[nodiscard]] const ConsequenceClass& by_id(std::string_view id) const;

    /// Number of classes in the given domain.
    [[nodiscard]] std::size_t count(ConsequenceDomain domain) const noexcept;

    /// The six example classes of the paper's Figs. 2-3: vQ1 (perceived
    /// safety), vQ2 (emergency manoeuvre), vQ3 (material damage), vS1 (light
    /// to moderate injuries), vS2 (severe injuries), vS3 (life-threatening
    /// injuries).
    [[nodiscard]] static ConsequenceClassSet paper_example();

private:
    std::vector<ConsequenceClass> classes_;
};

}  // namespace qrn
