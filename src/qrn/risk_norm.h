// The quantitative risk norm (QRN) itself.
//
// "The risk norm defines what is regarded 'sufficiently safe' in the
// design-time safety case top claim" (Sec. III-A): for every consequence
// class v_j it fixes an acceptable total frequency f_{v_j}^{acceptable}.
// The norm is one per safety case, valid across the whole ODD regardless of
// where/when/how the feature is used, and deliberately independent of any
// implementation strategy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "qrn/frequency.h"
#include "qrn/severity.h"

namespace qrn {

/// A consequence class together with its acceptable total frequency.
struct NormEntry {
    ConsequenceClass consequence_class;
    Frequency limit;  ///< f_v^(acceptable), events per operational hour.
};

/// The quantitative risk norm: acceptable frequency per consequence class.
///
/// Invariants established at construction:
///  - the underlying class set is valid (see ConsequenceClassSet);
///  - limits are strictly positive (a zero budget would make every incident
///    type infeasible and is rejected as a modelling error);
///  - limits are non-increasing with severity rank ("we will likely accept
///    higher frequencies of quality-related consequences than those
///    involving injuries", Sec. III-A).
class RiskNorm {
public:
    RiskNorm(ConsequenceClassSet classes, std::vector<Frequency> limits,
             std::string name = "unnamed norm");

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t size() const noexcept { return limits_.size(); }
    [[nodiscard]] const ConsequenceClassSet& classes() const noexcept { return classes_; }

    /// Acceptable frequency for the class at `index`.
    [[nodiscard]] Frequency limit(std::size_t index) const;

    /// Acceptable frequency for the class with the given id.
    [[nodiscard]] Frequency limit_by_id(std::string_view id) const;

    [[nodiscard]] NormEntry entry(std::size_t index) const;

    /// Total acceptable frequency over a domain (e.g. all safety classes);
    /// useful for summarising a norm against a societal-acceptance figure.
    [[nodiscard]] Frequency domain_total(ConsequenceDomain domain) const noexcept;

    /// Returns a norm identical to this one except the limit of class `id`
    /// is scaled by `factor` (> 0). Scaling must preserve monotonicity.
    [[nodiscard]] RiskNorm with_scaled_limit(std::string_view id, double factor) const;

    /// The running example used throughout the repository: the six classes
    /// of ConsequenceClassSet::paper_example() with limits spanning
    /// 1e-3 /h (scared road user) down to 1e-8 /h (life-threatening injury).
    /// The paper's own disclaimer applies: illustrative values only.
    [[nodiscard]] static RiskNorm paper_example();

private:
    ConsequenceClassSet classes_;
    std::vector<Frequency> limits_;
    std::string name_;
};

}  // namespace qrn
