#include "qrn/empirical.h"

#include <stdexcept>

#include "exec/parallel.h"
#include "stats/proportion.h"

namespace qrn {

namespace {

/// Quality/safety class indices of a norm in severity order.
struct ClassIndex {
    std::vector<std::size_t> quality;
    std::vector<std::size_t> safety;

    explicit ClassIndex(const RiskNorm& norm) {
        for (std::size_t j = 0; j < norm.size(); ++j) {
            (norm.classes().at(j).domain == ConsequenceDomain::Quality ? quality : safety)
                .push_back(j);
        }
    }
};

}  // namespace

std::optional<std::size_t> sample_consequence(const Incident& incident,
                                              const RiskNorm& norm,
                                              const InjuryRiskModel& model,
                                              const std::vector<double>& near_miss_profile,
                                              stats::Rng& rng) {
    const ClassIndex index(norm);
    if (incident.mechanism == IncidentMechanism::NearMiss) {
        if (near_miss_profile.size() > index.quality.size()) {
            throw std::invalid_argument(
                "sample_consequence: near-miss profile longer than quality class list");
        }
        double u = rng.uniform();
        for (std::size_t q = 0; q < near_miss_profile.size(); ++q) {
            if (u < near_miss_profile[q]) return index.quality[q];
            u -= near_miss_profile[q];
        }
        return std::nullopt;  // no consequence beyond the near miss itself
    }
    const ActorType counterparty =
        incident.first == ActorType::EgoVehicle ? incident.second : incident.first;
    const InjuryOutcome outcome =
        model.outcome(counterparty, incident.relative_speed_kmh);
    double u = rng.uniform();
    for (std::size_t g = 0; g < kInjuryGradeCount; ++g) {
        if (u >= outcome.probability[g]) {
            u -= outcome.probability[g];
            continue;
        }
        switch (static_cast<InjuryGrade>(g)) {
            case InjuryGrade::None:
                return std::nullopt;
            case InjuryGrade::MaterialDamage:
                return index.quality.empty() ? std::nullopt
                                             : std::optional(index.quality.back());
            case InjuryGrade::LightModerate:
            case InjuryGrade::Severe:
            case InjuryGrade::LifeThreatening: {
                if (index.safety.empty()) return std::nullopt;
                const std::size_t grade_offset =
                    g - static_cast<std::size_t>(InjuryGrade::LightModerate);
                const std::size_t j = std::min(grade_offset, index.safety.size() - 1);
                return index.safety[j];
            }
        }
    }
    return std::nullopt;  // numeric tail; treat as no consequence
}

std::vector<LabelledIncident> label_incidents(std::span<const Incident> incidents,
                                              const RiskNorm& norm,
                                              const InjuryRiskModel& model,
                                              const std::vector<double>& near_miss_profile,
                                              stats::Rng& rng) {
    std::vector<LabelledIncident> out;
    out.reserve(incidents.size());
    for (const auto& incident : incidents) {
        out.push_back(LabelledIncident{
            incident,
            sample_consequence(incident, norm, model, near_miss_profile, rng)});
    }
    return out;
}

std::vector<LabelledIncident> label_incidents(std::span<const Incident> incidents,
                                              const RiskNorm& norm,
                                              const InjuryRiskModel& model,
                                              const std::vector<double>& near_miss_profile,
                                              std::uint64_t seed, unsigned jobs) {
    return exec::parallel_map<LabelledIncident>(
        jobs, incidents.size(), [&](std::size_t i) {
            stats::Rng rng = stats::Rng::stream(seed, i);
            return LabelledIncident{
                incidents[i],
                sample_consequence(incidents[i], norm, model, near_miss_profile, rng)};
        });
}

ContributionMatrix ContributionCounts::point_matrix() const {
    return ContributionMatrix::from_counts(counts.size(), totals.size(), counts, totals);
}

std::vector<std::vector<double>> ContributionCounts::upper_bounds(
    double confidence) const {
    std::vector<std::vector<double>> out(counts.size(),
                                         std::vector<double>(totals.size(), 1.0));
    for (std::size_t j = 0; j < counts.size(); ++j) {
        for (std::size_t k = 0; k < totals.size(); ++k) {
            if (totals[k] == 0) continue;  // no evidence: stay at 1.0
            // One-sided upper bound = two-sided CP with doubled alpha.
            const double two_sided = 1.0 - 2.0 * (1.0 - confidence);
            const auto ci = stats::clopper_pearson_interval(
                counts[j][k], totals[k], two_sided > 0.0 ? two_sided : confidence);
            out[j][k] = ci.upper;
        }
    }
    return out;
}

ContributionCounts tally_contributions(std::span<const LabelledIncident> labelled,
                                       const IncidentTypeSet& types,
                                       std::size_t class_count) {
    if (class_count == 0) {
        throw std::invalid_argument("tally_contributions: class_count must be >= 1");
    }
    ContributionCounts out;
    out.counts.assign(class_count, std::vector<std::uint64_t>(types.size(), 0));
    out.totals.assign(types.size(), 0);
    for (const auto& item : labelled) {
        const auto type_index = types.classify(item.incident);
        if (!type_index) continue;
        ++out.totals[*type_index];
        if (item.class_index) {
            if (*item.class_index >= class_count) {
                throw std::invalid_argument("tally_contributions: label out of range");
            }
            ++out.counts[*item.class_index][*type_index];
        }
    }
    return out;
}

}  // namespace qrn
