// JSON serialization of the core QRN artifacts.
//
// Round-trippable: risk norms and incident-type catalogs (the two artifacts
// that are authored/reviewed by people). Export-only: allocations and
// verification reports (derived artifacts that are regenerated from their
// inputs; exporting them documents a safety-case snapshot).
#pragma once

#include "qrn/allocation.h"
#include "qrn/incident_type.h"
#include "qrn/json.h"
#include "qrn/risk_norm.h"
#include "qrn/verification.h"

namespace qrn {

/// RiskNorm <-> JSON.
[[nodiscard]] json::Value to_json(const RiskNorm& norm);
[[nodiscard]] RiskNorm risk_norm_from_json(const json::Value& value);

/// IncidentTypeSet <-> JSON. Unbounded impact bands serialize their upper
/// bound as null.
[[nodiscard]] json::Value to_json(const IncidentTypeSet& types);
[[nodiscard]] IncidentTypeSet incident_types_from_json(const json::Value& value);

/// Allocation -> JSON snapshot (budgets, per-class usage, solver).
/// `types` provides the ids matching the budget order.
[[nodiscard]] json::Value to_json(const Allocation& allocation,
                                  const IncidentTypeSet& types);

/// VerificationReport -> JSON snapshot.
[[nodiscard]] json::Value to_json(const VerificationReport& report);

/// TypeEvidence list <-> the `qrn.evidence` JSON document produced by the
/// CLI campaign commands and consumed by `qrn verify --evidence` and the
/// serve daemon. All entries share one exposure; an empty list serializes
/// with exposure_hours 0 and round-trips as empty.
[[nodiscard]] json::Value evidence_to_json(const std::vector<TypeEvidence>& evidence);
[[nodiscard]] std::vector<TypeEvidence> evidence_from_json(const json::Value& value);

}  // namespace qrn
