#include "qrn/risk_norm.h"

#include <stdexcept>

namespace qrn {

RiskNorm::RiskNorm(ConsequenceClassSet classes, std::vector<Frequency> limits,
                   std::string name)
    : classes_(std::move(classes)), limits_(std::move(limits)), name_(std::move(name)) {
    if (limits_.size() != classes_.size()) {
        throw std::invalid_argument("RiskNorm: one limit per consequence class required");
    }
    for (std::size_t i = 0; i < limits_.size(); ++i) {
        if (limits_[i].is_zero()) {
            throw std::invalid_argument("RiskNorm: limit for " + classes_.at(i).id +
                                        " must be > 0");
        }
        if (i > 0 && limits_[i] > limits_[i - 1]) {
            throw std::invalid_argument(
                "RiskNorm: limits must be non-increasing with severity (" +
                classes_.at(i).id + ")");
        }
    }
}

Frequency RiskNorm::limit(std::size_t index) const {
    if (index >= limits_.size()) throw std::out_of_range("RiskNorm::limit: bad index");
    return limits_[index];
}

Frequency RiskNorm::limit_by_id(std::string_view id) const {
    const auto idx = classes_.index_of(id);
    if (!idx) throw std::out_of_range("RiskNorm: no class " + std::string(id));
    return limits_[*idx];
}

NormEntry RiskNorm::entry(std::size_t index) const {
    if (index >= limits_.size()) throw std::out_of_range("RiskNorm::entry: bad index");
    return NormEntry{classes_.at(index), limits_[index]};
}

Frequency RiskNorm::domain_total(ConsequenceDomain domain) const noexcept {
    Frequency total;
    for (std::size_t i = 0; i < limits_.size(); ++i) {
        if (classes_.at(i).domain == domain) total += limits_[i];
    }
    return total;
}

RiskNorm RiskNorm::with_scaled_limit(std::string_view id, double factor) const {
    if (factor <= 0.0) {
        throw std::invalid_argument("RiskNorm::with_scaled_limit: factor must be > 0");
    }
    const auto idx = classes_.index_of(id);
    if (!idx) throw std::out_of_range("RiskNorm: no class " + std::string(id));
    auto limits = limits_;
    limits[*idx] = limits[*idx] * factor;
    return RiskNorm(classes_, std::move(limits), name_ + " (scaled " + std::string(id) + ")");
}

RiskNorm RiskNorm::paper_example() {
    return RiskNorm(ConsequenceClassSet::paper_example(),
                    {
                        Frequency::per_hour(1e-3),  // vQ1 perceived safety
                        Frequency::per_hour(1e-4),  // vQ2 emergency manoeuvre
                        Frequency::per_hour(1e-5),  // vQ3 material damage
                        Frequency::per_hour(1e-6),  // vS1 light/moderate injuries
                        Frequency::per_hour(1e-7),  // vS2 severe injuries
                        Frequency::per_hour(1e-8),  // vS3 life-threatening injuries
                    },
                    "paper example norm");
}

}  // namespace qrn
