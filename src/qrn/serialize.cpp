#include "qrn/serialize.h"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

namespace qrn {

namespace {

ConsequenceDomain domain_from_string(const std::string& s) {
    if (s == "quality") return ConsequenceDomain::Quality;
    if (s == "safety") return ConsequenceDomain::Safety;
    throw std::runtime_error("serialize: unknown consequence domain '" + s + "'");
}

ActorType actor_from_string(const std::string& s) {
    for (std::size_t i = 0; i < kActorTypeCount; ++i) {
        const ActorType a = actor_type_from_index(i);
        if (s == to_string(a)) return a;
    }
    throw std::runtime_error("serialize: unknown actor type '" + s + "'");
}

}  // namespace

json::Value to_json(const RiskNorm& norm) {
    json::Array classes;
    for (std::size_t j = 0; j < norm.size(); ++j) {
        const auto entry = norm.entry(j);
        classes.push_back(json::Value(json::Object{
            {"id", entry.consequence_class.id},
            {"name", entry.consequence_class.name},
            {"domain", std::string(to_string(entry.consequence_class.domain))},
            {"rank", entry.consequence_class.rank},
            {"example", entry.consequence_class.example},
            {"limit_per_hour", entry.limit.per_hour_value()},
        }));
    }
    return json::Value(json::Object{
        {"kind", "qrn.risk_norm"},
        {"name", norm.name()},
        {"classes", std::move(classes)},
    });
}

RiskNorm risk_norm_from_json(const json::Value& value) {
    if (!value.contains("kind") || value.at("kind").as_string() != "qrn.risk_norm") {
        throw std::runtime_error("risk_norm_from_json: not a qrn.risk_norm document");
    }
    std::vector<ConsequenceClass> classes;
    std::vector<Frequency> limits;
    for (const auto& entry : value.at("classes").as_array()) {
        ConsequenceClass c;
        c.id = entry.at("id").as_string();
        c.name = entry.at("name").as_string();
        c.domain = domain_from_string(entry.at("domain").as_string());
        c.rank = static_cast<int>(entry.at("rank").as_number());
        c.example = entry.contains("example") ? entry.at("example").as_string() : "";
        classes.push_back(std::move(c));
        limits.push_back(Frequency::per_hour(entry.at("limit_per_hour").as_number()));
    }
    return RiskNorm(ConsequenceClassSet(std::move(classes)), std::move(limits),
                    value.at("name").as_string());
}

json::Value to_json(const IncidentTypeSet& types) {
    json::Array list;
    for (std::size_t k = 0; k < types.size(); ++k) {
        const IncidentType& t = types.at(k);
        json::Object margin;
        if (t.margin().mechanism() == IncidentMechanism::Collision) {
            const auto& band = t.margin().impact_band();
            margin = {{"kind", "impact_speed"},
                      {"lower_kmh", band.lower_kmh},
                      {"upper_kmh", std::isinf(band.upper_kmh)
                                        ? json::Value(nullptr)
                                        : json::Value(band.upper_kmh)}};
        } else {
            const auto& band = t.margin().proximity_band();
            margin = {{"kind", "proximity"},
                      {"max_distance_m", band.max_distance_m},
                      {"min_speed_kmh", band.min_speed_kmh}};
        }
        json::Object entry{
            {"id", t.id()},
            {"scope", t.is_induced() ? "induced" : "ego"},
            {"counterparty", std::string(to_string(t.counterparty()))},
            {"margin", std::move(margin)},
            {"description", t.description()},
        };
        if (t.is_induced()) {
            entry.insert(entry.begin() + 3,
                         {"second_party", std::string(to_string(t.second_party()))});
        }
        list.push_back(json::Value(std::move(entry)));
    }
    return json::Value(json::Object{
        {"kind", "qrn.incident_types"},
        {"types", std::move(list)},
    });
}

IncidentTypeSet incident_types_from_json(const json::Value& value) {
    if (!value.contains("kind") ||
        value.at("kind").as_string() != "qrn.incident_types") {
        throw std::runtime_error(
            "incident_types_from_json: not a qrn.incident_types document");
    }
    std::vector<IncidentType> out;
    for (const auto& entry : value.at("types").as_array()) {
        const auto& margin = entry.at("margin");
        const std::string kind = margin.at("kind").as_string();
        std::optional<ToleranceMargin> tolerance;
        if (kind == "impact_speed") {
            const double lower = margin.at("lower_kmh").as_number();
            const double upper =
                margin.at("upper_kmh").is_null()
                    ? std::numeric_limits<double>::infinity()
                    : margin.at("upper_kmh").as_number();
            tolerance = ToleranceMargin::impact_speed(lower, upper);
        } else if (kind == "proximity") {
            tolerance = ToleranceMargin::proximity(
                margin.at("max_distance_m").as_number(),
                margin.at("min_speed_kmh").as_number());
        } else {
            throw std::runtime_error("incident_types_from_json: unknown margin kind '" +
                                     kind + "'");
        }
        const std::string description =
            entry.contains("description") ? entry.at("description").as_string() : "";
        const bool is_induced =
            entry.contains("scope") && entry.at("scope").as_string() == "induced";
        if (is_induced) {
            out.push_back(IncidentType::induced(
                entry.at("id").as_string(),
                actor_from_string(entry.at("counterparty").as_string()),
                actor_from_string(entry.at("second_party").as_string()), *tolerance,
                description));
        } else {
            out.emplace_back(entry.at("id").as_string(),
                             actor_from_string(entry.at("counterparty").as_string()),
                             *tolerance, description);
        }
    }
    return IncidentTypeSet(std::move(out));
}

json::Value to_json(const Allocation& allocation, const IncidentTypeSet& types) {
    if (allocation.budgets.size() != types.size()) {
        throw std::invalid_argument("to_json(Allocation): budget/type count mismatch");
    }
    json::Array budgets;
    for (std::size_t k = 0; k < types.size(); ++k) {
        budgets.push_back(json::Value(json::Object{
            {"incident_type", types.at(k).id()},
            {"budget_per_hour", allocation.budgets[k].per_hour_value()},
        }));
    }
    json::Array usage;
    for (const auto& u : allocation.usage) {
        usage.push_back(json::Value(json::Object{
            {"class", u.class_id},
            {"limit_per_hour", u.limit.per_hour_value()},
            {"used_per_hour", u.used.per_hour_value()},
            {"utilization", u.utilization},
        }));
    }
    return json::Value(json::Object{
        {"kind", "qrn.allocation"},
        {"solver", allocation.solver},
        {"budgets", std::move(budgets)},
        {"class_usage", std::move(usage)},
    });
}

json::Value to_json(const VerificationReport& report) {
    json::Array goals;
    for (const auto& g : report.goals) {
        goals.push_back(json::Value(json::Object{
            {"incident_type", g.incident_type_id},
            {"budget_per_hour", g.budget.per_hour_value()},
            {"point_rate_per_hour", g.point_rate.per_hour_value()},
            {"upper_rate_per_hour", g.upper_rate.per_hour_value()},
            {"verdict", std::string(to_string(g.verdict))},
        }));
    }
    json::Array classes;
    for (const auto& c : report.classes) {
        classes.push_back(json::Value(json::Object{
            {"class", c.class_id},
            {"limit_per_hour", c.limit.per_hour_value()},
            {"point_usage_per_hour", c.point_usage.per_hour_value()},
            {"upper_usage_per_hour", c.upper_usage.per_hour_value()},
            {"verdict", std::string(to_string(c.verdict))},
        }));
    }
    return json::Value(json::Object{
        {"kind", "qrn.verification"},
        {"confidence", report.confidence},
        {"norm_fulfilled", report.norm_fulfilled()},
        {"goals", std::move(goals)},
        {"classes", std::move(classes)},
    });
}

json::Value evidence_to_json(const std::vector<TypeEvidence>& evidence) {
    json::Array events;
    double hours = 0.0;
    for (const auto& e : evidence) {
        hours = e.exposure.hours();
        events.push_back(json::Value(json::Object{
            {"incident_type", e.incident_type_id},
            {"events", static_cast<double>(e.events)},
        }));
    }
    return json::Value(json::Object{
        {"kind", "qrn.evidence"},
        {"exposure_hours", hours},
        {"events", std::move(events)},
    });
}

std::vector<TypeEvidence> evidence_from_json(const json::Value& value) {
    if (!value.is_object() || !value.contains("kind") ||
        !value.at("kind").is_string() ||
        value.at("kind").as_string() != "qrn.evidence") {
        throw std::runtime_error("not a qrn.evidence document (kind must be "
                                 "\"qrn.evidence\")");
    }
    if (!value.contains("exposure_hours") ||
        !value.at("exposure_hours").is_number()) {
        throw std::runtime_error("exposure_hours: expected a number");
    }
    const double hours = value.at("exposure_hours").as_number();
    if (!std::isfinite(hours) || hours <= 0.0) {
        throw std::runtime_error("exposure_hours: must be finite and > 0 (got " +
                                 std::to_string(hours) + ")");
    }
    if (!value.contains("events") || !value.at("events").is_array()) {
        throw std::runtime_error("events: expected an array");
    }
    std::vector<TypeEvidence> out;
    const auto& entries = value.at("events").as_array();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const std::string where = "events[" + std::to_string(i) + "]";
        const auto& entry = entries[i];
        if (!entry.is_object() || !entry.contains("incident_type") ||
            !entry.at("incident_type").is_string()) {
            throw std::runtime_error(where +
                                     ".incident_type: expected a string");
        }
        if (!entry.contains("events") || !entry.at("events").is_number()) {
            throw std::runtime_error(where + ".events: expected a number");
        }
        const double count = entry.at("events").as_number();
        if (!std::isfinite(count) || count < 0.0 ||
            count != std::floor(count) || count > 1e18) {
            throw std::runtime_error(where +
                                     ".events: must be a non-negative integer "
                                     "(got " +
                                     std::to_string(count) + ")");
        }
        TypeEvidence e;
        e.incident_type_id = entry.at("incident_type").as_string();
        e.events = static_cast<std::uint64_t>(count);
        e.exposure = ExposureHours(hours);
        out.push_back(std::move(e));
    }
    return out;
}

}  // namespace qrn
