#include "qrn/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace qrn::json {

bool Value::is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
bool Value::is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
bool Value::is_number() const noexcept { return std::holds_alternative<double>(data_); }
bool Value::is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
bool Value::is_array() const noexcept { return std::holds_alternative<Array>(data_); }
bool Value::is_object() const noexcept { return std::holds_alternative<Object>(data_); }

namespace {

[[noreturn]] void kind_error(const char* wanted) {
    throw std::runtime_error(std::string("json: value is not ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
    if (!is_bool()) kind_error("a bool");
    return std::get<bool>(data_);
}

double Value::as_number() const {
    if (!is_number()) kind_error("a number");
    return std::get<double>(data_);
}

const std::string& Value::as_string() const {
    if (!is_string()) kind_error("a string");
    return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
    if (!is_array()) kind_error("an array");
    return std::get<Array>(data_);
}

const Object& Value::as_object() const {
    if (!is_object()) kind_error("an object");
    return std::get<Object>(data_);
}

const Value& Value::at(const std::string& key) const {
    for (const auto& [k, v] : as_object()) {
        if (k == key) return v;
    }
    throw std::runtime_error("json: missing key '" + key + "'");
}

bool Value::contains(const std::string& key) const noexcept {
    if (!is_object()) return false;
    for (const auto& [k, v] : std::get<Object>(data_)) {
        if (k == key) return true;
    }
    return false;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
    out += '"';
    for (const char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    out += '"';
}

void number_into(std::string& out, double d) {
    if (!std::isfinite(d)) {
        throw std::runtime_error("json: non-finite numbers are not representable");
    }
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", d);
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
    if (is_null()) {
        out += "null";
    } else if (is_bool()) {
        out += as_bool() ? "true" : "false";
    } else if (is_number()) {
        number_into(out, as_number());
    } else if (is_string()) {
        escape_into(out, as_string());
    } else if (is_array()) {
        const auto& arr = as_array();
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i > 0) out += ',';
            newline_indent(out, indent, depth + 1);
            arr[i].dump_to(out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out += ']';
    } else {
        const auto& obj = as_object();
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i > 0) out += ',';
            newline_indent(out, indent, depth + 1);
            escape_into(out, obj[i].first);
            out += indent > 0 ? ": " : ":";
            obj[i].second.dump_to(out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out += '}';
    }
}

std::string Value::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document() {
        skip_whitespace();
        Value v = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw std::runtime_error("json parse error at byte " + std::to_string(pos_) +
                                 ": " + message);
    }

    void skip_whitespace() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() const {
        if (pos_ >= text_.size()) {
            throw std::runtime_error("json parse error: unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char ch) {
        if (peek() != ch) fail(std::string("expected '") + ch + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) return false;
        pos_ += literal.size();
        return true;
    }

    Value parse_value() {
        skip_whitespace();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Value(parse_string());
            case 't':
                if (consume_literal("true")) return Value(true);
                fail("bad literal");
            case 'f':
                if (consume_literal("false")) return Value(false);
                fail("bad literal");
            case 'n':
                if (consume_literal("null")) return Value(nullptr);
                fail("bad literal");
            default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Object out;
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(out));
        }
        while (true) {
            skip_whitespace();
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            out.emplace_back(std::move(key), parse_value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return Value(std::move(out));
        }
    }

    Value parse_array() {
        expect('[');
        Array out;
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(out));
        }
        while (true) {
            out.push_back(parse_value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return Value(std::move(out));
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code += static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code += static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code += static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("bad hex digit in \\u escape");
                        }
                    }
                    // UTF-8 encode (BMP only; surrogate pairs unsupported).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
            fail("expected a number");
        }
        // std::from_chars, not strtod: strtod honours LC_NUMERIC, so under
        // e.g. LC_NUMERIC=de_DE "1.5" would stop at the '.' and evidence
        // files would silently parse differently per machine. from_chars
        // is locale-independent and needs no NUL-terminated copy.
        const std::string_view token = text_.substr(start, pos_ - start);
        double d = 0.0;
        const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
        if (ec == std::errc::result_out_of_range) fail("number out of range");
        if (ec != std::errc() || end != token.data() + token.size()) {
            fail("malformed number");
        }
        return Value(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace qrn::json
