#include "qrn/injury_risk.h"

#include <cmath>
#include <stdexcept>

namespace qrn {

namespace {

double logistic(double x, double midpoint, double steepness) {
    return 1.0 / (1.0 + std::exp(-steepness * (x - midpoint)));
}

/// Collisions at exactly zero speed are no contact at all; the model treats
/// them as zero-risk regardless of curve parameters.
constexpr double kZeroSpeedEpsilon = 1e-12;

void require_valid(const FragilityCurve& curve) {
    if (!(curve.light_midpoint_kmh < curve.severe_midpoint_kmh &&
          curve.severe_midpoint_kmh < curve.fatal_midpoint_kmh)) {
        throw std::invalid_argument(
            "FragilityCurve: midpoints must satisfy light < severe < fatal");
    }
    if (!(curve.steepness > 0.0)) {
        throw std::invalid_argument("FragilityCurve: steepness must be > 0");
    }
    if (curve.light_midpoint_kmh <= 0.0) {
        throw std::invalid_argument("FragilityCurve: midpoints must be > 0");
    }
}

}  // namespace

InjuryRiskModel::InjuryRiskModel() {
    // Illustrative fragility ordering: VRU ~ Animal << StaticObject/Other <
    // Car < Truck-occupant-of-ego perspective. Midpoints chosen so that VRU
    // severe-injury risk "rises quickly" above ~10 km/h (paper Sec. III-B).
    const FragilityCurve vru{8.0, 25.0, 45.0, 0.15};
    const FragilityCurve animal{15.0, 40.0, 70.0, 0.10};
    const FragilityCurve car{25.0, 50.0, 75.0, 0.10};
    const FragilityCurve truck{20.0, 45.0, 70.0, 0.10};
    const FragilityCurve static_obj{30.0, 60.0, 90.0, 0.09};
    const FragilityCurve other{25.0, 50.0, 80.0, 0.10};
    curves_[static_cast<std::size_t>(ActorType::EgoVehicle)] = car;  // unused
    curves_[static_cast<std::size_t>(ActorType::Car)] = car;
    curves_[static_cast<std::size_t>(ActorType::Truck)] = truck;
    curves_[static_cast<std::size_t>(ActorType::Vru)] = vru;
    curves_[static_cast<std::size_t>(ActorType::Animal)] = animal;
    curves_[static_cast<std::size_t>(ActorType::StaticObject)] = static_obj;
    curves_[static_cast<std::size_t>(ActorType::OtherActor)] = other;
}

void InjuryRiskModel::set_curve(ActorType counterparty, const FragilityCurve& curve) {
    require_valid(curve);
    curves_[static_cast<std::size_t>(counterparty)] = curve;
}

const FragilityCurve& InjuryRiskModel::curve(ActorType counterparty) const {
    return curves_[static_cast<std::size_t>(counterparty)];
}

double InjuryRiskModel::exceedance(ActorType counterparty, InjuryGrade grade,
                                   double impact_speed_kmh) const {
    if (!std::isfinite(impact_speed_kmh) || impact_speed_kmh < 0.0) {
        throw std::invalid_argument("InjuryRiskModel: impact speed must be >= 0");
    }
    if (impact_speed_kmh < kZeroSpeedEpsilon) {
        return grade == InjuryGrade::None ? 1.0 : 0.0;
    }
    const auto& c = curve(counterparty);
    switch (grade) {
        case InjuryGrade::None:
            return 1.0;  // every collision is at least "no consequence"
        case InjuryGrade::MaterialDamage:
            // Any real contact produces at least material damage.
            return 1.0;
        case InjuryGrade::LightModerate:
            return logistic(impact_speed_kmh, c.light_midpoint_kmh, c.steepness);
        case InjuryGrade::Severe:
            return logistic(impact_speed_kmh, c.severe_midpoint_kmh, c.steepness);
        case InjuryGrade::LifeThreatening:
            return logistic(impact_speed_kmh, c.fatal_midpoint_kmh, c.steepness);
    }
    throw std::logic_error("InjuryRiskModel: unknown grade");
}

InjuryOutcome InjuryRiskModel::outcome(ActorType counterparty,
                                       double impact_speed_kmh) const {
    // Exceedance curves are nested (logistic with ordered midpoints and a
    // shared steepness), so differencing yields valid grade probabilities.
    const double p_mat = exceedance(counterparty, InjuryGrade::MaterialDamage,
                                    impact_speed_kmh);
    const double p_light =
        exceedance(counterparty, InjuryGrade::LightModerate, impact_speed_kmh);
    const double p_severe = exceedance(counterparty, InjuryGrade::Severe,
                                       impact_speed_kmh);
    const double p_fatal =
        exceedance(counterparty, InjuryGrade::LifeThreatening, impact_speed_kmh);
    InjuryOutcome out;
    out.probability[static_cast<std::size_t>(InjuryGrade::None)] = 1.0 - p_mat;
    out.probability[static_cast<std::size_t>(InjuryGrade::MaterialDamage)] =
        p_mat - p_light;
    out.probability[static_cast<std::size_t>(InjuryGrade::LightModerate)] =
        p_light - p_severe;
    out.probability[static_cast<std::size_t>(InjuryGrade::Severe)] = p_severe - p_fatal;
    out.probability[static_cast<std::size_t>(InjuryGrade::LifeThreatening)] = p_fatal;
    return out;
}

InjuryOutcome InjuryRiskModel::band_average(ActorType counterparty, double lower_kmh,
                                            double upper_kmh, std::size_t steps) const {
    if (!(lower_kmh >= 0.0) || !(upper_kmh > lower_kmh)) {
        throw std::invalid_argument("InjuryRiskModel::band_average: bad band");
    }
    if (steps == 0) throw std::invalid_argument("InjuryRiskModel::band_average: steps>=1");
    InjuryOutcome acc;
    const double width = upper_kmh - lower_kmh;
    for (std::size_t i = 0; i < steps; ++i) {
        // Midpoint rule over the band.
        const double v =
            lower_kmh + width * (static_cast<double>(i) + 0.5) / static_cast<double>(steps);
        const InjuryOutcome o = outcome(counterparty, v);
        for (std::size_t g = 0; g < kInjuryGradeCount; ++g) {
            acc.probability[g] += o.probability[g];
        }
    }
    for (auto& p : acc.probability) p /= static_cast<double>(steps);
    return acc;
}

}  // namespace qrn
