// Umbrella header for the QRN core library.
//
// Typical flow (see examples/quickstart.cpp):
//   1. Define a RiskNorm (consequence classes + acceptable frequencies).
//   2. Define an IncidentTypeSet (interactions within tolerance margins),
//      refining a MECE ClassificationTree.
//   3. Derive a ContributionMatrix (injury-risk model or empirical counts).
//   4. Allocate per-type frequency budgets (allocation.h solvers).
//   5. Derive the SafetyGoalSet; print the completeness argument.
//   6. Verify Eq. 1 against fleet evidence (verification.h).
#pragma once

#include "qrn/allocation.h"       // IWYU pragma: export
#include "qrn/banding.h"          // IWYU pragma: export
#include "qrn/classification.h"   // IWYU pragma: export
#include "qrn/contribution.h"     // IWYU pragma: export
#include "qrn/empirical.h"        // IWYU pragma: export
#include "qrn/frequency.h"        // IWYU pragma: export
#include "qrn/incident.h"         // IWYU pragma: export
#include "qrn/incident_type.h"    // IWYU pragma: export
#include "qrn/injury_risk.h"      // IWYU pragma: export
#include "qrn/risk_norm.h"        // IWYU pragma: export
#include "qrn/safety_goal.h"      // IWYU pragma: export
#include "qrn/sensitivity.h"      // IWYU pragma: export
#include "qrn/serialize.h"        // IWYU pragma: export
#include "qrn/severity.h"         // IWYU pragma: export
#include "qrn/tolerance_margin.h" // IWYU pragma: export
#include "qrn/verification.h"     // IWYU pragma: export
