// The incident record: the unit of observation in the QRN approach.
//
// The paper uses "incident" as the generic term covering both quality-
// related incidents and safety-related accidents (accidents are a subset of
// incidents, Sec. III-B footnote 2). An incident involves the ego vehicle
// (or, for induced incidents, other actors for which ego is a causing
// factor) and is characterised by the actors involved and a tolerance-
// margin measurement: impact speed for collisions, distance/relative speed
// for near-miss quality incidents.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qrn {

/// Traffic actor categories from the paper's Fig. 4 classification
/// (<object_type> is "a complete and unique set", Sec. III-B).
enum class ActorType : std::uint8_t {
    EgoVehicle,    ///< The ADS-equipped vehicle.
    Car,           ///< Other passenger car.
    Truck,         ///< Heavy goods vehicle / bus.
    Vru,           ///< Vulnerable road user (pedestrian, cyclist, ...).
    Animal,        ///< Large animal, e.g. the paper's Ego<->Elk example.
    StaticObject,  ///< Stationary obstacle / infrastructure.
    OtherActor,    ///< Catch-all keeping the actor set collectively exhaustive.
};

[[nodiscard]] std::string_view to_string(ActorType type) noexcept;

/// Number of distinct ActorType values (for iteration in samplers/tests).
inline constexpr std::size_t kActorTypeCount = 7;

[[nodiscard]] ActorType actor_type_from_index(std::size_t index);

/// What physically happened; partitions the incident space at the top.
enum class IncidentMechanism : std::uint8_t {
    Collision,  ///< Physical contact; tolerance margin = impact speed.
    NearMiss,   ///< No contact but proximity violation; margin = distance+speed.
};

[[nodiscard]] std::string_view to_string(IncidentMechanism mechanism) noexcept;

/// One observed or simulated incident.
///
/// Plain data; invariants (non-negative measurements, distinct actors for
/// induced incidents) are enforced by `validate`, which the simulator and
/// the classification tree call at ingestion.
struct Incident {
    /// First actor. For ego-involved incidents this is EgoVehicle; for
    /// induced incidents (lower half of Fig. 4) it is the first third-party
    /// actor, with `ego_causing_factor` set.
    ActorType first = ActorType::EgoVehicle;
    /// The counterparty actor.
    ActorType second = ActorType::Car;
    IncidentMechanism mechanism = IncidentMechanism::Collision;
    /// Impact speed delta-v in km/h (collisions) or closing speed in km/h
    /// (near misses). Non-negative.
    double relative_speed_kmh = 0.0;
    /// Minimum separation in metres (near misses; 0 for collisions).
    double min_distance_m = 0.0;
    /// True when ego is not a party but caused the incident (induced).
    bool ego_causing_factor = false;
    /// Simulation timestamp (operational hours since fleet start); metadata.
    double timestamp_hours = 0.0;

    /// True iff ego is one of the two parties.
    [[nodiscard]] bool involves_ego() const noexcept {
        return first == ActorType::EgoVehicle || second == ActorType::EgoVehicle;
    }
};

/// Checks the structural invariants; throws std::invalid_argument with a
/// description of the first violated one.
void validate(const Incident& incident);

/// Compact single-line rendering for logs and test diagnostics.
[[nodiscard]] std::string describe(const Incident& incident);

}  // namespace qrn
