// Product-line management: one risk norm, many variants.
//
// Sec. VII: "since the risk norm is decoupled from the implementation the
// approach is advantageous for handling variability (e.g. in product
// lines) since the same risk norm can be used for many variants. I.e.,
// while there may be some variability in the frequency allocation for each
// incident type (as solutions for variants may have different
// characteristics) the total acceptable risk for each consequence class
// will be the same." The ProductLine owns the shared problem structure,
// admits variants only with allocations that satisfy the shared norm, and
// reports how much the per-type budgets spread across the line.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "qrn/allocation.h"
#include "qrn/safety_goal.h"

namespace qrn {

/// Per-incident-type budget spread across the variants of a line.
struct BudgetSpread {
    std::string incident_type_id;
    Frequency min_budget;
    Frequency max_budget;
    double ratio = 1.0;  ///< max / min (1 = identical across variants).
};

/// A family of ADS variants sharing one risk norm and incident-type set.
class ProductLine {
public:
    /// The shared problem structure every variant allocates against.
    ProductLine(RiskNorm norm, IncidentTypeSet types, ContributionMatrix matrix,
                EthicalConstraint ethics = EthicalConstraint{});

    [[nodiscard]] const RiskNorm& norm() const noexcept { return problem_.norm(); }
    [[nodiscard]] const IncidentTypeSet& types() const noexcept {
        return problem_.types();
    }

    /// Adds a variant allocated with the given per-type demand weights
    /// (proportional solver). Throws on duplicate names or weights that
    /// cannot produce a norm-satisfying allocation.
    void add_variant(const std::string& name, const std::vector<double>& weights);

    /// Adds a variant with explicit budgets; they must satisfy the shared
    /// norm (checked) - the line's invariant is never negotiable.
    void add_variant_with_budgets(const std::string& name,
                                  const std::vector<Frequency>& budgets);

    [[nodiscard]] std::size_t size() const noexcept { return variants_.size(); }
    [[nodiscard]] std::vector<std::string> names() const;
    [[nodiscard]] const Allocation& variant(const std::string& name) const;

    /// The safety goals of one variant (same texts line-wide except for the
    /// frequency attribute).
    [[nodiscard]] SafetyGoalSet goals_of(const std::string& name) const;

    /// How far the per-type budgets spread across the current variants
    /// (requires at least one variant).
    [[nodiscard]] std::vector<BudgetSpread> budget_spread() const;

private:
    AllocationProblem problem_;
    std::map<std::string, Allocation> variants_;
};

}  // namespace qrn
