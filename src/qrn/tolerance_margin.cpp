#include "qrn/tolerance_margin.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace qrn {

ToleranceMargin ToleranceMargin::impact_speed(double lower_kmh, double upper_kmh) {
    if (!std::isfinite(lower_kmh) || lower_kmh < 0.0) {
        throw std::invalid_argument("ToleranceMargin: impact lower bound must be >= 0");
    }
    if (std::isnan(upper_kmh) || upper_kmh <= lower_kmh) {
        throw std::invalid_argument("ToleranceMargin: impact band requires lower < upper");
    }
    return ToleranceMargin(ImpactSpeedBand{lower_kmh, upper_kmh});
}

ToleranceMargin ToleranceMargin::proximity(double max_distance_m, double min_speed_kmh) {
    if (!std::isfinite(max_distance_m) || max_distance_m <= 0.0) {
        throw std::invalid_argument("ToleranceMargin: proximity distance must be > 0");
    }
    if (!std::isfinite(min_speed_kmh) || min_speed_kmh < 0.0) {
        throw std::invalid_argument("ToleranceMargin: proximity speed must be >= 0");
    }
    return ToleranceMargin(ProximityBand{max_distance_m, min_speed_kmh});
}

IncidentMechanism ToleranceMargin::mechanism() const noexcept {
    return std::holds_alternative<ImpactSpeedBand>(band_) ? IncidentMechanism::Collision
                                                          : IncidentMechanism::NearMiss;
}

bool ToleranceMargin::matches(const Incident& incident) const noexcept {
    if (incident.mechanism != mechanism()) return false;
    if (const auto* impact = std::get_if<ImpactSpeedBand>(&band_)) {
        return impact->contains(incident.relative_speed_kmh);
    }
    const auto& prox = std::get<ProximityBand>(band_);
    return prox.contains(incident.min_distance_m, incident.relative_speed_kmh);
}

const ImpactSpeedBand& ToleranceMargin::impact_band() const {
    return std::get<ImpactSpeedBand>(band_);
}

const ProximityBand& ToleranceMargin::proximity_band() const {
    return std::get<ProximityBand>(band_);
}

std::string ToleranceMargin::to_string() const {
    char buf[96];
    if (const auto* impact = std::get_if<ImpactSpeedBand>(&band_)) {
        if (std::isinf(impact->upper_kmh)) {
            std::snprintf(buf, sizeof buf, "dv > %g km/h", impact->lower_kmh);
        } else {
            std::snprintf(buf, sizeof buf, "%g < dv <= %g km/h", impact->lower_kmh,
                          impact->upper_kmh);
        }
        return buf;
    }
    const auto& prox = std::get<ProximityBand>(band_);
    std::snprintf(buf, sizeof buf, "d < %g m & dv > %g km/h", prox.max_distance_m,
                  prox.min_speed_kmh);
    return buf;
}

bool ToleranceMargin::disjoint_with(const ToleranceMargin& other) const noexcept {
    if (mechanism() != other.mechanism()) return true;
    if (const auto* a = std::get_if<ImpactSpeedBand>(&band_)) {
        const auto& b = std::get<ImpactSpeedBand>(other.band_);
        // Half-open (lo, hi] bands are disjoint iff one ends before the
        // other begins.
        return a->upper_kmh <= b.lower_kmh || b.upper_kmh <= a->lower_kmh;
    }
    const auto& a = std::get<ProximityBand>(band_);
    const auto& b = std::get<ProximityBand>(other.band_);
    // Proximity bands are nested half-infinite boxes; they overlap unless
    // their speed intervals or distance intervals cannot intersect, which
    // for (0, max_d) x (min_v, inf) boxes never happens. Treat as
    // overlapping (conservative) unless identical-mechanism disjointness is
    // impossible to prove.
    (void)a;
    (void)b;
    return false;
}

}  // namespace qrn
