#include "qrn/allocation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace qrn {

namespace {

constexpr double kTolerance = 1e-9;

/// Largest uniform scale s such that budgets s*w satisfy every class limit
/// and the ethical cap. Infinity when no constraint binds (all-zero matrix
/// columns for every positive weight).
double max_uniform_scale(const AllocationProblem& p, const std::vector<double>& weights,
                         const std::vector<bool>* frozen,
                         const std::vector<double>* base_budgets) {
    const auto& norm = p.norm();
    const auto& m = p.matrix();
    const double cap = p.ethics().max_share;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < norm.size(); ++j) {
        const double limit = norm.limit(j).per_hour_value();
        double active_rate = 0.0;   // usage growth per unit of s
        double frozen_usage = 0.0;  // usage already consumed by frozen types
        for (std::size_t k = 0; k < m.type_count(); ++k) {
            const double c = m.fraction(j, k);
            if (c <= 0.0) continue;
            if (frozen != nullptr && (*frozen)[k]) {
                frozen_usage += c * (*base_budgets)[k];
            } else {
                active_rate += c * weights[k];
            }
        }
        if (active_rate > 0.0) {
            best = std::min(best, (limit - frozen_usage) / active_rate);
        }
        // Ethical cap per (class, type): c * s * w_k <= cap * limit.
        if (cap < 1.0) {
            for (std::size_t k = 0; k < m.type_count(); ++k) {
                if (frozen != nullptr && (*frozen)[k]) continue;
                const double c = m.fraction(j, k);
                if (c <= 0.0 || weights[k] <= 0.0) continue;
                best = std::min(best, cap * limit / (c * weights[k]));
            }
        }
    }
    return best;
}

Allocation finish(const AllocationProblem& p, std::vector<double> budgets,
                  std::string solver) {
    Allocation out;
    out.solver = std::move(solver);
    out.budgets.reserve(budgets.size());
    for (double b : budgets) out.budgets.push_back(Frequency::per_hour(std::max(b, 0.0)));
    out.usage = evaluate_usage(p, out.budgets);
    return out;
}

/// Budget for types with no contribution to any class: they do not consume
/// the norm, so their SG frequency must come from elsewhere. Default: the
/// least strict class limit (they can be no more frequent than the most
/// permissive consequence budget would ever allow).
double fallback_budget(const AllocationProblem& p, std::optional<Frequency> requested) {
    if (requested) return requested->per_hour_value();
    double most_permissive = 0.0;
    for (std::size_t j = 0; j < p.norm().size(); ++j) {
        most_permissive = std::max(most_permissive, p.norm().limit(j).per_hour_value());
    }
    return most_permissive;
}

std::vector<double> uniform_weights(std::size_t n) { return std::vector<double>(n, 1.0); }

}  // namespace

AllocationProblem::AllocationProblem(RiskNorm norm, IncidentTypeSet types,
                                     ContributionMatrix matrix,
                                     std::vector<double> weights,
                                     EthicalConstraint ethics)
    : norm_(std::move(norm)),
      types_(std::move(types)),
      matrix_(std::move(matrix)),
      weights_(std::move(weights)),
      ethics_(ethics) {
    if (matrix_.class_count() != norm_.size() || matrix_.type_count() != types_.size()) {
        throw std::invalid_argument(
            "AllocationProblem: matrix shape must be classes x types");
    }
    if (weights_.empty()) weights_ = uniform_weights(types_.size());
    if (weights_.size() != types_.size()) {
        throw std::invalid_argument("AllocationProblem: one weight per incident type");
    }
    for (double w : weights_) {
        if (!std::isfinite(w) || w <= 0.0) {
            throw std::invalid_argument("AllocationProblem: weights must be > 0");
        }
    }
    if (ethics_.max_share <= 0.0 || ethics_.max_share > 1.0) {
        throw std::invalid_argument("AllocationProblem: ethics max_share in (0, 1]");
    }
}

double Allocation::min_headroom() const noexcept {
    double best = 1.0;
    for (const auto& u : usage) best = std::min(best, 1.0 - u.utilization);
    return best;
}

std::vector<ClassUsage> evaluate_usage(const AllocationProblem& problem,
                                       const std::vector<Frequency>& budgets) {
    if (budgets.size() != problem.types().size()) {
        throw std::invalid_argument("evaluate_usage: one budget per incident type");
    }
    std::vector<ClassUsage> out;
    out.reserve(problem.norm().size());
    for (std::size_t j = 0; j < problem.norm().size(); ++j) {
        ClassUsage u;
        u.class_id = problem.norm().classes().at(j).id;
        u.limit = problem.norm().limit(j);
        Frequency used;
        for (std::size_t k = 0; k < budgets.size(); ++k) {
            used += budgets[k] * problem.matrix().fraction(j, k);
        }
        u.used = used;
        u.utilization = used.ratio(u.limit);
        out.push_back(std::move(u));
    }
    return out;
}

bool satisfies_norm(const AllocationProblem& problem,
                    const std::vector<Frequency>& budgets) {
    for (const auto& u : evaluate_usage(problem, budgets)) {
        if (u.utilization > 1.0 + kTolerance) return false;
    }
    const double cap = problem.ethics().max_share;
    if (cap < 1.0) {
        for (std::size_t j = 0; j < problem.norm().size(); ++j) {
            const double limit = problem.norm().limit(j).per_hour_value();
            for (std::size_t k = 0; k < budgets.size(); ++k) {
                const double share =
                    problem.matrix().fraction(j, k) * budgets[k].per_hour_value() / limit;
                if (share > cap + kTolerance) return false;
            }
        }
    }
    return true;
}

Allocation allocate_proportional(const AllocationProblem& problem,
                                 std::optional<Frequency> free_type_budget) {
    const auto& w = problem.weights();
    const double s = max_uniform_scale(problem, w, nullptr, nullptr);
    const double fb = fallback_budget(problem, free_type_budget);
    std::vector<double> budgets(w.size());
    for (std::size_t k = 0; k < w.size(); ++k) {
        const bool constrained = problem.matrix().column_sum(k) > 0.0;
        budgets[k] = constrained ? s * w[k] : fb;
    }
    return finish(problem, std::move(budgets), "proportional");
}

Allocation allocate_inverse_cost(const AllocationProblem& problem,
                                 std::optional<Frequency> free_type_budget) {
    const auto& m = problem.matrix();
    const auto& norm = problem.norm();
    std::vector<double> weights(m.type_count(), 0.0);
    for (std::size_t k = 0; k < m.type_count(); ++k) {
        double cost = 0.0;
        for (std::size_t j = 0; j < norm.size(); ++j) {
            cost += m.fraction(j, k) / norm.limit(j).per_hour_value();
        }
        weights[k] = cost > 0.0 ? 1.0 / cost : 0.0;  // 0 marks a free type
    }
    // Free types must not poison the scale computation; give them weight 0
    // in scaling and the fallback budget afterwards.
    std::vector<double> scale_weights = weights;
    for (auto& sw : scale_weights) {
        if (sw == 0.0) sw = kTolerance;  // positive but negligible
    }
    const double s = max_uniform_scale(problem, scale_weights, nullptr, nullptr);
    const double fb = fallback_budget(problem, free_type_budget);
    std::vector<double> budgets(weights.size());
    for (std::size_t k = 0; k < weights.size(); ++k) {
        budgets[k] = weights[k] > 0.0 ? s * weights[k] : fb;
    }
    return finish(problem, std::move(budgets), "inverse-cost");
}

Allocation allocate_water_filling(const AllocationProblem& problem,
                                  std::optional<Frequency> free_type_budget) {
    const auto& m = problem.matrix();
    const auto& norm = problem.norm();
    const auto& w = problem.weights();
    const std::size_t n = m.type_count();
    std::vector<double> budgets(n, 0.0);
    std::vector<bool> frozen(n, false);
    const double fb = fallback_budget(problem, free_type_budget);

    // Free types (no contributions) get the fallback immediately.
    for (std::size_t k = 0; k < n; ++k) {
        if (m.column_sum(k) == 0.0) {
            budgets[k] = fb;
            frozen[k] = true;
        }
    }

    for (std::size_t round = 0; round < n; ++round) {
        if (std::all_of(frozen.begin(), frozen.end(), [](bool f) { return f; })) break;
        // Grow every unfrozen budget by s * w_k until a class saturates.
        std::vector<double> growth(n, 0.0);
        for (std::size_t k = 0; k < n; ++k) growth[k] = frozen[k] ? 0.0 : w[k];
        // Largest additional uniform scale given current budgets.
        double best = std::numeric_limits<double>::infinity();
        std::size_t binding_class = norm.size();
        for (std::size_t j = 0; j < norm.size(); ++j) {
            const double limit = norm.limit(j).per_hour_value();
            double used = 0.0, rate = 0.0;
            for (std::size_t k = 0; k < n; ++k) {
                const double c = m.fraction(j, k);
                used += c * budgets[k];
                rate += c * growth[k];
            }
            if (rate <= 0.0) continue;
            const double s = (limit - used) / rate;
            if (s < best) {
                best = s;
                binding_class = j;
            }
        }
        // Ethical cap can bind before any class saturates.
        const double cap = problem.ethics().max_share;
        std::size_t capped_type = n;
        if (cap < 1.0) {
            for (std::size_t j = 0; j < norm.size(); ++j) {
                const double limit = norm.limit(j).per_hour_value();
                for (std::size_t k = 0; k < n; ++k) {
                    const double c = m.fraction(j, k);
                    if (c <= 0.0 || growth[k] <= 0.0) continue;
                    const double s = (cap * limit - c * budgets[k]) / (c * growth[k]);
                    if (s < best) {
                        best = s;
                        binding_class = norm.size();
                        capped_type = k;
                    }
                }
            }
        }
        if (!std::isfinite(best)) break;  // nothing binds (shouldn't happen)
        best = std::max(best, 0.0);
        for (std::size_t k = 0; k < n; ++k) budgets[k] += best * growth[k];
        if (binding_class < norm.size()) {
            // Freeze every type feeding the saturated class.
            for (std::size_t k = 0; k < n; ++k) {
                if (m.fraction(binding_class, k) > 0.0) frozen[k] = true;
            }
        } else if (capped_type < n) {
            frozen[capped_type] = true;
        } else {
            break;
        }
    }
    // Any type still unfrozen is unconstrained by the remaining slack only
    // through classes that saturated; cap it at the fallback.
    for (std::size_t k = 0; k < n; ++k) {
        if (!frozen[k] && budgets[k] == 0.0) budgets[k] = fb;
    }
    return finish(problem, std::move(budgets), "water-filling");
}

Allocation allocate_tightening(const AllocationProblem& problem,
                               const std::vector<Frequency>& demands) {
    if (demands.size() != problem.types().size()) {
        throw std::invalid_argument("allocate_tightening: one demand per type");
    }
    const auto& m = problem.matrix();
    const auto& norm = problem.norm();
    std::vector<double> budgets(demands.size());
    for (std::size_t k = 0; k < demands.size(); ++k) {
        budgets[k] = demands[k].per_hour_value();
    }
    const double cap = problem.ethics().max_share;

    // First enforce the ethical cap directly (it is separable per entry).
    if (cap < 1.0) {
        for (std::size_t j = 0; j < norm.size(); ++j) {
            const double limit = norm.limit(j).per_hour_value();
            for (std::size_t k = 0; k < budgets.size(); ++k) {
                const double c = m.fraction(j, k);
                if (c <= 0.0) continue;
                budgets[k] = std::min(budgets[k], cap * limit / c);
            }
        }
    }
    // Then iteratively scale down contributors of the worst-violated class.
    for (int iter = 0; iter < 1000; ++iter) {
        double worst_util = 1.0;
        std::size_t worst_class = norm.size();
        for (std::size_t j = 0; j < norm.size(); ++j) {
            double used = 0.0;
            for (std::size_t k = 0; k < budgets.size(); ++k) {
                used += m.fraction(j, k) * budgets[k];
            }
            const double util = used / norm.limit(j).per_hour_value();
            if (util > worst_util + kTolerance) {
                worst_util = util;
                worst_class = j;
            }
        }
        if (worst_class == norm.size()) break;  // all classes satisfied
        const double shrink = 1.0 / worst_util;
        for (std::size_t k = 0; k < budgets.size(); ++k) {
            if (m.fraction(worst_class, k) > 0.0) budgets[k] *= shrink;
        }
    }
    return finish(problem, std::move(budgets), "tightening");
}

}  // namespace qrn
