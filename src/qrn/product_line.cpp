#include "qrn/product_line.h"

#include <algorithm>
#include <stdexcept>

namespace qrn {

ProductLine::ProductLine(RiskNorm norm, IncidentTypeSet types, ContributionMatrix matrix,
                         EthicalConstraint ethics)
    : problem_(std::move(norm), std::move(types), std::move(matrix), {}, ethics) {}

void ProductLine::add_variant(const std::string& name,
                              const std::vector<double>& weights) {
    if (variants_.count(name) != 0) {
        throw std::invalid_argument("ProductLine: duplicate variant '" + name + "'");
    }
    const AllocationProblem weighted(problem_.norm(), problem_.types(),
                                     problem_.matrix(), weights, problem_.ethics());
    auto allocation = allocate_proportional(weighted);
    if (!satisfies_norm(problem_, allocation.budgets)) {
        throw std::invalid_argument("ProductLine: variant '" + name +
                                    "' cannot satisfy the shared norm");
    }
    allocation.solver = "proportional (variant " + name + ")";
    variants_.emplace(name, std::move(allocation));
}

void ProductLine::add_variant_with_budgets(const std::string& name,
                                           const std::vector<Frequency>& budgets) {
    if (variants_.count(name) != 0) {
        throw std::invalid_argument("ProductLine: duplicate variant '" + name + "'");
    }
    if (!satisfies_norm(problem_, budgets)) {
        throw std::invalid_argument("ProductLine: variant '" + name +
                                    "' violates the shared norm");
    }
    Allocation allocation;
    allocation.budgets = budgets;
    allocation.usage = evaluate_usage(problem_, budgets);
    allocation.solver = "explicit (variant " + name + ")";
    variants_.emplace(name, std::move(allocation));
}

std::vector<std::string> ProductLine::names() const {
    std::vector<std::string> out;
    out.reserve(variants_.size());
    for (const auto& [name, allocation] : variants_) out.push_back(name);
    return out;
}

const Allocation& ProductLine::variant(const std::string& name) const {
    const auto it = variants_.find(name);
    if (it == variants_.end()) {
        throw std::out_of_range("ProductLine: no variant '" + name + "'");
    }
    return it->second;
}

SafetyGoalSet ProductLine::goals_of(const std::string& name) const {
    return SafetyGoalSet::derive(problem_, variant(name));
}

std::vector<BudgetSpread> ProductLine::budget_spread() const {
    if (variants_.empty()) {
        throw std::logic_error("ProductLine::budget_spread: no variants yet");
    }
    std::vector<BudgetSpread> out;
    for (std::size_t k = 0; k < problem_.types().size(); ++k) {
        BudgetSpread spread;
        spread.incident_type_id = problem_.types().at(k).id();
        bool first = true;
        for (const auto& [name, allocation] : variants_) {
            const Frequency budget = allocation.budgets[k];
            if (first) {
                spread.min_budget = budget;
                spread.max_budget = budget;
                first = false;
            } else {
                spread.min_budget = std::min(spread.min_budget, budget);
                spread.max_budget = std::max(spread.max_budget, budget);
            }
        }
        spread.ratio = spread.min_budget.per_hour_value() > 0.0
                           ? spread.max_budget.ratio(spread.min_budget)
                           : 1.0;
        out.push_back(std::move(spread));
    }
    return out;
}

}  // namespace qrn
