// Safety goals with quantitative integrity attributes.
//
// In the QRN approach "each defined incident type will result in one SG"
// (Sec. III), and "each SG shall have an integrity attribute in the form of
// a guaranteed frequency, i.e. what is the maximum tolerated occurrence of
// violating this SG". The paper's example rendering:
//
//   SG-I2: Avoid collision Ego<->VRU, with 0 < dv <= 10 km/h, to below f_I2.
//
// SafetyGoalSet couples the goals to the completeness argument: goals are
// complete *by construction* when derived from an allocation whose incident
// types partition a MECE classification.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "qrn/allocation.h"
#include "qrn/classification.h"
#include "qrn/incident_type.h"

namespace qrn {

/// One top-level safety requirement produced by the tailored HARA.
struct SafetyGoal {
    std::string id;               ///< "SG-I2".
    std::string incident_type_id; ///< "I2".
    ActorType counterparty = ActorType::Car;
    IncidentMechanism mechanism = IncidentMechanism::Collision;
    Frequency max_frequency;      ///< The quantitative integrity attribute.
    std::string text;             ///< Paper-style full sentence.
};

/// The set of safety goals derived from one allocation.
class SafetyGoalSet {
public:
    /// Derives one SG per incident type from an allocation. The allocation
    /// must have one budget per type and satisfy the problem's norm
    /// (checked; deriving goals from an infeasible allocation would encode
    /// an unsound safety case).
    [[nodiscard]] static SafetyGoalSet derive(const AllocationProblem& problem,
                                              const Allocation& allocation);

    [[nodiscard]] std::size_t size() const noexcept { return goals_.size(); }
    [[nodiscard]] const SafetyGoal& at(std::size_t index) const;
    [[nodiscard]] const std::vector<SafetyGoal>& all() const noexcept { return goals_; }
    [[nodiscard]] const SafetyGoal& by_incident_type(std::string_view type_id) const;

    /// The completeness argument (Sec. III-B): ties the goal set to a MECE
    /// certificate over the classification the incident types refine.
    /// Returns a multi-line textual argument suitable for a safety-case
    /// work product; `certificate` must be a certified report. When a
    /// type-coverage report is supplied, leaves whose incidents the goal
    /// set does not (fully) constrain are listed explicitly as open
    /// obligations - a real study must close or waive each one.
    [[nodiscard]] std::string completeness_argument(
        const ClassificationTree& tree, const MeceReport& certificate,
        const TypeCoverageReport* coverage = nullptr) const;

private:
    explicit SafetyGoalSet(std::vector<SafetyGoal> goals) : goals_(std::move(goals)) {}
    std::vector<SafetyGoal> goals_;
};

/// Renders the paper-style SG sentence for one incident type and budget,
/// e.g. "Avoid collision Ego<->VRU, with 0 < dv <= 10 km/h, to below
/// 2.5e-07 /h." Near-miss types render as "Avoid near-miss ...".
[[nodiscard]] std::string render_goal_text(const IncidentType& type, Frequency budget);

}  // namespace qrn
