// Automatic tolerance-margin banding from the injury-risk model.
//
// Sec. III-B motivates impact-speed bands by the severity profile: "having
// two incident types for collision speeds below or above 10 km/h may be
// appropriate if the likelihood of severe injuries rises quickly above this
// limit". This module derives the band edges from the model instead of
// hand-picking them: a cut point is the impact speed where the exceedance
// probability of a chosen injury grade crosses a threshold. It also
// generates a *complete* incident-type set: banded collision types for
// every counterparty (the last band open-ended) plus a near-miss type, so
// the derived safety goals cover the entire ego-involved incident space.
#pragma once

#include <vector>

#include "qrn/incident_type.h"
#include "qrn/injury_risk.h"

namespace qrn {

/// The impact speed (km/h) at which P(injury >= grade) first reaches
/// `probability` for the given counterparty, found by bisection on the
/// monotone exceedance curve. Requires probability in (0, 1). Returns the
/// search ceiling (300 km/h) if the curve never reaches it.
[[nodiscard]] double severity_cut_point(const InjuryRiskModel& model,
                                        ActorType counterparty, InjuryGrade grade,
                                        double probability);

/// Cut points for several probabilities (strictly increasing thresholds
/// produce strictly increasing cuts). Duplicates/non-monotone results are
/// rejected with std::invalid_argument.
[[nodiscard]] std::vector<double> severity_cut_points(
    const InjuryRiskModel& model, ActorType counterparty, InjuryGrade grade,
    const std::vector<double>& probabilities);

/// Configuration for complete type-set generation.
struct BandingConfig {
    /// Exceedance thresholds defining the band edges (per counterparty),
    /// applied to `grade`. Default: 10% and 60% severe-injury probability.
    std::vector<double> thresholds = {0.10, 0.60};
    InjuryGrade grade = InjuryGrade::Severe;
    /// Near-miss margin attached per counterparty (paper I1 style).
    double near_miss_distance_m = 1.0;
    double near_miss_speed_kmh = 10.0;
    /// Whether to emit a near-miss type per counterparty.
    bool include_near_miss = true;
};

/// Generates banded collision types (ids "I-<Actor>-C<k>", last band
/// unbounded) and optional near-miss types ("I-<Actor>-NM") for every
/// non-ego counterparty. The result covers every ego-involved incident
/// with positive impact speed: each such incident matches exactly one type.
[[nodiscard]] IncidentTypeSet generate_complete_types(const InjuryRiskModel& model,
                                                      const BandingConfig& config = {});

}  // namespace qrn
