#include "qrn/verification.h"

#include <algorithm>
#include <stdexcept>

namespace qrn {

namespace {

constexpr double kTolerance = 1e-12;

ClassVerdict judge(double point, double upper, double limit) {
    if (point > limit * (1.0 + kTolerance)) return ClassVerdict::Violated;
    if (upper > limit * (1.0 + kTolerance)) return ClassVerdict::PointFulfilled;
    return ClassVerdict::Fulfilled;
}

}  // namespace

std::string_view to_string(ClassVerdict verdict) noexcept {
    switch (verdict) {
        case ClassVerdict::Fulfilled: return "FULFILLED";
        case ClassVerdict::PointFulfilled: return "POINT-ONLY";
        case ClassVerdict::Violated: return "VIOLATED";
    }
    return "unknown";
}

bool VerificationReport::norm_fulfilled() const noexcept {
    return std::all_of(classes.begin(), classes.end(), [](const ClassVerification& c) {
        return c.verdict == ClassVerdict::Fulfilled;
    });
}

bool VerificationReport::norm_point_fulfilled() const noexcept {
    return std::all_of(classes.begin(), classes.end(), [](const ClassVerification& c) {
        return c.verdict != ClassVerdict::Violated;
    });
}

bool VerificationReport::goals_fulfilled() const noexcept {
    return std::all_of(goals.begin(), goals.end(), [](const GoalVerification& g) {
        return g.verdict == ClassVerdict::Fulfilled;
    });
}

namespace {

/// Shared implementation; `fraction_upper`, when non-null, replaces the
/// matrix fractions in the upper-usage sum.
VerificationReport verify_impl(const AllocationProblem& problem,
                               const Allocation& allocation,
                               const std::vector<TypeEvidence>& evidence,
                               double confidence,
                               const std::vector<std::vector<double>>* fraction_upper);

}  // namespace

VerificationReport verify_against_evidence(const AllocationProblem& problem,
                                           const Allocation& allocation,
                                           const std::vector<TypeEvidence>& evidence,
                                           double confidence) {
    return verify_impl(problem, allocation, evidence, confidence, nullptr);
}

VerificationReport verify_against_evidence_conservative(
    const AllocationProblem& problem, const Allocation& allocation,
    const std::vector<TypeEvidence>& evidence, double confidence,
    const std::vector<std::vector<double>>& fraction_upper) {
    if (fraction_upper.size() != problem.norm().size()) {
        throw std::invalid_argument(
            "verify_against_evidence_conservative: fraction rows != class count");
    }
    for (const auto& row : fraction_upper) {
        if (row.size() != problem.types().size()) {
            throw std::invalid_argument(
                "verify_against_evidence_conservative: fraction row width != types");
        }
        for (const double f : row) {
            if (!(f >= 0.0) || f > 1.0) {
                throw std::invalid_argument(
                    "verify_against_evidence_conservative: fractions in [0, 1]");
            }
        }
    }
    return verify_impl(problem, allocation, evidence, confidence, &fraction_upper);
}

namespace {

VerificationReport verify_impl(const AllocationProblem& problem,
                               const Allocation& allocation,
                               const std::vector<TypeEvidence>& evidence,
                               double confidence,
                               const std::vector<std::vector<double>>* fraction_upper) {
    const std::size_t n = problem.types().size();
    if (allocation.budgets.size() != n) {
        throw std::invalid_argument("verify_against_evidence: budget/type mismatch");
    }
    if (evidence.size() != n) {
        throw std::invalid_argument(
            "verify_against_evidence: exactly one evidence entry per incident type");
    }
    if (confidence <= 0.0 || confidence >= 1.0) {
        throw std::invalid_argument("verify_against_evidence: confidence in (0, 1)");
    }

    // Match evidence to types by id.
    std::vector<const TypeEvidence*> by_type(n, nullptr);
    for (const auto& e : evidence) {
        const auto idx = problem.types().index_of(e.incident_type_id);
        if (!idx) {
            throw std::invalid_argument("verify_against_evidence: unknown incident type " +
                                        e.incident_type_id);
        }
        if (by_type[*idx] != nullptr) {
            throw std::invalid_argument("verify_against_evidence: duplicate evidence for " +
                                        e.incident_type_id);
        }
        by_type[*idx] = &e;
    }

    VerificationReport report;
    report.confidence = confidence;

    std::vector<double> point(n, 0.0), upper(n, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
        const TypeEvidence& e = *by_type[k];
        if (e.exposure.hours() <= 0.0) {
            throw std::invalid_argument("verify_against_evidence: exposure must be > 0 (" +
                                        e.incident_type_id + ")");
        }
        const stats::RateObservation obs{e.events, e.exposure.hours()};
        point[k] = stats::rate_mle(obs);
        upper[k] = stats::rate_upper_bound(obs, confidence);

        GoalVerification g;
        g.incident_type_id = e.incident_type_id;
        g.budget = allocation.budgets[k];
        g.point_rate = Frequency::per_hour(point[k]);
        g.upper_rate = Frequency::per_hour(upper[k]);
        g.verdict = judge(point[k], upper[k], g.budget.per_hour_value());
        report.goals.push_back(std::move(g));
    }

    for (std::size_t j = 0; j < problem.norm().size(); ++j) {
        ClassVerification c;
        c.class_id = problem.norm().classes().at(j).id;
        c.limit = problem.norm().limit(j);
        double p = 0.0, u = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            const double frac = problem.matrix().fraction(j, k);
            const double frac_up =
                fraction_upper != nullptr ? (*fraction_upper)[j][k] : frac;
            p += frac * point[k];
            u += frac_up * upper[k];
        }
        c.point_usage = Frequency::per_hour(p);
        c.upper_usage = Frequency::per_hour(u);
        c.verdict = judge(p, u, c.limit.per_hour_value());
        report.classes.push_back(std::move(c));
    }
    return report;
}

}  // namespace

ExposureHours exposure_to_demonstrate(Frequency budget, double confidence) {
    return ExposureHours(
        stats::exposure_needed_for_zero_events(budget.per_hour_value(), confidence));
}

}  // namespace qrn
