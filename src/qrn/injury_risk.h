// Synthetic injury-risk model: impact speed -> consequence-class fractions.
//
// The paper requires that each incident type's contribution to every
// consequence class "must be well substantiated; however this is a topic
// where much data and domain knowledge is available, e.g. from research and
// national traffic analysis databases" (Sec. III-B). We do not have those
// proprietary databases, so this module substitutes a parametric model with
// the published *shape* of injury-risk curves: the probability of
// exceeding a given injury severity grows logistically with impact speed,
// with VRUs far more fragile than car occupants (risk "rises quickly" above
// ~10 km/h for VRUs, the paper's own banding rationale). All numbers are
// illustrative, exactly as the paper's footnote 3 prescribes.
#pragma once

#include <array>
#include <cstddef>

#include "qrn/incident.h"

namespace qrn {

/// Outcome severity grades aligned with the paper's safety classes
/// (vS1..vS3) plus the below-injury grades that map to quality classes.
enum class InjuryGrade : std::uint8_t {
    None,             ///< No consequence beyond the incident itself.
    MaterialDamage,   ///< Bodywork damage only (quality class vQ3).
    LightModerate,    ///< vS1.
    Severe,           ///< vS2.
    LifeThreatening,  ///< vS3.
};

inline constexpr std::size_t kInjuryGradeCount = 5;

/// Probability distribution over injury grades for one collision.
struct InjuryOutcome {
    std::array<double, kInjuryGradeCount> probability{};  ///< Sums to 1.

    [[nodiscard]] double at(InjuryGrade grade) const {
        return probability[static_cast<std::size_t>(grade)];
    }
};

/// Logistic curve parameters for one counterparty category.
struct FragilityCurve {
    /// Speed (km/h) at which P(injury >= light) = 0.5.
    double light_midpoint_kmh = 30.0;
    /// Speed at which P(injury >= severe) = 0.5.
    double severe_midpoint_kmh = 55.0;
    /// Speed at which P(injury >= life-threatening) = 0.5.
    double fatal_midpoint_kmh = 80.0;
    /// Logistic steepness (1/km/h); larger = sharper transition.
    double steepness = 0.12;
};

/// Impact-speed -> injury-grade model per counterparty type.
class InjuryRiskModel {
public:
    /// Default model: VRU and Animal midpoints far below Car/Truck ones;
    /// StaticObject/Other between. See the class comment for provenance.
    InjuryRiskModel();

    /// Overrides the curve for one counterparty. Midpoints must be ordered
    /// light < severe < fatal and steepness > 0 (checked).
    void set_curve(ActorType counterparty, const FragilityCurve& curve);

    [[nodiscard]] const FragilityCurve& curve(ActorType counterparty) const;

    /// P(injury grade >= `grade`) for a collision with the given
    /// counterparty at the given impact speed. Monotone in speed.
    [[nodiscard]] double exceedance(ActorType counterparty, InjuryGrade grade,
                                    double impact_speed_kmh) const;

    /// Full outcome distribution for one collision.
    [[nodiscard]] InjuryOutcome outcome(ActorType counterparty,
                                        double impact_speed_kmh) const;

    /// Expected outcome distribution for collisions uniformly distributed
    /// over an impact-speed band (numerical average over `steps` points).
    /// This is how contribution fractions for an impact-speed-band incident
    /// type are derived.
    [[nodiscard]] InjuryOutcome band_average(ActorType counterparty, double lower_kmh,
                                             double upper_kmh,
                                             std::size_t steps = 64) const;

private:
    std::array<FragilityCurve, kActorTypeCount> curves_{};
};

}  // namespace qrn
