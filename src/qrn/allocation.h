// Frequency-budget allocation: turning a risk norm into per-incident-type
// budgets.
//
// Sec. III-B frames the determination of incident-type integrity attributes
// as "an allocation process, where we must make sure that the budget we set
// on each I must be such that the total allowed frequency is fulfilled for
// all v" (Eq. 1). The same section adds an ethical constraint: it is not
// acceptable to concentrate a whole consequence-class budget (e.g. all
// fatalities) on one incident type just because it is hard to design for.
//
// This module provides the allocation problem, the feasibility check, and
// four solvers representing different engineering policies:
//  - Proportional: scale caller-given weights to the binding class limit.
//  - InverseCost: weight each type by the inverse of its normalised budget
//    cost, equalising how much of the norm each type consumes.
//  - WaterFilling: grow all budgets uniformly, freezing types as the
//    classes they feed saturate; maximises the minimum budget.
//  - Tightening: start from demanded frequencies (what a candidate design
//    achieves) and scale down contributors of violated classes - the
//    paper's "the budgets of some of the contributing incidents must be
//    reduced" iteration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "qrn/contribution.h"
#include "qrn/frequency.h"
#include "qrn/incident_type.h"
#include "qrn/risk_norm.h"

namespace qrn {

/// Optional fairness cap: no incident type may account for more than
/// `max_share` of any consequence-class budget it contributes to.
struct EthicalConstraint {
    double max_share = 1.0;  ///< In (0, 1]; 1 disables the cap.
};

/// The allocation problem: norm + types + contribution structure + policy
/// inputs. Owns copies so an allocation remains valid independently of the
/// objects it was built from.
class AllocationProblem {
public:
    /// Requires matrix shape == (norm.size() x types.size()); weights, if
    /// given, must be positive and one per type.
    AllocationProblem(RiskNorm norm, IncidentTypeSet types, ContributionMatrix matrix,
                      std::vector<double> weights = {},
                      EthicalConstraint ethics = EthicalConstraint{});

    [[nodiscard]] const RiskNorm& norm() const noexcept { return norm_; }
    [[nodiscard]] const IncidentTypeSet& types() const noexcept { return types_; }
    [[nodiscard]] const ContributionMatrix& matrix() const noexcept { return matrix_; }
    [[nodiscard]] const std::vector<double>& weights() const noexcept { return weights_; }
    [[nodiscard]] const EthicalConstraint& ethics() const noexcept { return ethics_; }

private:
    RiskNorm norm_;
    IncidentTypeSet types_;
    ContributionMatrix matrix_;
    std::vector<double> weights_;
    EthicalConstraint ethics_;
};

/// Per-consequence-class usage of an allocation.
struct ClassUsage {
    std::string class_id;
    Frequency limit;       ///< f_v^(acceptable).
    Frequency used;        ///< Sum of contributions at the allocated budgets.
    double utilization = 0.0;  ///< used / limit.
};

/// The result of an allocation: one frequency budget per incident type.
struct Allocation {
    std::vector<Frequency> budgets;    ///< f_I per incident type (same order).
    std::vector<ClassUsage> usage;     ///< Per consequence class.
    std::string solver;                ///< Which policy produced it.

    /// Smallest per-class relative headroom (1 - utilization); negative
    /// means Eq. 1 is violated.
    [[nodiscard]] double min_headroom() const noexcept;
};

/// Evaluates Eq. 1 for arbitrary budgets (not necessarily from a solver):
/// returns per-class usage rows.
[[nodiscard]] std::vector<ClassUsage> evaluate_usage(const AllocationProblem& problem,
                                                     const std::vector<Frequency>& budgets);

/// True iff all classes satisfy Eq. 1 (within floating tolerance) and, when
/// an ethical cap is set, no (class, type) share exceeds it.
[[nodiscard]] bool satisfies_norm(const AllocationProblem& problem,
                                  const std::vector<Frequency>& budgets);

/// Proportional allocator: budgets = s * w, with the largest s satisfying
/// all class limits and the ethical cap. Throws if some type has zero
/// contribution everywhere and unbounded budget would result; such types
/// receive the largest finite budget implied by the ethical cap, or an
/// explicit `free_type_budget` fallback.
[[nodiscard]] Allocation allocate_proportional(
    const AllocationProblem& problem,
    std::optional<Frequency> free_type_budget = std::nullopt);

/// Inverse-cost allocator: weight_k = 1 / sum_j (c[j][k] / limit_j), then
/// proportional scaling. Types that are expensive for the norm get smaller
/// budgets, equalising per-type consumption of the norm.
[[nodiscard]] Allocation allocate_inverse_cost(
    const AllocationProblem& problem,
    std::optional<Frequency> free_type_budget = std::nullopt);

/// Water-filling allocator: all budgets grow at the weight-proportional
/// rate; when a class saturates, every type feeding it freezes; repeats
/// until all types are frozen or free types hit the fallback cap.
[[nodiscard]] Allocation allocate_water_filling(
    const AllocationProblem& problem,
    std::optional<Frequency> free_type_budget = std::nullopt);

/// Tightening allocator: starts from `demands` (one per type) and, while
/// any class is over budget or any ethical share is exceeded, scales down
/// all types contributing to the worst-violated class by a common factor.
/// Terminates because every step strictly reduces the violated usage.
[[nodiscard]] Allocation allocate_tightening(const AllocationProblem& problem,
                                             const std::vector<Frequency>& demands);

}  // namespace qrn
