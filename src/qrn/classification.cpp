#include "qrn/classification.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "exec/parallel.h"
#include "qrn/incident_type.h"

namespace qrn {

namespace {

/// The non-ego counterparty of an ego-involved incident.
ActorType counterparty(const Incident& incident) {
    return incident.first == ActorType::EgoVehicle ? incident.second : incident.first;
}

bool is_road_user(ActorType type) {
    return type == ActorType::Car || type == ActorType::Truck || type == ActorType::Vru;
}

}  // namespace

ClassificationNode::ClassificationNode(std::string name, IncidentPredicate accepts)
    : name_(std::move(name)), accepts_(std::move(accepts)) {
    if (name_.empty()) {
        throw std::invalid_argument("ClassificationNode: name must be non-empty");
    }
    if (!accepts_) {
        throw std::invalid_argument("ClassificationNode: predicate must be callable");
    }
}

ClassificationNode& ClassificationNode::add_child(std::string name,
                                                  IncidentPredicate accepts) {
    children_.push_back(
        std::make_unique<ClassificationNode>(std::move(name), std::move(accepts)));
    return *children_.back();
}

std::string ClassificationPath::joined(const std::string& sep) const {
    std::string out;
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (i > 0) out += sep;
        out += path[i];
    }
    return out;
}

ClassificationTree::ClassificationTree(std::unique_ptr<ClassificationNode> root)
    : root_(std::move(root)) {
    if (!root_) throw std::invalid_argument("ClassificationTree: root must be non-null");
}

ClassificationPath ClassificationTree::classify(const Incident& incident) const {
    validate(incident);
    if (!root_->accepts(incident)) {
        throw std::logic_error("ClassificationTree: root rejected incident " +
                               describe(incident));
    }
    ClassificationPath out;
    const ClassificationNode* node = root_.get();
    while (!node->is_leaf()) {
        const ClassificationNode* chosen = nullptr;
        for (const auto& child : node->children()) {
            if (!child->accepts(incident)) continue;
            if (chosen != nullptr) {
                throw std::logic_error("ClassificationTree: overlap at '" + node->name() +
                                       "' between '" + chosen->name() + "' and '" +
                                       child->name() + "' for " + describe(incident));
            }
            chosen = child.get();
        }
        if (chosen == nullptr) {
            throw std::logic_error("ClassificationTree: gap at '" + node->name() +
                                   "' for " + describe(incident));
        }
        out.path.push_back(chosen->name());
        node = chosen;
    }
    return out;
}

MeceReport ClassificationTree::certify_mece(
    std::size_t samples, const std::function<Incident(std::size_t)>& next_incident,
    std::size_t max_violations, unsigned jobs) const {
    // Each chunk collects up to max_violations defects over its own sample
    // range; concatenating the partials in chunk order and truncating
    // yields the first max_violations defects in sample order - the same
    // list the serial scan produces, independent of the chunking.
    auto partials = exec::parallel_chunks<std::vector<MeceViolation>>(
        jobs, samples, [&](const exec::ChunkRange& chunk) {
            std::vector<MeceViolation> violations;
            for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                const Incident incident = next_incident(i);
                validate(incident);
                // Walk the tree counting accepting children at each level
                // instead of calling classify(), so one sample can surface
                // multiple defects.
                const ClassificationNode* node = root_.get();
                if (!node->accepts(incident)) {
                    violations.push_back({node->name(), 0, describe(incident)});
                }
                while (!node->is_leaf()) {
                    const ClassificationNode* chosen = nullptr;
                    std::size_t accepting = 0;
                    for (const auto& child : node->children()) {
                        if (child->accepts(incident)) {
                            ++accepting;
                            chosen = child.get();
                        }
                    }
                    if (accepting != 1) {
                        violations.push_back({node->name(), accepting, describe(incident)});
                        break;
                    }
                    node = chosen;
                }
                if (violations.size() >= max_violations) break;
            }
            return violations;
        });
    MeceReport report;
    report.samples = samples;
    for (auto& part : partials) {
        for (auto& violation : part) {
            if (report.violations.size() >= max_violations) break;
            report.violations.push_back(std::move(violation));
        }
    }
    return report;
}

std::vector<ClassificationPath> ClassificationTree::leaves() const {
    std::vector<ClassificationPath> out;
    std::vector<std::string> stack;
    const std::function<void(const ClassificationNode&)> visit =
        [&](const ClassificationNode& node) {
            stack.push_back(node.name());
            if (node.is_leaf()) {
                ClassificationPath p;
                p.path.assign(stack.begin() + 1, stack.end());  // skip root
                if (p.path.empty()) p.path.push_back(node.name());
                out.push_back(std::move(p));
            } else {
                for (const auto& child : node.children()) visit(*child);
            }
            stack.pop_back();
        };
    visit(*root_);
    return out;
}

std::string ClassificationTree::render() const {
    std::ostringstream os;
    const std::function<void(const ClassificationNode&, int)> visit =
        [&](const ClassificationNode& node, int depth) {
            os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << node.name()
               << '\n';
            for (const auto& child : node.children()) visit(*child, depth + 1);
        };
    visit(*root_, 0);
    return os.str();
}

std::vector<std::string> TypeCoverageReport::gaps(double min_fraction) const {
    std::vector<std::string> out;
    for (const auto& leaf : leaves) {
        if (leaf.fraction() < min_fraction) out.push_back(leaf.leaf);
    }
    return out;
}

TypeCoverageReport check_type_coverage(
    const ClassificationTree& tree, const IncidentTypeSet& types, std::size_t samples,
    const std::function<Incident(std::size_t)>& next_incident, unsigned jobs) {
    if (samples == 0) {
        throw std::invalid_argument("check_type_coverage: samples must be >= 1");
    }
    // Per-chunk tallies merge by summing counters, which is independent of
    // the chunking; the map keeps leaves sorted by name either way.
    using LeafMap = std::map<std::string, LeafCoverage>;
    auto partials = exec::parallel_chunks<LeafMap>(
        jobs, samples, [&](const exec::ChunkRange& chunk) {
            LeafMap local;
            for (std::size_t n = chunk.begin; n < chunk.end; ++n) {
                const Incident incident = next_incident(n);
                const auto leaf = tree.classify(incident).leaf();
                auto& entry = local[leaf];
                entry.leaf = leaf;
                ++entry.sampled;
                if (types.classify(incident).has_value()) ++entry.covered;
            }
            return local;
        });
    std::map<std::string, LeafCoverage> by_leaf;
    for (auto& part : partials) {
        for (auto& [name, coverage] : part) {
            auto& entry = by_leaf[name];
            entry.leaf = name;
            entry.sampled += coverage.sampled;
            entry.covered += coverage.covered;
        }
    }
    TypeCoverageReport report;
    report.samples = samples;
    report.leaves.reserve(by_leaf.size());
    for (auto& [name, coverage] : by_leaf) report.leaves.push_back(std::move(coverage));
    return report;
}

ClassificationTree ClassificationTree::paper_example() {
    auto root = std::make_unique<ClassificationNode>(
        "Incident classification", [](const Incident&) { return true; });

    // ----- Top half of Fig. 4: ego vehicle involved in an incident.
    auto& ego = root->add_child("Ego vehicle involved in an incident",
                                [](const Incident& i) { return i.involves_ego(); });

    auto& ego_ru = ego.add_child("Ego<->Road User", [](const Incident& i) {
        return is_road_user(counterparty(i));
    });
    ego_ru.add_child("Ego<->Car",
                     [](const Incident& i) { return counterparty(i) == ActorType::Car; });
    ego_ru.add_child("Ego<->Truck", [](const Incident& i) {
        return counterparty(i) == ActorType::Truck;
    });
    ego_ru.add_child("Ego<->VRU",
                     [](const Incident& i) { return counterparty(i) == ActorType::Vru; });

    auto& ego_nh = ego.add_child("Ego<->Non-human", [](const Incident& i) {
        return !is_road_user(counterparty(i));
    });
    ego_nh.add_child("Ego<->Elk", [](const Incident& i) {
        return counterparty(i) == ActorType::Animal;
    });
    ego_nh.add_child("Ego<->Stat. Obj.", [](const Incident& i) {
        return counterparty(i) == ActorType::StaticObject;
    });
    ego_nh.add_child("Ego<->Other", [](const Incident& i) {
        return counterparty(i) == ActorType::OtherActor;
    });

    // ----- Bottom half of Fig. 4: ego a causing factor in an incident
    // involving other road users (induced incidents).
    auto& induced =
        root->add_child("Ego vehicle a causing factor in an incident involving "
                        "other road users",
                        [](const Incident& i) { return !i.involves_ego(); });

    const auto pair_is = [](ActorType a, ActorType b) {
        return [a, b](const Incident& i) {
            return (i.first == a && i.second == b) || (i.first == b && i.second == a);
        };
    };
    auto& car_ru = induced.add_child("Car<->Road User", [](const Incident& i) {
        return (i.first == ActorType::Car || i.second == ActorType::Car) &&
               is_road_user(i.first) && is_road_user(i.second);
    });
    car_ru.add_child("Car<->VRU", pair_is(ActorType::Car, ActorType::Vru));
    car_ru.add_child("Car<->Truck", pair_is(ActorType::Car, ActorType::Truck));
    car_ru.add_child("Car<->Car", pair_is(ActorType::Car, ActorType::Car));

    induced.add_child("Car<->Non-human", [](const Incident& i) {
        return (i.first == ActorType::Car || i.second == ActorType::Car) &&
               !(is_road_user(i.first) && is_road_user(i.second));
    });
    induced.add_child("Truck<->Road User", [](const Incident& i) {
        const bool has_car = i.first == ActorType::Car || i.second == ActorType::Car;
        const bool has_truck = i.first == ActorType::Truck || i.second == ActorType::Truck;
        return has_truck && !has_car && is_road_user(i.first) && is_road_user(i.second);
    });
    induced.add_child("Other<->Other", [](const Incident& i) {
        const bool has_car = i.first == ActorType::Car || i.second == ActorType::Car;
        const bool has_truck = i.first == ActorType::Truck || i.second == ActorType::Truck;
        if (has_car) return false;
        if (has_truck) return !(is_road_user(i.first) && is_road_user(i.second));
        return true;
    });

    return ClassificationTree(std::move(root));
}

}  // namespace qrn
