// Verification of the quantitative risk norm against observed evidence.
//
// Eq. 1 of the paper:  sum_k f_{v_j, I_k} <= f_{v_j}^{acceptable}  for all j.
//
// At design time the check runs against allocated budgets (see
// allocation.h). This module runs it against *evidence*: incident counts
// over operational exposure, per incident type. Because a safety argument
// cannot rest on point estimates from small counts, each per-type rate is
// lifted to a one-sided upper confidence bound (exact Poisson, see
// stats/rate_estimation.h) before being pushed through the contribution
// matrix; a class passes with statistical confidence only when even the
// upper-bounded usage stays within its limit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qrn/allocation.h"
#include "qrn/frequency.h"
#include "stats/rate_estimation.h"

namespace qrn {

/// Observed evidence for one incident type: events over exposure.
struct TypeEvidence {
    std::string incident_type_id;
    std::uint64_t events = 0;
    ExposureHours exposure;
};

/// Verdict for one consequence class.
enum class ClassVerdict {
    Fulfilled,       ///< Upper-bounded usage within the limit.
    PointFulfilled,  ///< Point estimate within the limit but the upper
                     ///< confidence bound exceeds it: more exposure needed.
    Violated,        ///< Even the point estimate exceeds the limit.
};

[[nodiscard]] std::string_view to_string(ClassVerdict verdict) noexcept;

/// Per-class verification row.
struct ClassVerification {
    std::string class_id;
    Frequency limit;
    Frequency point_usage;   ///< Sum of MLE rates through the matrix.
    Frequency upper_usage;   ///< Sum of upper confidence bounds.
    ClassVerdict verdict = ClassVerdict::Violated;
};

/// Per-incident-type verification row (against the allocated SG budget).
struct GoalVerification {
    std::string incident_type_id;
    Frequency budget;        ///< Allocated f_I (the SG integrity attribute).
    Frequency point_rate;    ///< Observed MLE rate.
    Frequency upper_rate;    ///< One-sided upper confidence bound.
    ClassVerdict verdict = ClassVerdict::Violated;
};

/// Full verification report.
struct VerificationReport {
    double confidence = 0.0;
    std::vector<GoalVerification> goals;
    std::vector<ClassVerification> classes;

    /// True iff every class verdict is Fulfilled.
    [[nodiscard]] bool norm_fulfilled() const noexcept;
    /// True iff every class verdict is at least PointFulfilled.
    [[nodiscard]] bool norm_point_fulfilled() const noexcept;
    /// True iff every per-goal verdict is Fulfilled.
    [[nodiscard]] bool goals_fulfilled() const noexcept;
};

/// Runs Eq. 1 against evidence.
///
/// `evidence` must contain exactly one entry per incident type of the
/// problem (matched by id; order free). `allocation` provides the SG
/// budgets for the per-goal rows. `confidence` is the one-sided level used
/// for the upper bounds, e.g. 0.95.
[[nodiscard]] VerificationReport verify_against_evidence(
    const AllocationProblem& problem, const Allocation& allocation,
    const std::vector<TypeEvidence>& evidence, double confidence);

/// Fully conservative variant: per-class *upper* usage is computed with
/// caller-supplied per-cell contribution-fraction upper bounds (shape
/// classes x types; e.g. ContributionCounts::upper_bounds from empirically
/// estimated fractions) instead of the problem's point fractions, so both
/// statistical uncertainties - the rates and the consequence splits - press
/// in the unfavourable direction. Point usage still uses the problem's
/// matrix. Per-goal rows are unaffected (they do not involve fractions).
[[nodiscard]] VerificationReport verify_against_evidence_conservative(
    const AllocationProblem& problem, const Allocation& allocation,
    const std::vector<TypeEvidence>& evidence, double confidence,
    const std::vector<std::vector<double>>& fraction_upper);

/// Convenience: exposure (hours) required to statistically demonstrate a
/// budget assuming zero observed events of the type (the dominant
/// verification-effort driver for severe classes).
[[nodiscard]] ExposureHours exposure_to_demonstrate(Frequency budget, double confidence);

}  // namespace qrn
