// Quantitative framework vs ASIL decomposition/inheritance (Sec. V).
//
// Two executable arguments from the paper:
//
// 1. Decomposition: redundant channels whose individual rates "in
//    traditionally ISO 26262 only would be in the QM range" can reach a
//    vehicle-level budget far below any single channel's rate. The
//    qualitative rules cannot credit this; the quantitative rules can
//    ("being able to take into account redundancy contributions of just a
//    few orders of magnitudes").
//
// 2. Inheritance: a goal refined into N elements, each inheriting the
//    goal's ASIL, still claims the goal's integrity even though the
//    combined violation rate grows linearly in N - the implicit
//    limited-complexity assumption an ADS violates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hara/asil.h"
#include "quant/architecture.h"

namespace qrn::quant {

/// Maps a violation frequency to the ASIL band whose indicative frequency
/// it meets (see hara::indicative_frequency_per_hour): rate <= 1e-8 -> D,
/// <= 1e-7 -> B (C shares the band; the stricter claim B is returned as the
/// canonical label), <= 1e-6 -> A, else QM.
[[nodiscard]] hara::Asil asil_band_for_rate(Frequency rate) noexcept;

/// One row of the decomposition comparison (SEC5A bench).
struct DecompositionComparison {
    std::string architecture;    ///< Description, e.g. "2x redundant sensing".
    Frequency channel_rate;      ///< Per-channel violation rate.
    hara::Asil channel_band;     ///< ASIL band of one channel alone.
    Frequency combined_rate;     ///< Quantitative rate of the redundant set.
    hara::Asil combined_band;    ///< ASIL band the combination achieves.
    bool asil_rules_applicable;  ///< Whether ISO 26262-9 has a decomposition
                                 ///< scheme expressing this structure.
};

/// Evaluates 1-of-n redundancy (all channels must fail to violate) of
/// identical channels at `channel_rate` with window `tau_hours`, for each n
/// in `copies`. `target` is the vehicle-level budget the combination must
/// meet; rows report whether the classical rules could have credited it.
[[nodiscard]] std::vector<DecompositionComparison> compare_redundancy(
    Frequency channel_rate, double tau_hours, const std::vector<std::size_t>& copies,
    Frequency target);

/// One row of the inheritance comparison (SEC5B bench).
struct InheritanceComparison {
    std::size_t element_count = 0;
    hara::Asil claimed;             ///< ASIL each element inherits (= goal's).
    Frequency element_rate;         ///< Indicative rate of the claimed ASIL.
    Frequency combined_rate;        ///< N elements in series.
    Frequency goal_budget;          ///< Indicative rate of the goal's ASIL.
    double overrun = 0.0;           ///< combined / goal budget (1 = exactly met).
    Frequency per_element_budget;   ///< Sound equal split of the goal budget.
};

/// For a goal at `goal_asil` refined into each count in `element_counts`,
/// contrasts inheritance (every element at the goal's indicative rate) with
/// the quantitative equal split.
[[nodiscard]] std::vector<InheritanceComparison> compare_inheritance(
    hara::Asil goal_asil, const std::vector<std::size_t>& element_counts);

}  // namespace qrn::quant
