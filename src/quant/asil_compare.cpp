#include "quant/asil_compare.h"

namespace qrn::quant {

hara::Asil asil_band_for_rate(Frequency rate) noexcept {
    const double r = rate.per_hour_value();
    if (r <= 1e-8) return hara::Asil::D;
    if (r <= 1e-7) return hara::Asil::B;
    if (r <= 1e-6) return hara::Asil::A;
    return hara::Asil::QM;
}

std::vector<DecompositionComparison> compare_redundancy(
    Frequency channel_rate, double tau_hours, const std::vector<std::size_t>& copies,
    Frequency target) {
    std::vector<DecompositionComparison> out;
    out.reserve(copies.size());
    for (const std::size_t n : copies) {
        DecompositionComparison row;
        row.channel_rate = channel_rate;
        row.channel_band = asil_band_for_rate(channel_rate);
        if (n == 1) {
            row.architecture = "single channel";
            row.combined_rate = channel_rate;
        } else {
            row.architecture = std::to_string(n) + "x redundant (1-of-" +
                               std::to_string(n) + " sufficient)";
            // Violation requires all n failed: k=1 healthy needed.
            row.combined_rate = k_of_n_rate(1, n, channel_rate, tau_hours);
        }
        row.combined_band = asil_band_for_rate(row.combined_rate);
        // ISO 26262-9 decomposition only defines two-way schemes between
        // ASIL-rated requirements; it has no scheme that combines QM-rated
        // channels into a higher integrity, so the classical rules are
        // applicable only when each channel already carries an ASIL and
        // n == 2 with a permitted pair for the target's band.
        const hara::Asil target_band = asil_band_for_rate(target);
        row.asil_rules_applicable =
            n == 2 && row.channel_band != hara::Asil::QM &&
            hara::is_permitted_decomposition(target_band, row.channel_band,
                                             row.channel_band);
        out.push_back(row);
    }
    return out;
}

std::vector<InheritanceComparison> compare_inheritance(
    hara::Asil goal_asil, const std::vector<std::size_t>& element_counts) {
    std::vector<InheritanceComparison> out;
    out.reserve(element_counts.size());
    const Frequency goal_budget =
        Frequency::per_hour(hara::indicative_frequency_per_hour(goal_asil));
    for (const std::size_t n : element_counts) {
        InheritanceComparison row;
        row.element_count = n;
        row.claimed = hara::inherit(goal_asil);
        row.element_rate =
            Frequency::per_hour(hara::indicative_frequency_per_hour(row.claimed));
        row.combined_rate = row.element_rate * static_cast<double>(n);
        row.goal_budget = goal_budget;
        row.overrun = row.combined_rate.ratio(goal_budget);
        row.per_element_budget = equal_series_split(goal_budget, n);
        out.push_back(row);
    }
    return out;
}

}  // namespace qrn::quant
