// Architecture DAGs: evaluating and refining violation budgets over a
// redundant element structure.
//
// Sec. V's running example: "a common problem in ADS is to determine a
// drivable area in front of ego vehicle free from VRUs. A safety
// requirement on the aggregated block of sensing and prediction could then
// be not to overestimate such an area, with a very tough integrity
// attribute. ... When decomposing this in several redundant sensing and
// prediction blocks, these can each get frequency attributes of a value
// that in traditionally ISO 26262 only would be in the QM range."
//
// The architecture is a tree of gates over leaf elements:
//  - OR gate: the requirement is violated if any child is violated (series);
//  - AND gate: violated only when all children are violated within a
//    common exposure window (redundancy);
//  - KOFN gate: violated when fewer than k of the n children are healthy.
// Leaves carry their own violation rate and cause category.
#pragma once

#include <memory>
#include <utility>
#include <string>
#include <vector>

#include "quant/failure_rate.h"

namespace qrn::quant {

/// Gate kinds for internal nodes.
enum class GateKind : std::uint8_t { Or, And, KofN };

/// A node in the architecture tree. Build with the static factories.
class ArchNode {
    /// Passkey: only the static factories can name this type, so only they
    /// can construct nodes - but through std::make_unique, not a naked new.
    struct Passkey {
        explicit Passkey() = default;
    };

public:
    explicit ArchNode(Passkey) noexcept {}

    /// Leaf element with its violation rate and cause.
    [[nodiscard]] static std::unique_ptr<ArchNode> element(
        std::string name, Frequency rate,
        CauseCategory cause = CauseCategory::SystematicDesign);

    /// Leaf element whose rate is only known as an interval [lower, upper]
    /// (e.g. a Garwood confidence interval from test evidence). evaluate()
    /// uses the upper end (conservative); evaluate_bounds() propagates both
    /// ends. Requires lower <= upper.
    [[nodiscard]] static std::unique_ptr<ArchNode> element_with_interval(
        std::string name, Frequency lower, Frequency upper,
        CauseCategory cause = CauseCategory::SystematicDesign);

    /// OR gate over children (at least one child).
    [[nodiscard]] static std::unique_ptr<ArchNode> any_of(
        std::string name, std::vector<std::unique_ptr<ArchNode>> children);

    /// AND gate (full redundancy) with common exposure window tau (hours).
    [[nodiscard]] static std::unique_ptr<ArchNode> all_of(
        std::string name, std::vector<std::unique_ptr<ArchNode>> children,
        double tau_hours);

    /// k-of-n gate over n identical copies of `child_rate` leaves. Models
    /// homogeneous redundancy without materialising n children.
    [[nodiscard]] static std::unique_ptr<ArchNode> k_of_n(std::string name, std::size_t k,
                                                          std::size_t n,
                                                          Frequency child_rate,
                                                          double tau_hours);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] bool is_leaf() const noexcept {
        return children_.empty() && kind_ == GateKind::Or && !synthetic_kofn_;
    }

    /// Child gates/elements (empty for leaves and synthetic k-of-n nodes).
    [[nodiscard]] const std::vector<std::unique_ptr<ArchNode>>& children()
        const noexcept {
        return children_;
    }

    /// The gate kind (Or for leaves by convention; KofN for synthetic
    /// k-of-n nodes).
    [[nodiscard]] GateKind kind() const noexcept { return kind_; }
    [[nodiscard]] bool is_kofn() const noexcept { return synthetic_kofn_; }
    /// k-of-n only: number of copies n.
    [[nodiscard]] std::size_t kofn_copies() const noexcept { return n_; }
    /// k-of-n only: simultaneous channel failures that violate (n - k + 1).
    [[nodiscard]] std::size_t kofn_failures_needed() const noexcept {
        return n_ - k_ + 1;
    }

    /// Violation rate of the subtree (small-rate approximations per gate).
    /// Interval-valued leaves contribute their upper (conservative) end.
    [[nodiscard]] Frequency evaluate() const;

    /// Lower/upper bounds of the top rate under the leaves' rate
    /// intervals. Every gate is monotone in each input rate, so interval
    /// arithmetic is exact: series adds endpoints, redundancy multiplies
    /// them. Point-valued leaves contribute a degenerate interval.
    [[nodiscard]] std::pair<Frequency, Frequency> evaluate_bounds() const;

    /// All leaf elements in the subtree (name + rate + cause), for budget
    /// accounting. Synthetic k-of-n children are expanded logically.
    [[nodiscard]] std::vector<CauseContribution> leaf_contributions() const;

    /// Number of leaf elements (k-of-n counts n).
    [[nodiscard]] std::size_t leaf_count() const noexcept;

    /// Indented rendering of the architecture.
    [[nodiscard]] std::string render(int indent = 0) const;

    /// Top-event rate when one leaf's rate is scaled by `factor`; the leaf
    /// is addressed by pointer identity (use the entries of
    /// `leaf_elasticities` or walk `children()`); for synthetic k-of-n
    /// nodes the shared child rate is scaled. Unknown targets throw.
    [[nodiscard]] Frequency evaluate_with_scaled(const ArchNode* target,
                                                 double factor) const;

private:
    /// True if `target` is this node or inside this subtree.
    [[nodiscard]] bool contains(const ArchNode* target) const noexcept;

    std::string name_;
    GateKind kind_ = GateKind::Or;
    std::vector<std::unique_ptr<ArchNode>> children_;
    double tau_hours_ = 0.0;
    // Leaf payload. rate_ is the conservative (upper) value; rate_lower_
    // carries the optimistic end of an interval-valued leaf.
    Frequency rate_;
    Frequency rate_lower_;
    CauseCategory cause_ = CauseCategory::SystematicDesign;
    // Synthetic homogeneous k-of-n payload.
    bool synthetic_kofn_ = false;
    std::size_t k_ = 0;
    std::size_t n_ = 0;
};

/// Importance of one element for the top event.
struct LeafImportance {
    const ArchNode* leaf = nullptr;  ///< Leaf (or synthetic k-of-n) node.
    std::string name;
    CauseCategory cause = CauseCategory::SystematicDesign;
    Frequency rate;                  ///< The element's own rate.
    /// Elasticity: relative change of the top rate per relative change of
    /// this element's rate (d ln Top / d ln lambda). 1 for a pure series
    /// element; n for the shared channel of an all-must-fail n-redundancy.
    double elasticity = 0.0;
};

/// Ranks all leaves (and synthetic k-of-n blocks) of the tree by their
/// contribution share to the top rate: share_i = elasticity-weighted
/// fraction computed by finite differences. Sorted descending by
/// (elasticity * rate contribution). The tree must have a positive top rate.
[[nodiscard]] std::vector<LeafImportance> leaf_elasticities(const ArchNode& top);

/// A cut set: a set of leaf names whose joint failure violates the top
/// requirement. Names are sorted; synthetic k-of-n channels appear as
/// "name[i]" for the i-th of the n copies.
using CutSet = std::vector<std::string>;

/// The minimal cut sets of the tree (MOCUS-style expansion: OR = union,
/// AND = cross product, k-of-n = all combinations of n-k+1 channel
/// failures), with non-minimal supersets removed. Leaf names should be
/// unique for the result to be meaningful. Sorted by size, then
/// lexicographically - single-point-of-failure sets come first.
[[nodiscard]] std::vector<CutSet> minimal_cut_sets(const ArchNode& top);

/// Splits a top-level violation budget equally over `elements` series
/// elements: each receives budget / elements. This is the sound
/// quantitative counterpart of ASIL inheritance (which would give each
/// element the *full* goal integrity, Sec. V's third observation).
[[nodiscard]] Frequency equal_series_split(Frequency budget, std::size_t elements);

/// Budget each of two redundant (AND) channels may carry so that the pair
/// meets `budget` with window tau: lambda = sqrt(budget / (2 * tau)).
[[nodiscard]] Frequency symmetric_parallel_split(Frequency budget, double tau_hours);

}  // namespace qrn::quant
