#include "quant/architecture.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qrn::quant {

std::unique_ptr<ArchNode> ArchNode::element(std::string name, Frequency rate,
                                            CauseCategory cause) {
    if (name.empty()) throw std::invalid_argument("ArchNode::element: name required");
    auto node = std::make_unique<ArchNode>(Passkey{});
    node->name_ = std::move(name);
    node->rate_ = rate;
    node->rate_lower_ = rate;
    node->cause_ = cause;
    return node;
}

std::unique_ptr<ArchNode> ArchNode::element_with_interval(std::string name,
                                                          Frequency lower,
                                                          Frequency upper,
                                                          CauseCategory cause) {
    if (name.empty()) {
        throw std::invalid_argument("ArchNode::element_with_interval: name required");
    }
    if (lower > upper) {
        throw std::invalid_argument(
            "ArchNode::element_with_interval: requires lower <= upper");
    }
    auto node = std::make_unique<ArchNode>(Passkey{});
    node->name_ = std::move(name);
    node->rate_ = upper;
    node->rate_lower_ = lower;
    node->cause_ = cause;
    return node;
}

std::unique_ptr<ArchNode> ArchNode::any_of(std::string name,
                                           std::vector<std::unique_ptr<ArchNode>> children) {
    if (children.empty()) throw std::invalid_argument("ArchNode::any_of: needs children");
    auto node = std::make_unique<ArchNode>(Passkey{});
    node->name_ = std::move(name);
    node->kind_ = GateKind::Or;
    node->children_ = std::move(children);
    return node;
}

std::unique_ptr<ArchNode> ArchNode::all_of(std::string name,
                                           std::vector<std::unique_ptr<ArchNode>> children,
                                           double tau_hours) {
    if (children.size() < 2) {
        throw std::invalid_argument("ArchNode::all_of: redundancy needs >= 2 children");
    }
    if (!(tau_hours > 0.0)) throw std::invalid_argument("ArchNode::all_of: tau > 0");
    auto node = std::make_unique<ArchNode>(Passkey{});
    node->name_ = std::move(name);
    node->kind_ = GateKind::And;
    node->children_ = std::move(children);
    node->tau_hours_ = tau_hours;
    return node;
}

std::unique_ptr<ArchNode> ArchNode::k_of_n(std::string name, std::size_t k, std::size_t n,
                                           Frequency child_rate, double tau_hours) {
    if (k == 0 || k > n) throw std::invalid_argument("ArchNode::k_of_n: 1 <= k <= n");
    auto node = std::make_unique<ArchNode>(Passkey{});
    node->name_ = std::move(name);
    node->kind_ = GateKind::KofN;
    node->synthetic_kofn_ = true;
    node->k_ = k;
    node->n_ = n;
    node->rate_ = child_rate;
    node->rate_lower_ = child_rate;
    node->tau_hours_ = tau_hours;
    return node;
}

Frequency ArchNode::evaluate() const {
    if (synthetic_kofn_) return k_of_n_rate(k_, n_, rate_, tau_hours_);
    if (children_.empty()) return rate_;
    if (kind_ == GateKind::Or) {
        Frequency total;
        for (const auto& c : children_) total += c->evaluate();
        return total;
    }
    // AND gate: fold children pairwise through parallel_rate. For more than
    // two children the small-rate product with tau^(m-1) is applied
    // iteratively, which matches the leading-order term.
    Frequency acc = children_.front()->evaluate();
    for (std::size_t i = 1; i < children_.size(); ++i) {
        acc = parallel_rate(acc, children_[i]->evaluate(), tau_hours_);
    }
    return acc;
}

std::vector<CauseContribution> ArchNode::leaf_contributions() const {
    std::vector<CauseContribution> out;
    if (synthetic_kofn_) {
        out.insert(out.end(), n_, CauseContribution{cause_, rate_});
        return out;
    }
    if (children_.empty()) {
        out.push_back(CauseContribution{cause_, rate_});
        return out;
    }
    for (const auto& c : children_) {
        auto sub = c->leaf_contributions();
        out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
}

std::size_t ArchNode::leaf_count() const noexcept {
    if (synthetic_kofn_) return n_;
    if (children_.empty()) return 1;
    std::size_t n = 0;
    for (const auto& c : children_) n += c->leaf_count();
    return n;
}

std::string ArchNode::render(int indent) const {
    std::ostringstream os;
    os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
    if (synthetic_kofn_) {
        os << name_ << " [" << k_ << "-of-" << n_ << ", child " << rate_.to_string()
           << ", tau=" << tau_hours_ << "h] -> " << evaluate().to_string() << '\n';
        return os.str();
    }
    if (children_.empty()) {
        os << name_ << " [" << to_string(cause_) << ", " << rate_.to_string() << "]\n";
        return os.str();
    }
    os << name_ << " ["
       << (kind_ == GateKind::Or ? "OR" : "AND tau=" + std::to_string(tau_hours_) + "h")
       << "] -> " << evaluate().to_string() << '\n';
    for (const auto& c : children_) os << c->render(indent + 1);
    return os.str();
}

std::pair<Frequency, Frequency> ArchNode::evaluate_bounds() const {
    if (synthetic_kofn_) {
        return {k_of_n_rate(k_, n_, rate_lower_, tau_hours_),
                k_of_n_rate(k_, n_, rate_, tau_hours_)};
    }
    if (children_.empty()) return {rate_lower_, rate_};
    if (kind_ == GateKind::Or) {
        Frequency lo, hi;
        for (const auto& c : children_) {
            const auto [child_lo, child_hi] = c->evaluate_bounds();
            lo += child_lo;
            hi += child_hi;
        }
        return {lo, hi};
    }
    auto [lo, hi] = children_.front()->evaluate_bounds();
    for (std::size_t i = 1; i < children_.size(); ++i) {
        const auto [child_lo, child_hi] = children_[i]->evaluate_bounds();
        lo = parallel_rate(lo, child_lo, tau_hours_);
        hi = parallel_rate(hi, child_hi, tau_hours_);
    }
    return {lo, hi};
}

bool ArchNode::contains(const ArchNode* target) const noexcept {
    if (this == target) return true;
    for (const auto& c : children_) {
        if (c->contains(target)) return true;
    }
    return false;
}

Frequency ArchNode::evaluate_with_scaled(const ArchNode* target, double factor) const {
    if (target == nullptr || !contains(target)) {
        throw std::invalid_argument("evaluate_with_scaled: target not in this tree");
    }
    if (!(factor >= 0.0)) {
        throw std::invalid_argument("evaluate_with_scaled: factor must be >= 0");
    }
    if (this == target) {
        if (synthetic_kofn_) return k_of_n_rate(k_, n_, rate_ * factor, tau_hours_);
        if (children_.empty()) return rate_ * factor;
        // Scaling a whole gate: scale its evaluated rate (used recursively).
        return evaluate() * factor;
    }
    if (children_.empty()) return rate_;
    const auto child_rate = [&](const std::unique_ptr<ArchNode>& c) {
        return c->contains(target) ? c->evaluate_with_scaled(target, factor)
                                   : c->evaluate();
    };
    if (kind_ == GateKind::Or) {
        Frequency total;
        for (const auto& c : children_) total += child_rate(c);
        return total;
    }
    Frequency acc = child_rate(children_.front());
    for (std::size_t i = 1; i < children_.size(); ++i) {
        acc = parallel_rate(acc, child_rate(children_[i]), tau_hours_);
    }
    return acc;
}

std::vector<LeafImportance> leaf_elasticities(const ArchNode& top) {
    const double base = top.evaluate().per_hour_value();
    if (!(base > 0.0)) {
        throw std::invalid_argument("leaf_elasticities: top rate must be > 0");
    }
    // Collect leaf/synthetic nodes by walking the tree.
    std::vector<const ArchNode*> leaves;
    const std::function<void(const ArchNode&)> visit = [&](const ArchNode& node) {
        if (node.children().empty()) {
            leaves.push_back(&node);
            return;
        }
        for (const auto& c : node.children()) visit(*c);
    };
    visit(top);

    constexpr double kEps = 1e-4;
    std::vector<LeafImportance> out;
    out.reserve(leaves.size());
    for (const ArchNode* leaf : leaves) {
        LeafImportance imp;
        imp.leaf = leaf;
        imp.name = leaf->name();
        const auto contributions = leaf->leaf_contributions();
        imp.cause = contributions.front().cause;
        imp.rate = contributions.front().rate;
        const double up = top.evaluate_with_scaled(leaf, 1.0 + kEps).per_hour_value();
        imp.elasticity = (up - base) / (base * kEps);
        out.push_back(std::move(imp));
    }
    std::sort(out.begin(), out.end(), [](const LeafImportance& a, const LeafImportance& b) {
        return a.elasticity * a.rate.per_hour_value() >
               b.elasticity * b.rate.per_hour_value();
    });
    return out;
}

namespace {

std::vector<CutSet> cut_sets_of(const ArchNode& node) {
    if (node.is_kofn()) {
        // Violation requires any m = n - k + 1 channels down at once:
        // enumerate all combinations of m pseudo-leaves "name[i]".
        const std::size_t n = node.kofn_copies();
        const std::size_t m = node.kofn_failures_needed();
        std::vector<CutSet> out;
        std::vector<std::size_t> combo(m);
        const std::function<void(std::size_t, std::size_t)> choose =
            [&](std::size_t start, std::size_t depth) {
                if (depth == m) {
                    CutSet cut;
                    for (const std::size_t i : combo) {
                        cut.push_back(node.name() + "[" + std::to_string(i + 1) + "]");
                    }
                    out.push_back(std::move(cut));
                    return;
                }
                for (std::size_t i = start; i < n; ++i) {
                    combo[depth] = i;
                    choose(i + 1, depth + 1);
                }
            };
        choose(0, 0);
        return out;
    }
    if (node.children().empty()) return {{node.name()}};

    std::vector<std::vector<CutSet>> child_sets;
    child_sets.reserve(node.children().size());
    for (const auto& c : node.children()) child_sets.push_back(cut_sets_of(*c));
    if (node.kind() == GateKind::Or) {
        std::vector<CutSet> out;
        for (auto& sets : child_sets) {
            out.insert(out.end(), sets.begin(), sets.end());
        }
        return out;
    }
    // AND gate: cross product of the children's cut sets.
    std::vector<CutSet> out = child_sets.front();
    for (std::size_t i = 1; i < child_sets.size(); ++i) {
        std::vector<CutSet> next;
        for (const auto& a : out) {
            for (const auto& b : child_sets[i]) {
                CutSet merged = a;
                merged.insert(merged.end(), b.begin(), b.end());
                next.push_back(std::move(merged));
            }
        }
        out = std::move(next);
    }
    return out;
}

}  // namespace

std::vector<CutSet> minimal_cut_sets(const ArchNode& top) {
    auto sets = cut_sets_of(top);
    for (auto& cut : sets) {
        std::sort(cut.begin(), cut.end());
        cut.erase(std::unique(cut.begin(), cut.end()), cut.end());
    }
    // Keep only minimal sets: drop any set containing a kept smaller one.
    std::sort(sets.begin(), sets.end(), [](const CutSet& a, const CutSet& b) {
        if (a.size() != b.size()) return a.size() < b.size();
        return a < b;
    });
    std::vector<CutSet> minimal;
    for (const auto& candidate : sets) {
        bool dominated = false;
        for (const auto& kept : minimal) {
            dominated = std::includes(candidate.begin(), candidate.end(), kept.begin(),
                                      kept.end());
            if (dominated) break;
        }
        if (!dominated) minimal.push_back(candidate);
    }
    return minimal;
}

Frequency equal_series_split(Frequency budget, std::size_t elements) {
    if (elements == 0) throw std::invalid_argument("equal_series_split: elements >= 1");
    return budget * (1.0 / static_cast<double>(elements));
}

Frequency symmetric_parallel_split(Frequency budget, double tau_hours) {
    if (!(tau_hours > 0.0)) {
        throw std::invalid_argument("symmetric_parallel_split: tau > 0");
    }
    return Frequency::per_hour(
        std::sqrt(budget.per_hour_value() / (2.0 * tau_hours)));
}

}  // namespace qrn::quant
