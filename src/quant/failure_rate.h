// Failure-rate algebra for the quantitative assurance framework (Sec. V).
//
// The paper proposes replacing qualitative ASIL decomposition/inheritance
// with "traditional mathematical quantitative rules". This module provides
// those rules for violation frequencies of safety requirements:
//  - series (OR): any element violating violates the requirement -> rates add;
//  - parallel (AND): all redundant channels must fail within a common
//    detection/exposure window -> for small rates, lambda_and ~=
//    lambda_1 * lambda_2 * tau (one window), generalised to k-of-n;
//  - cause-agnostic budgets: systematic, random-hardware and performance-
//    limitation contributions draw from one budget.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "qrn/frequency.h"

namespace qrn::quant {

/// Cause categories unified under one budget (Sec. V: "one budget to be met
/// by all contributing causes, regardless whether they could be described
/// as systematic faults ...; or as random hardware faults; or as
/// 'performance limitations'").
enum class CauseCategory : std::uint8_t {
    SystematicDesign,       ///< Design faults in system/software/hardware.
    RandomHardware,         ///< Random hardware faults.
    PerformanceLimitation,  ///< Sensor/actuator performance limitations.
};

[[nodiscard]] std::string_view to_string(CauseCategory cause) noexcept;

/// Series combination (OR): violation if any input violates. Rates add.
[[nodiscard]] Frequency series_rate(const std::vector<Frequency>& rates);

/// Parallel combination (AND) of two independent channels with a common
/// exposure window tau (hours): the requirement is violated when both are
/// in a failed state simultaneously; for lambda*tau << 1 the resulting rate
/// is lambda1 * lambda2 * tau * 2 (either order of failure). Requires
/// tau > 0.
[[nodiscard]] Frequency parallel_rate(Frequency a, Frequency b, double tau_hours);

/// k-out-of-n good (i.e. violation when more than n-k channels are failed
/// within the window) for n identical independent channels of rate lambda.
/// Small-rate approximation: rate ~= C(n, n-k+1) * (n-k+1)! / (n-k+1) *
/// lambda^(n-k+1) * tau^(n-k) simplified via the standard formula
/// n! / (k-1)! / (n-k+1)! * (n-k+1) * lambda * (lambda*tau)^(n-k).
/// Requires 1 <= k <= n and tau > 0 (tau unused when k == n).
[[nodiscard]] Frequency k_of_n_rate(std::size_t k, std::size_t n, Frequency lambda,
                                    double tau_hours);

/// A cause-attributed contribution to one requirement's violation budget.
struct CauseContribution {
    CauseCategory cause = CauseCategory::SystematicDesign;
    Frequency rate;
};

/// Sums contributions across causes (the unified budget) and checks them
/// against a budget. Returns the total.
[[nodiscard]] Frequency unified_total(const std::vector<CauseContribution>& contributions);

/// True iff the unified total is within the budget.
[[nodiscard]] bool within_budget(const std::vector<CauseContribution>& contributions,
                                 Frequency budget);

}  // namespace qrn::quant
