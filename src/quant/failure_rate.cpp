#include "quant/failure_rate.h"

#include <cmath>
#include <stdexcept>

namespace qrn::quant {

std::string_view to_string(CauseCategory cause) noexcept {
    switch (cause) {
        case CauseCategory::SystematicDesign: return "systematic";
        case CauseCategory::RandomHardware: return "random-hw";
        case CauseCategory::PerformanceLimitation: return "performance";
    }
    return "?";
}

Frequency series_rate(const std::vector<Frequency>& rates) {
    Frequency total;
    for (const Frequency r : rates) total += r;
    return total;
}

Frequency parallel_rate(Frequency a, Frequency b, double tau_hours) {
    if (!(tau_hours > 0.0) || !std::isfinite(tau_hours)) {
        throw std::invalid_argument("parallel_rate: tau_hours must be > 0");
    }
    // Both channels must be down within one window: first either fails
    // (rate a+b), then the other fails within tau. Small-rate approximation.
    const double la = a.per_hour_value();
    const double lb = b.per_hour_value();
    return Frequency::per_hour(la * lb * tau_hours * 2.0);
}

Frequency k_of_n_rate(std::size_t k, std::size_t n, Frequency lambda, double tau_hours) {
    if (k == 0 || k > n) throw std::invalid_argument("k_of_n_rate: requires 1 <= k <= n");
    if (n > 20) throw std::invalid_argument("k_of_n_rate: n too large for exact combinatorics");
    const double l = lambda.per_hour_value();
    if (k == n) {
        // Any single failure violates: series of n identical channels.
        return Frequency::per_hour(static_cast<double>(n) * l);
    }
    if (!(tau_hours > 0.0) || !std::isfinite(tau_hours)) {
        throw std::invalid_argument("k_of_n_rate: tau_hours must be > 0");
    }
    // Violation when m = n - k + 1 channels are simultaneously failed
    // within the window. Leading-order term: choose the m channels, the
    // last failure arrives at rate l while the other m-1 are down
    // (probability (l*tau)^(m-1) each), times the m orderings collapsing
    // into m * C(n, m) * l * (l*tau)^(m-1).
    const std::size_t m = n - k + 1;
    double choose = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
        choose *= static_cast<double>(n - i) / static_cast<double>(i + 1);
    }
    const double rate = static_cast<double>(m) * choose * l *
                        std::pow(l * tau_hours, static_cast<double>(m - 1));
    return Frequency::per_hour(rate);
}

Frequency unified_total(const std::vector<CauseContribution>& contributions) {
    Frequency total;
    for (const auto& c : contributions) total += c.rate;
    return total;
}

bool within_budget(const std::vector<CauseContribution>& contributions,
                   Frequency budget) {
    return unified_total(contributions) <= budget;
}

}  // namespace qrn::quant
