#include "obs/manifest.h"

#include <fstream>

namespace qrn::obs {

namespace {

/// RFC 8259 string escaping: quote, backslash and control characters.
/// Metric names are plain identifiers, but command lines and git
/// describe output are caller-controlled.
void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    constexpr char kHex[] = "0123456789abcdef";
                    out += "\\u00";
                    out += kHex[(static_cast<unsigned char>(ch) >> 4) & 0xF];
                    out += kHex[static_cast<unsigned char>(ch) & 0xF];
                } else {
                    out += ch;
                }
        }
    }
    out += '"';
}

}  // namespace

Manifest capture_manifest() {
    Manifest m;
    m.phases = spans_snapshot();
    m.counters = counters_snapshot();
    m.timers = timers_snapshot();
    return m;
}

std::string manifest_json(const Manifest& manifest) {
    std::string out;
    out.reserve(1024);
    out += "{\n  \"kind\": \"qrn.metrics\",\n  \"schema_version\": 1,\n";
    out += "  \"command\": ";
    append_escaped(out, manifest.command);
    out += ",\n  \"git_describe\": ";
    append_escaped(out, manifest.git_describe);
    out += ",\n  \"jobs\": " + std::to_string(manifest.jobs);
    if (manifest.seed) {
        out += ",\n  \"seed\": " + std::to_string(*manifest.seed);
    }
    out += ",\n  \"wall_ns\": " + std::to_string(manifest.wall_ns);
    out += ",\n  \"phases\": [";
    for (std::size_t i = 0; i < manifest.phases.size(); ++i) {
        const SpanValue& p = manifest.phases[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"name\": ";
        append_escaped(out, p.name);
        out += ", \"depth\": " + std::to_string(p.depth);
        out += ", \"wall_ns\": " + std::to_string(p.wall_ns) + "}";
    }
    out += manifest.phases.empty() ? "]" : "\n  ]";
    out += ",\n  \"counters\": [";
    for (std::size_t i = 0; i < manifest.counters.size(); ++i) {
        const CounterValue& c = manifest.counters[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"name\": ";
        append_escaped(out, c.name);
        out += ", \"value\": " + std::to_string(c.value) + "}";
    }
    out += manifest.counters.empty() ? "]" : "\n  ]";
    out += ",\n  \"timers\": [";
    for (std::size_t i = 0; i < manifest.timers.size(); ++i) {
        const TimerValue& t = manifest.timers[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"name\": ";
        append_escaped(out, t.name);
        out += ", \"count\": " + std::to_string(t.count);
        out += ", \"total_ns\": " + std::to_string(t.total_ns) + "}";
    }
    out += manifest.timers.empty() ? "]" : "\n  ]";
    out += "\n}\n";
    return out;
}

bool write_manifest(const Manifest& manifest, const std::string& path) {
    std::ofstream out(path);
    if (!out) return false;
    out << manifest_json(manifest);
    out.flush();
    return out.good();
}

}  // namespace qrn::obs
