#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

namespace qrn::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

struct TimerCell {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
};

struct OpenSpan {
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t depth = 0;
    bool closed = false;
};

/// All registry state behind one mutex. Contention is negligible: the
/// instrumented call sites record per chunk / per run, never per sample.
struct Registry {
    std::mutex mutex;
    // Transparent comparators let string_view callers look up without
    // allocating until a genuinely new name arrives.
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, TimerCell, std::less<>> timers;
    std::vector<OpenSpan> spans;  // start order
    std::uint64_t span_depth = 0;
};

Registry& registry() {
    static Registry r;
    return r;
}

}  // namespace

void set_enabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void add_counter(std::string_view name, std::uint64_t delta) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.counters.find(name);
    if (it == r.counters.end()) {
        r.counters.emplace(std::string(name), delta);
    } else {
        it->second += delta;
    }
}

void record_max(std::string_view name, std::uint64_t value) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.counters.find(name);
    if (it == r.counters.end()) {
        r.counters.emplace(std::string(name), value);
    } else {
        it->second = std::max(it->second, value);
    }
}

void record_timer(std::string_view name, std::uint64_t ns) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.timers.find(name);
    if (it == r.timers.end()) {
        r.timers.emplace(std::string(name), TimerCell{1, ns});
    } else {
        ++it->second.count;
        it->second.total_ns += ns;
    }
}

void declare_timer(std::string_view name) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.timers.try_emplace(std::string(name));
}

std::vector<CounterValue> counters_snapshot() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<CounterValue> out;
    out.reserve(r.counters.size());
    for (const auto& [name, value] : r.counters) out.push_back({name, value});
    return out;  // std::map iteration is already name-ordered
}

std::vector<TimerValue> timers_snapshot() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<TimerValue> out;
    out.reserve(r.timers.size());
    for (const auto& [name, cell] : r.timers) {
        out.push_back({name, cell.count, cell.total_ns});
    }
    return out;
}

std::vector<SpanValue> spans_snapshot() {
    const std::uint64_t now = now_ns();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<SpanValue> out;
    out.reserve(r.spans.size());
    for (const OpenSpan& span : r.spans) {
        out.push_back({span.name,
                       span.closed ? span.wall_ns : now - span.start_ns,
                       span.depth});
    }
    return out;
}

void reset() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.counters.clear();
    r.timers.clear();
    r.spans.clear();
    r.span_depth = 0;
}

ScopedTimer::ScopedTimer(std::string_view name) {
    if (!enabled()) return;
    name_ = std::string(name);
    start_ns_ = now_ns();
    armed_ = true;
}

ScopedTimer::~ScopedTimer() {
    if (armed_) record_timer(name_, now_ns() - start_ns_);
}

ScopedSpan::ScopedSpan(std::string_view name) {
    if (!enabled()) return;
    start_ns_ = now_ns();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    slot_ = r.spans.size();
    r.spans.push_back(OpenSpan{std::string(name), start_ns_, 0, r.span_depth, false});
    ++r.span_depth;
    armed_ = true;
}

ScopedSpan::~ScopedSpan() {
    if (!armed_) return;
    const std::uint64_t end_ns = now_ns();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    // A reset() between construction and destruction abandons the span.
    if (slot_ >= r.spans.size() || r.spans[slot_].closed) return;
    r.spans[slot_].wall_ns = end_ns - start_ns_;
    r.spans[slot_].closed = true;
    if (r.span_depth > 0) --r.span_depth;
}

}  // namespace qrn::obs
