// Machine-readable run manifests: the JSON document behind the CLI's
// --metrics flag.
//
// A manifest captures one run's observability snapshot - wall time per
// traced phase, every counter and timer, plus the provenance needed to
// compare runs (command, jobs, seed, git describe). Schema (stable; see
// docs/OBSERVABILITY.md):
//
//   {"kind": "qrn.metrics", "schema_version": 1,
//    "command": "campaign", "git_describe": "<describe-or-unknown>",
//    "jobs": 4, "seed": 42,              // "seed" omitted when n/a
//    "wall_ns": 123456789,
//    "phases":   [{"name": "fleet_sim", "depth": 0, "wall_ns": N}, ...],
//    "counters": [{"name": "sim.encounters", "value": N}, ...],
//    "timers":   [{"name": "exec.chunk_ns", "count": N, "total_ns": N}, ...]}
//
// Phases appear in span start order, counters and timers sorted by name,
// so two runs of the same command produce structurally identical
// documents for every --jobs value (only schedule-dependent numbers
// differ). Serialization is self-contained (no qrn::json dependency, so
// qrn_obs stays below qrn_core in the layering) but emits strict RFC 8259
// JSON that qrn::json::parse round-trips.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace qrn::obs {

/// One run's metrics snapshot plus provenance.
struct Manifest {
    std::string command;                ///< e.g. "campaign".
    std::string git_describe = "unknown";
    unsigned jobs = 1;                  ///< Effective worker count.
    std::optional<std::uint64_t> seed;  ///< Present when the run had one.
    std::uint64_t wall_ns = 0;          ///< Whole-run wall time.
    std::vector<SpanValue> phases;
    std::vector<CounterValue> counters;
    std::vector<TimerValue> timers;
};

/// Builds a manifest from the current registry snapshots. The caller
/// fills in provenance (command/jobs/seed) and total wall time.
[[nodiscard]] Manifest capture_manifest();

/// Serializes the manifest as pretty-printed JSON (trailing newline).
[[nodiscard]] std::string manifest_json(const Manifest& manifest);

/// Writes manifest_json() to `path`. Returns false when the file cannot
/// be created or the write fails - callers must surface that as an error
/// (evidence that silently fails to persist is worse than none).
[[nodiscard]] bool write_manifest(const Manifest& manifest, const std::string& path);

}  // namespace qrn::obs
