// Lightweight observability: monotonic counters, max gauges, scoped
// wall-clock timers and span-style phase tracing, all feeding one
// process-wide thread-safe registry.
//
// The paper's Sec. V assurance case is built on *measured* frequencies;
// this layer applies the same principle to the toolkit itself: every
// campaign run can emit a machine-readable manifest of where its wall
// clock went (see obs/manifest.h and the CLI's --metrics flag).
//
// Design rules:
//  - Disabled by default and zero-overhead when disabled: hot call sites
//    guard with `if (obs::enabled())`, a single relaxed atomic load, and
//    the RAII helpers disarm themselves at construction time.
//  - Deterministic structure: counter and timer snapshots are ordered by
//    name, spans by start order. Instrumented code declares every metric
//    name it may touch on all execution paths (see exec/parallel.cpp), so
//    the set of names in a manifest is identical for every --jobs value;
//    only schedule-dependent *values* (queue depths, nanoseconds) differ.
//  - Aggregation is commutative: counters only ever sum or max, so the
//    totals from parallel workers are schedule-independent wherever the
//    underlying quantity is (e.g. sim.encounters).
//  - No <iostream>, no std::thread: the registry is plain mutex + maps,
//    and rendering/serialization live with the callers (report layer,
//    obs/manifest.h), keeping this library dependency-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qrn::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when instrumentation is armed. Hot paths check this before doing
/// any metrics work; a relaxed load keeps the disabled cost to one branch.
[[nodiscard]] inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arms or disarms instrumentation process-wide. Not meant to be toggled
/// concurrently with instrumented work (the CLI sets it once at startup;
/// tests toggle between runs).
void set_enabled(bool on) noexcept;

/// Monotonic nanoseconds from std::chrono::steady_clock (arbitrary epoch).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// One named monotonic counter (or max gauge) value.
struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
};

/// One named duration aggregate: `count` recordings totalling `total_ns`.
struct TimerValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
};

/// One traced phase, in span start order. `depth` is the nesting level at
/// the time the span opened (0 for top-level phases).
struct SpanValue {
    std::string name;
    std::uint64_t wall_ns = 0;
    std::uint64_t depth = 0;
};

/// Adds `delta` to the named counter, creating it at zero first. A delta
/// of 0 declares the counter so it appears in snapshots - instrumented
/// code uses that to keep manifest structure identical across schedules.
/// Thread-safe.
void add_counter(std::string_view name, std::uint64_t delta);

/// Raises the named gauge to at least `value` (max aggregation), creating
/// it at zero first. Thread-safe.
void record_max(std::string_view name, std::uint64_t value);

/// Records one duration into the named timer. Thread-safe.
void record_timer(std::string_view name, std::uint64_t ns);

/// Ensures the named timer exists (count 0) without recording. Thread-safe.
void declare_timer(std::string_view name);

/// Counter/gauge snapshot, ordered by name. Thread-safe.
[[nodiscard]] std::vector<CounterValue> counters_snapshot();

/// Timer snapshot, ordered by name. Thread-safe.
[[nodiscard]] std::vector<TimerValue> timers_snapshot();

/// Span snapshot, in start order. Closed spans carry their wall time;
/// spans still open at snapshot time report the time elapsed so far.
/// Thread-safe.
[[nodiscard]] std::vector<SpanValue> spans_snapshot();

/// Clears every counter, timer and span. Intended for tests and for tools
/// that run several measured sections in one process.
void reset();

/// RAII wall-clock timer: records elapsed nanoseconds into the named
/// timer at destruction. Disarms itself (no clock reads, no recording)
/// when instrumentation is disabled at construction.
class ScopedTimer {
public:
    explicit ScopedTimer(std::string_view name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    std::string name_;
    std::uint64_t start_ns_ = 0;
    bool armed_ = false;
};

/// RAII phase span: registers a named span when constructed and fills in
/// its wall time when destroyed. Spans order deterministically only when
/// opened from a single thread (the CLI opens them on the main thread
/// around campaign stages); worker-side code should use timers instead.
/// Disarms itself when instrumentation is disabled at construction.
class ScopedSpan {
public:
    explicit ScopedSpan(std::string_view name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    std::size_t slot_ = 0;
    std::uint64_t start_ns_ = 0;
    bool armed_ = false;
};

}  // namespace qrn::obs
