// Incremental CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//
// Every payload block and the sealed footer of a qrn-store shard carry a
// CRC so that truncation and bit-flips are detected at read time instead of
// silently skewing Eq. 1 evidence (docs/STORE.md). Table-driven and
// self-contained: no dependency on zlib or any other library the container
// may not have.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qrn::store {

/// Streaming CRC-32 accumulator. Feed bytes in any chunking; the digest
/// depends only on the byte sequence.
class Crc32 {
public:
    void update(const void* data, std::size_t size) noexcept;
    void update(std::string_view bytes) noexcept {
        update(bytes.data(), bytes.size());
    }

    /// The finalized checksum of everything fed so far. Does not reset;
    /// further updates continue the stream.
    [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

private:
    std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience over a byte range.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

}  // namespace qrn::store
