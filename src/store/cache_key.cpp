#include "store/cache_key.h"

#include <bit>

#include "store/format.h"

namespace qrn::store {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Bumping this string is the one-line way to invalidate every cached
/// shard when the key schema or the simulation semantics change.
constexpr std::string_view kKeySalt = "qrn.store.key.v1";

}  // namespace

void KeyHasher::mix_bytes(std::string_view bytes) noexcept {
    for (const char c : bytes) {
        state_ ^= static_cast<unsigned char>(c);
        state_ *= kFnvPrime;
    }
}

void KeyHasher::mix_u64(std::uint64_t value) noexcept {
    for (int shift = 0; shift < 64; shift += 8) {
        state_ ^= (value >> shift) & 0xFFu;
        state_ *= kFnvPrime;
    }
}

void KeyHasher::mix_f64(double value) noexcept {
    mix_u64(std::bit_cast<std::uint64_t>(value));
}

void KeyHasher::mix_bool(bool value) noexcept { mix_u64(value ? 1 : 0); }

void KeyHasher::mix_string(std::string_view text) noexcept {
    mix_u64(text.size());
    mix_bytes(text);
}

std::uint64_t fleet_cache_key(const sim::FleetConfig& base, double hours_per_fleet,
                              std::size_t fleet_index,
                              std::string_view inputs_digest) {
    KeyHasher h;
    h.mix_string(kKeySalt);

    // Odd.
    h.mix_f64(base.odd.max_speed_limit_kmh);
    h.mix_bool(base.odd.allow_rain);
    h.mix_bool(base.odd.allow_snow);
    h.mix_bool(base.odd.allow_fog);
    h.mix_bool(base.odd.allow_night);
    h.mix_f64(base.odd.min_friction);
    h.mix_f64(base.odd.max_vru_density);

    // TacticalPolicy.
    h.mix_f64(base.policy.speed_factor);
    h.mix_f64(base.policy.vru_speed_adaptation);
    h.mix_f64(base.policy.following_time_gap_s);
    h.mix_f64(base.policy.comfort_decel_ms2);
    h.mix_f64(base.policy.emergency_decel_fraction);
    h.mix_f64(base.policy.response_latency_s);
    h.mix_f64(base.policy.anticipation_horizon_s);

    // PerceptionModel.
    h.mix_f64(base.perception.nominal_range_m);
    h.mix_f64(base.perception.vru_range_factor);
    h.mix_f64(base.perception.animal_range_factor);
    h.mix_f64(base.perception.rain_factor);
    h.mix_f64(base.perception.snow_factor);
    h.mix_f64(base.perception.fog_factor);
    h.mix_f64(base.perception.night_factor);
    h.mix_f64(base.perception.dusk_factor);
    h.mix_f64(base.perception.range_sigma_log);
    h.mix_f64(base.perception.miss_probability);
    h.mix_f64(base.perception.blackout_probability);

    // EncounterRates.
    h.mix_f64(base.rates.vru_crossing);
    h.mix_f64(base.rates.lead_braking);
    h.mix_f64(base.rates.stationary_obstacle);
    h.mix_f64(base.rates.animal_crossing);
    h.mix_f64(base.rates.cut_in);
    h.mix_f64(base.rates.crossing_vehicle);
    h.mix_f64(base.rates.oncoming_drift);

    // DetectorConfig.
    h.mix_f64(base.detector.near_miss_max_distance_m);
    h.mix_f64(base.detector.near_miss_min_speed_kmh);

    // FaultInjection.
    h.mix_f64(base.faults.brake_degradation_probability);
    h.mix_f64(base.faults.degraded_decel_cap_ms2);
    h.mix_bool(base.faults.policy_aware);

    // SecondaryConflicts.
    h.mix_f64(base.secondary.follower_presence);
    h.mix_f64(base.secondary.rear_end_probability);
    h.mix_f64(base.secondary.induced_probability);

    // OddExitModel.
    h.mix_f64(base.odd_exit.exit_probability);
    h.mix_f64(base.odd_exit.detection_probability);
    h.mix_f64(base.odd_exit.mrm_incident_probability);

    h.mix_f64(base.environment_persistence);
    h.mix_u64(base.seed);

    h.mix_f64(hours_per_fleet);
    h.mix_u64(fleet_index);
    h.mix_string(inputs_digest);
    return h.digest();
}

std::string key_hex(std::uint64_t key) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[key & 0xFu];
        key >>= 4;
    }
    return out;
}

std::uint64_t key_from_hex(std::string_view hex) {
    if (hex.size() != 16) {
        throw StoreError(StoreErrorKind::Inconsistent,
                         "cache key '" + std::string(hex) +
                             "' is not 16 hex digits");
    }
    std::uint64_t value = 0;
    for (const char c : hex) {
        value <<= 4;
        if (c >= '0' && c <= '9') {
            value |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            throw StoreError(StoreErrorKind::Inconsistent,
                             "cache key '" + std::string(hex) +
                                 "' contains a non-hex character");
        }
    }
    return value;
}

}  // namespace qrn::store
