#include "store/lease.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "qrn/json.h"
#include "store/format.h"
#include "store/sync.h"

namespace qrn::store {

namespace {

constexpr std::string_view kLeaseKind = "qrn.lease";
constexpr std::string_view kLeaseExtension = ".lease";

[[noreturn]] void throw_io(const std::string& action, const std::string& path) {
    throw StoreError(StoreErrorKind::Io,
                     action + " failed for " + path + ": " + std::strerror(errno));
}

std::string lease_json(const Lease& lease) {
    json::Object doc;
    doc.emplace_back("kind", json::Value(std::string(kLeaseKind)));
    doc.emplace_back("node", json::Value(lease.node));
    doc.emplace_back("owner", json::Value(lease.owner));
    // Epoch milliseconds (~2^41) and generations sit far below 2^53, so
    // the JSON-number round trip is exact, as for manifest fleet indices.
    doc.emplace_back("acquired_ms",
                     json::Value(static_cast<std::size_t>(lease.acquired_ms)));
    doc.emplace_back("ttl_ms", json::Value(static_cast<std::size_t>(lease.ttl_ms)));
    doc.emplace_back("generation",
                     json::Value(static_cast<std::size_t>(lease.generation)));
    return json::Value(std::move(doc)).dump(2) + "\n";
}

/// Writes `lease` to a temp file unique to this process AND call (the
/// coordinator's dispatch and renewal threads both write leases), fsync'd
/// and ready to be published by link(2) or rename(2).
std::string write_lease_temp(const std::string& dir, const Lease& lease) {
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp = lease_path(dir, lease.node) + kTempSuffix.data() + "-" +
                            std::to_string(::getpid()) + "-" +
                            std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            throw StoreError(StoreErrorKind::Io,
                             "cannot open '" + tmp + "' for writing");
        }
        out << lease_json(lease);
        out.flush();
        if (!out.good()) {
            throw StoreError(StoreErrorKind::Io,
                             "I/O error while writing lease temp '" + tmp + "'");
        }
    }
    sync_file(tmp);
    return tmp;
}

}  // namespace

std::uint64_t lease_now_ms() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::string lease_path(const std::string& dir, const std::string& node) {
    return dir + "/" + node + std::string(kLeaseExtension);
}

bool lease_expired(const Lease& lease, std::uint64_t now_ms) noexcept {
    return now_ms >= lease.acquired_ms + lease.ttl_ms;
}

bool try_acquire_lease(const std::string& dir, const Lease& lease) {
    const std::string tmp = write_lease_temp(dir, lease);
    const std::string path = lease_path(dir, lease.node);
    // link(2) is the atomic test-and-set: it fails with EEXIST when any
    // lease file is already published, and on success the new name points
    // at bytes that were fully written and fsync'd before the publish -
    // a reader can never observe a partial lease.
    const int rc = ::link(tmp.c_str(), path.c_str());
    const int saved = errno;
    std::error_code ec;
    std::filesystem::remove(tmp, ec);  // the temp's job is done either way
    if (rc == 0) {
        sync_directory(dir);
        return true;
    }
    if (saved == EEXIST) return false;
    errno = saved;
    throw_io("link lease", path);
}

std::optional<Lease> read_lease(const std::string& dir, const std::string& node) {
    const std::string path = lease_path(dir, node);
    std::ifstream in(path);
    if (!in) {
        std::error_code ec;
        if (std::filesystem::exists(path, ec)) {
            throw StoreError(StoreErrorKind::Io,
                             "lease '" + path + "' exists but cannot be read");
        }
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) {
        throw StoreError(StoreErrorKind::Io,
                         "I/O error while reading lease '" + path + "'");
    }

    Lease lease;
    lease.node = node;
    try {
        const json::Value doc = json::parse(text.str());
        if (doc.at("kind").as_string() != kLeaseKind ||
            doc.at("node").as_string() != node) {
            throw std::runtime_error("wrong kind or node");
        }
        lease.owner = doc.at("owner").as_string();
        lease.acquired_ms = static_cast<std::uint64_t>(doc.at("acquired_ms").as_number());
        lease.ttl_ms = static_cast<std::uint64_t>(doc.at("ttl_ms").as_number());
        lease.generation = static_cast<std::uint64_t>(doc.at("generation").as_number());
    } catch (const std::exception&) {
        // A lease that cannot be parsed was written outside the atomic
        // protocol (or hand-damaged). Correctness never depends on lease
        // content, so surface it as an expired claim: stealable.
        lease.owner = "<malformed>";
        lease.acquired_ms = 0;
        lease.ttl_ms = 0;
        lease.generation = 0;
    }
    return lease;
}

void overwrite_lease(const std::string& dir, const Lease& lease) {
    const std::string tmp = write_lease_temp(dir, lease);
    const std::string path = lease_path(dir, lease.node);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        throw StoreError(StoreErrorKind::Io, "cannot rename '" + tmp + "' to '" +
                                                 path + "': " + ec.message());
    }
    sync_directory(dir);
}

void release_lease(const std::string& dir, const std::string& node) {
    const std::string path = lease_path(dir, node);
    std::error_code ec;
    const bool removed = std::filesystem::remove(path, ec);
    if (ec) {
        throw StoreError(StoreErrorKind::Io, "cannot remove lease '" + path +
                                                 "': " + ec.message());
    }
    if (removed) sync_directory(dir);
}

}  // namespace qrn::store
