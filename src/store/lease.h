// Lease files: the claim/steal primitive of the distributed scheduler.
//
// A lease is a small JSON file that marks one DAG node as "being worked
// on" by one owner until a deadline. Acquisition is atomic and exclusive
// (a fully-written temp file published with link(2), which fails when the
// lease already exists - no partial lease is ever visible); stealing and
// renewal atomically REPLACE the file (temp + fsync + rename, the same
// durability order ShardWriter::seal uses) and bump its generation.
//
// Leases are an efficiency device, not a correctness device: they keep two
// workers from simulating the same fleet at the same time, but the system
// stays correct if they fail to - a DAG node is "done" if and only if its
// sealed shard verifies clean in the store, node outputs are pure
// functions of the campaign plan, and shard sealing is itself an atomic
// rename, so duplicate execution produces byte-identical bytes under the
// same name. That is why expiry can be judged on wall clocks: a stale
// clock costs duplicated work, never a wrong result (docs/DISTRIBUTED.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace qrn::store {

/// One lease file's contents.
struct Lease {
    std::string node;              ///< DAG node id, e.g. "fleet-00042".
    std::string owner;             ///< "<host>:<pid>:<role>"; informational.
    std::uint64_t acquired_ms = 0; ///< Unix epoch ms at acquire/renew time.
    std::uint64_t ttl_ms = 0;      ///< Validity window from acquired_ms.
    std::uint64_t generation = 0;  ///< Bumped by every steal and renewal.
};

/// Unix epoch milliseconds from the system clock - the timebase every
/// lease field uses. Cross-machine skew shortens or stretches windows;
/// pick TTLs generous against it.
[[nodiscard]] std::uint64_t lease_now_ms() noexcept;

/// `dir/<node>.lease`.
[[nodiscard]] std::string lease_path(const std::string& dir,
                                     const std::string& node);

/// True when the lease's window has elapsed at `now_ms`.
[[nodiscard]] bool lease_expired(const Lease& lease,
                                 std::uint64_t now_ms) noexcept;

/// Atomically acquires `lease.node`: writes the full lease to a unique
/// temp file, fsyncs it, then publishes it with link(2) - which fails
/// (returning false) when any lease file already exists, expired or not.
/// On success the directory entry is fsync'd before returning. Throws
/// StoreError(Io) on anything but "already leased".
[[nodiscard]] bool try_acquire_lease(const std::string& dir, const Lease& lease);

/// Reads a node's lease. Returns nullopt when no lease file exists. A
/// file that cannot be parsed (torn by a dying writer outside the atomic
/// protocol, or hand-edited) is returned as a zero-TTL lease with owner
/// "<malformed>": always expired, therefore stealable.
[[nodiscard]] std::optional<Lease> read_lease(const std::string& dir,
                                              const std::string& node);

/// Steal or renew: atomically replaces the node's lease file (temp +
/// fsync + rename + directory fsync) with `lease` as written - callers
/// bump `generation` and set `acquired_ms`/`owner` for their case. Unlike
/// try_acquire_lease this succeeds whether or not a lease exists. Throws
/// StoreError(Io) on failure.
void overwrite_lease(const std::string& dir, const Lease& lease);

/// Removes a node's lease and fsyncs the directory. A lease that is
/// already gone is not an error (release after steal is a benign race).
void release_lease(const std::string& dir, const std::string& node);

}  // namespace qrn::store
