// Campaign execution with content-addressed caching and resume.
//
// Every fleet of a campaign is a pure function of its cache key, so a
// campaign run against a store becomes: for each fleet, either reuse the
// sealed shard whose key matches, or simulate the fleet and seal a new
// shard. A killed run leaves sealed shards for the fleets it finished (the
// manifest is rewritten after every seal); rerunning the same command
// resumes exactly there and produces byte-identical shards - and therefore
// byte-identical downstream statistics - to an uninterrupted run.
//
// A shard is only ever reused after a full integrity re-scan: a corrupted,
// truncated or key-mismatched shard is counted, reported through qrn_obs
// and silently *re-simulated*, never trusted.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "sim/campaign.h"
#include "store/store.h"

namespace qrn::store {

/// What the cache did for one campaign run.
struct StoreCampaignStats {
    std::size_t fleets_total = 0;
    std::size_t fleets_simulated = 0;  ///< Cache misses (simulated + sealed).
    std::size_t fleets_reused = 0;     ///< Verified cache hits.
    std::size_t shards_invalid = 0;    ///< Present but failed verification.

    /// One entry per fleet, in fleet order; every entry's shard is sealed
    /// and verified by the time this is returned.
    std::vector<ShardEntry> entries;
};

/// Runs the campaign against the store. Fleet i's key is
/// fleet_cache_key(config.base, config.hours_per_fleet, i, inputs_digest);
/// fleets run (or verify) in parallel per config.jobs, and the outcome is
/// independent of jobs and of interruption history. Throws StoreError(Io)
/// when shards cannot be written and std::invalid_argument on a config the
/// plain run_campaign would also reject.
[[nodiscard]] StoreCampaignStats run_campaign_with_store(
    const sim::CampaignConfig& config, Store& store, std::string_view inputs_digest);

/// Simulates one fleet of the campaign and seals its shard into `dir`,
/// without touching any manifest: the single code path behind both the
/// local cache-miss branch above and the distributed scheduler's workers,
/// so a shard's bytes depend only on the campaign inputs - never on which
/// process produced it. Returns the manifest row describing the sealed
/// shard (the caller decides whether and where to record it).
[[nodiscard]] ShardEntry simulate_fleet_shard(const sim::CampaignConfig& config,
                                              const std::string& dir,
                                              std::size_t fleet_index,
                                              std::string_view inputs_digest);

}  // namespace qrn::store
