#include "store/format.h"

#include <bit>
#include <exception>

namespace qrn::store {

std::string_view to_string(StoreErrorKind kind) noexcept {
    switch (kind) {
        case StoreErrorKind::Io: return "io";
        case StoreErrorKind::BadMagic: return "bad-magic";
        case StoreErrorKind::BadVersion: return "bad-version";
        case StoreErrorKind::Truncated: return "truncated";
        case StoreErrorKind::Checksum: return "checksum";
        case StoreErrorKind::Inconsistent: return "inconsistent";
    }
    return "unknown";
}

StoreError::StoreError(StoreErrorKind kind, const std::string& message)
    : std::runtime_error("[" + std::string(to_string(kind)) + "] " + message),
      kind_(kind) {}

void put_u32(std::string& out, std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
        out.push_back(static_cast<char>((value >> shift) & 0xFFu));
    }
}

void put_u64(std::string& out, std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<char>((value >> shift) & 0xFFu));
    }
}

void put_f64(std::string& out, double value) {
    put_u64(out, std::bit_cast<std::uint64_t>(value));
}

std::uint32_t get_u32(std::string_view bytes, std::size_t offset) noexcept {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]))
                 << (8 * i);
    }
    return value;
}

std::uint64_t get_u64(std::string_view bytes, std::size_t offset) noexcept {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]))
                 << (8 * i);
    }
    return value;
}

double get_f64(std::string_view bytes, std::size_t offset) noexcept {
    return std::bit_cast<double>(get_u64(bytes, offset));
}

void encode_record(std::string& out, const Incident& incident) {
    out.push_back(static_cast<char>(incident.first));
    out.push_back(static_cast<char>(incident.second));
    out.push_back(static_cast<char>(incident.mechanism));
    out.push_back(static_cast<char>(incident.ego_causing_factor ? 1 : 0));
    put_f64(out, incident.relative_speed_kmh);
    put_f64(out, incident.min_distance_m);
    put_f64(out, incident.timestamp_hours);
}

Incident decode_record(std::string_view bytes, std::size_t offset,
                       const std::string& context) {
    const auto first = static_cast<unsigned char>(bytes[offset]);
    const auto second = static_cast<unsigned char>(bytes[offset + 1]);
    const auto mechanism = static_cast<unsigned char>(bytes[offset + 2]);
    const auto flags = static_cast<unsigned char>(bytes[offset + 3]);
    if (first >= kActorTypeCount || second >= kActorTypeCount || mechanism > 1 ||
        flags > 1) {
        throw StoreError(StoreErrorKind::Inconsistent,
                         context + ": record field out of range (actor/mechanism/"
                                   "flag byte does not name a known value)");
    }
    Incident incident;
    incident.first = static_cast<ActorType>(first);
    incident.second = static_cast<ActorType>(second);
    incident.mechanism = static_cast<IncidentMechanism>(mechanism);
    incident.ego_causing_factor = flags != 0;
    incident.relative_speed_kmh = get_f64(bytes, offset + 4);
    incident.min_distance_m = get_f64(bytes, offset + 12);
    incident.timestamp_hours = get_f64(bytes, offset + 20);
    try {
        validate(incident);
    } catch (const std::exception& error) {
        throw StoreError(StoreErrorKind::Inconsistent,
                         context + ": record violates incident invariants: " +
                             error.what());
    }
    return incident;
}

}  // namespace qrn::store
