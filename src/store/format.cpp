#include "store/format.h"

#include <bit>

namespace qrn::store {

std::string_view to_string(StoreErrorKind kind) noexcept {
    switch (kind) {
        case StoreErrorKind::Io: return "io";
        case StoreErrorKind::BadMagic: return "bad-magic";
        case StoreErrorKind::BadVersion: return "bad-version";
        case StoreErrorKind::Truncated: return "truncated";
        case StoreErrorKind::Checksum: return "checksum";
        case StoreErrorKind::Inconsistent: return "inconsistent";
    }
    return "unknown";
}

StoreError::StoreError(StoreErrorKind kind, const std::string& message)
    : std::runtime_error("[" + std::string(to_string(kind)) + "] " + message),
      kind_(kind) {}

void put_u32(std::string& out, std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
        out.push_back(static_cast<char>((value >> shift) & 0xFFu));
    }
}

void put_u64(std::string& out, std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<char>((value >> shift) & 0xFFu));
    }
}

void put_f64(std::string& out, double value) {
    put_u64(out, std::bit_cast<std::uint64_t>(value));
}

std::uint32_t get_u32(std::string_view bytes, std::size_t offset) noexcept {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]))
                 << (8 * i);
    }
    return value;
}

std::uint64_t get_u64(std::string_view bytes, std::size_t offset) noexcept {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]))
                 << (8 * i);
    }
    return value;
}

double get_f64(std::string_view bytes, std::size_t offset) noexcept {
    return std::bit_cast<double>(get_u64(bytes, offset));
}

}  // namespace qrn::store
