// Content-addressed cache keys for campaign shards.
//
// A shard is reusable exactly when the run that would produce it is the
// run that did produce it. The key is therefore a digest of everything the
// fleet's log is a pure function of: the full FleetConfig (every model
// parameter, as IEEE bit patterns - 0.1 and 0.1000000000000001 are
// different runs), the campaign's hours-per-fleet, the base seed, the
// fleet index, and an opaque caller-supplied inputs digest (the CLI folds
// in the incident-type catalog the evidence will be labelled against).
// A format-version salt leads the stream so a future layout change
// invalidates every old key instead of colliding with it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "sim/fleet.h"

namespace qrn::store {

/// Incremental FNV-1a (64-bit) over a canonical byte stream. Every field
/// is framed by its width, doubles travel as bit patterns, so two
/// different field sequences never alias byte-for-byte.
class KeyHasher {
public:
    void mix_bytes(std::string_view bytes) noexcept;
    void mix_u64(std::uint64_t value) noexcept;
    void mix_f64(double value) noexcept;
    void mix_bool(bool value) noexcept;
    /// Length-prefixed, so "ab"+"c" and "a"+"bc" differ.
    void mix_string(std::string_view text) noexcept;

    [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

private:
    std::uint64_t state_ = 14695981039346656037ULL;  ///< FNV offset basis.
};

/// The cache key of fleet `fleet_index` of a campaign: digest of
/// (base config, hours_per_fleet, base seed, fleet index, inputs_digest).
/// Pure in its arguments; independent of --jobs and of scheduling.
[[nodiscard]] std::uint64_t fleet_cache_key(const sim::FleetConfig& base,
                                            double hours_per_fleet,
                                            std::size_t fleet_index,
                                            std::string_view inputs_digest);

/// Fixed-width lowercase hex rendering (16 digits) used in manifests and
/// shard file names.
[[nodiscard]] std::string key_hex(std::uint64_t key);

/// Inverse of key_hex; throws StoreError(Inconsistent) on anything that is
/// not exactly 16 lowercase hex digits.
[[nodiscard]] std::uint64_t key_from_hex(std::string_view hex);

}  // namespace qrn::store
