// The store: a directory of sealed shards plus a JSON manifest.
//
// `DIR/manifest.json` indexes every sealed shard by fleet index and
// content key. The manifest is a cache index, not an authority: before a
// shard is ever reused its header key is re-checked and its blocks are
// re-checksummed, so a stale or hand-edited manifest can cause a cache
// miss (re-simulation) but never a wrong result. The manifest itself is
// rewritten atomically (temp + rename) after every recorded shard, which
// makes any prefix of a campaign a valid resume point.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qrn::store {

/// One manifest row: a sealed shard the store knows about.
struct ShardEntry {
    std::uint64_t fleet_index = 0;
    std::string file;               ///< File name relative to the store dir.
    std::uint64_t cache_key = 0;
    std::uint64_t records = 0;      ///< Incident records (from the footer).
    double exposure_hours = 0.0;    ///< Exposure (informational; footer rules).
};

/// A shard store rooted at one directory. Thread-safe: campaign workers
/// record shards concurrently; each record() rewrites the manifest under a
/// lock so the on-disk index is always a consistent snapshot.
class Store {
public:
    /// Opens (creating if needed) the store directory and loads the
    /// manifest when one exists. Throws StoreError(Io) when the directory
    /// cannot be created or the manifest cannot be read, and
    /// StoreError(Inconsistent) when the manifest is not a store manifest.
    explicit Store(std::string dir);

    [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
    [[nodiscard]] std::string manifest_path() const;

    /// True when construction found an existing manifest (i.e. this
    /// directory has been used as a store before). --resume requires it.
    [[nodiscard]] bool manifest_found() const noexcept { return manifest_found_; }

    /// The entry for a fleet, or nullptr when the store has none.
    [[nodiscard]] const ShardEntry* find(std::uint64_t fleet_index) const;

    /// All entries, sorted by fleet index.
    [[nodiscard]] std::vector<ShardEntry> entries() const;

    /// Absolute-ish path of an entry's shard file (dir/file).
    [[nodiscard]] std::string shard_path(const ShardEntry& entry) const;

    /// Canonical shard file name: fleet-<5-digit index>-<16-hex key>.qrs.
    [[nodiscard]] static std::string shard_filename(std::uint64_t fleet_index,
                                                    std::uint64_t cache_key);

    /// Upserts an entry and atomically rewrites the manifest. Safe to call
    /// from parallel campaign workers. Throws StoreError(Io) when the
    /// manifest cannot be written.
    void record(const ShardEntry& entry);

    /// Leftover `*.tmp` files from interrupted writes (sorted). These are
    /// never trusted as shards; inspect reports them so operators know a
    /// previous run died mid-write.
    [[nodiscard]] std::vector<std::string> stray_temp_files() const;

private:
    void load_manifest();
    void write_manifest_locked() const;

    std::string dir_;
    mutable std::mutex mutex_;
    std::map<std::uint64_t, ShardEntry> entries_;
    bool manifest_found_ = false;
};

}  // namespace qrn::store
