#include "store/store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "qrn/json.h"
#include "store/cache_key.h"
#include "store/format.h"

namespace qrn::store {

namespace {

constexpr int kManifestSchemaVersion = 1;
constexpr std::string_view kManifestKind = "qrn.store";
constexpr std::string_view kManifestName = "manifest.json";

/// Fleet indices and record counts live in JSON numbers (doubles); both
/// are bounded far below 2^53 in practice, so the round trip is exact.
std::uint64_t entry_u64(const json::Value& value, const std::string& what) {
    if (!value.is_number() || value.as_number() < 0) {
        throw StoreError(StoreErrorKind::Inconsistent,
                         "manifest field '" + what + "' is not a non-negative number");
    }
    return static_cast<std::uint64_t>(value.as_number());
}

}  // namespace

Store::Store(std::string dir) : dir_(std::move(dir)) {
    if (dir_.empty()) {
        throw StoreError(StoreErrorKind::Io, "store directory path is empty");
    }
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        throw StoreError(StoreErrorKind::Io, "cannot create store directory '" +
                                                 dir_ + "': " + ec.message());
    }
    load_manifest();
}

std::string Store::manifest_path() const {
    return dir_ + "/" + std::string(kManifestName);
}

void Store::load_manifest() {
    const std::string path = manifest_path();
    std::ifstream in(path);
    if (!in) {
        std::error_code ec;
        if (std::filesystem::exists(path, ec)) {
            throw StoreError(StoreErrorKind::Io,
                             "store manifest '" + path + "' exists but cannot be read");
        }
        return;  // Fresh store: no manifest yet.
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) {
        throw StoreError(StoreErrorKind::Io,
                         "I/O error while reading store manifest '" + path + "'");
    }

    json::Value doc;
    try {
        doc = json::parse(text.str());
    } catch (const std::exception& e) {
        throw StoreError(StoreErrorKind::Inconsistent,
                         "store manifest '" + path + "' is not valid JSON: " + e.what());
    }
    try {
        if (doc.at("kind").as_string() != kManifestKind) {
            throw StoreError(StoreErrorKind::Inconsistent,
                             "'" + path + "' is not a store manifest (kind '" +
                                 doc.at("kind").as_string() + "')");
        }
        const auto version = entry_u64(doc.at("schema_version"), "schema_version");
        if (version != kManifestSchemaVersion) {
            throw StoreError(StoreErrorKind::Inconsistent,
                             "store manifest '" + path + "' has schema version " +
                                 std::to_string(version) + "; this build reads " +
                                 std::to_string(kManifestSchemaVersion));
        }
        for (const json::Value& row : doc.at("shards").as_array()) {
            ShardEntry entry;
            entry.fleet_index = entry_u64(row.at("fleet_index"), "fleet_index");
            entry.file = row.at("file").as_string();
            entry.cache_key = key_from_hex(row.at("key").as_string());
            entry.records = entry_u64(row.at("records"), "records");
            entry.exposure_hours = row.at("exposure_hours").as_number();
            if (entry.file.empty() || entry.file.find('/') != std::string::npos) {
                throw StoreError(StoreErrorKind::Inconsistent,
                                 "store manifest '" + path +
                                     "' names an invalid shard file '" + entry.file + "'");
            }
            entries_[entry.fleet_index] = std::move(entry);
        }
    } catch (const StoreError&) {
        throw;
    } catch (const std::exception& e) {
        throw StoreError(StoreErrorKind::Inconsistent,
                         "store manifest '" + path + "' is malformed: " + e.what());
    }
    manifest_found_ = true;
}

void Store::write_manifest_locked() const {
    json::Array shards;
    shards.reserve(entries_.size());
    for (const auto& [index, entry] : entries_) {
        json::Object row;
        row.emplace_back("fleet_index", json::Value(static_cast<std::size_t>(index)));
        row.emplace_back("file", json::Value(entry.file));
        row.emplace_back("key", json::Value(key_hex(entry.cache_key)));
        row.emplace_back("records",
                         json::Value(static_cast<std::size_t>(entry.records)));
        row.emplace_back("exposure_hours", json::Value(entry.exposure_hours));
        shards.emplace_back(std::move(row));
    }
    json::Object doc;
    doc.emplace_back("kind", json::Value(std::string(kManifestKind)));
    doc.emplace_back("schema_version", json::Value(kManifestSchemaVersion));
    doc.emplace_back("shards", json::Value(std::move(shards)));

    const std::string path = manifest_path();
    const std::string tmp = path + std::string(kTempSuffix);
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            throw StoreError(StoreErrorKind::Io,
                             "cannot open '" + tmp + "' for writing");
        }
        out << json::Value(std::move(doc)).dump(2) << '\n';
        out.flush();
        if (!out.good()) {
            throw StoreError(StoreErrorKind::Io,
                             "I/O error while writing store manifest '" + tmp + "'");
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        throw StoreError(StoreErrorKind::Io, "cannot rename '" + tmp + "' to '" +
                                                 path + "': " + ec.message());
    }
}

const ShardEntry* Store::find(std::uint64_t fleet_index) const {
    const std::scoped_lock lock(mutex_);
    const auto it = entries_.find(fleet_index);
    return it == entries_.end() ? nullptr : &it->second;
}

std::vector<ShardEntry> Store::entries() const {
    const std::scoped_lock lock(mutex_);
    std::vector<ShardEntry> out;
    out.reserve(entries_.size());
    for (const auto& [index, entry] : entries_) out.push_back(entry);
    return out;
}

std::string Store::shard_path(const ShardEntry& entry) const {
    return dir_ + "/" + entry.file;
}

std::string Store::shard_filename(std::uint64_t fleet_index, std::uint64_t cache_key) {
    std::string digits = std::to_string(fleet_index);
    if (digits.size() < 5) digits.insert(0, 5 - digits.size(), '0');
    return "fleet-" + digits + "-" + key_hex(cache_key) + std::string(kShardExtension);
}

void Store::record(const ShardEntry& entry) {
    const std::scoped_lock lock(mutex_);
    entries_[entry.fleet_index] = entry;
    write_manifest_locked();
}

std::vector<std::string> Store::stray_temp_files() const {
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto& item : std::filesystem::directory_iterator(dir_, ec)) {
        if (!item.is_regular_file(ec)) continue;
        const std::string name = item.path().filename().string();
        if (name.size() > kTempSuffix.size() &&
            name.ends_with(kTempSuffix)) {
            out.push_back(name);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace qrn::store
