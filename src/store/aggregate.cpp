#include "store/aggregate.h"

#include "exec/parallel.h"
#include "stats/rng.h"
#include "store/format.h"
#include "store/shard.h"

namespace qrn::store {

namespace {

/// Per-shard partial for the evidence aggregate: integer tallies plus the
/// shard's own totals, folded serially in fleet order afterwards.
struct ShardScan {
    std::uint64_t records = 0;
    double exposure_hours = 0.0;
    std::vector<std::uint64_t> type_events;
};

/// Per-shard partial for the contribution aggregate. Cell sums commute,
/// so folding order cannot change the result.
struct ShardTally {
    std::vector<std::vector<std::uint64_t>> counts;
    std::vector<std::uint64_t> totals;
};

}  // namespace

Frequency StoreAggregate::pooled_incident_rate() const {
    return Frequency::of_count(total_events, total_exposure);
}

stats::HeterogeneityResult StoreAggregate::heterogeneity() const {
    return stats::rate_heterogeneity_test(observations);
}

StoreAggregate aggregate_evidence(const std::vector<ShardRef>& shards,
                                  const IncidentTypeSet& types, unsigned jobs) {
    const std::vector<ShardScan> scans = exec::parallel_map<ShardScan>(
        jobs, shards.size(), [&](std::size_t s) {
            ShardScan scan;
            scan.type_events.assign(types.size(), 0);
            ShardReader reader(shards[s].path);
            // Columnar block scan: every per-type count of the block in
            // one pass, summed into the shard partial.
            const ShardInfo info =
                reader.for_each_block([&](const qrn::IncidentColumns& block) {
                    const std::vector<std::uint64_t> counts =
                        count_matching_all(block, types);
                    for (std::size_t k = 0; k < types.size(); ++k) {
                        scan.type_events[k] += counts[k];
                    }
                });
            scan.records = info.records;
            scan.exposure_hours = info.totals.exposure_hours;
            return scan;
        });

    StoreAggregate out;
    out.shard_count = shards.size();
    out.evidence.reserve(types.size());
    for (std::size_t k = 0; k < types.size(); ++k) {
        TypeEvidence e;
        e.incident_type_id = types.at(k).id();
        out.evidence.push_back(std::move(e));
    }
    out.observations.reserve(scans.size());
    // Serial fleet-order folds: the double sums below must reproduce the
    // in-memory loops over CampaignResult::logs term for term.
    for (const ShardScan& scan : scans) {
        const ExposureHours exposure(scan.exposure_hours);
        out.total_exposure += exposure;
        out.total_events += static_cast<double>(scan.records);
        out.total_records += scan.records;
        out.per_fleet_rates.add(
            Frequency::of_count(static_cast<double>(scan.records), exposure)
                .per_hour_value());
        out.observations.push_back({scan.records, scan.exposure_hours});
        for (std::size_t k = 0; k < types.size(); ++k) {
            out.evidence[k].events += scan.type_events[k];
        }
    }
    for (auto& e : out.evidence) e.exposure = out.total_exposure;
    return out;
}

ContributionCounts aggregate_contributions(
    const std::vector<ShardRef>& shards, const IncidentTypeSet& types,
    std::size_t class_count, const RiskNorm& norm, const InjuryRiskModel& model,
    const std::vector<double>& near_miss_profile, std::uint64_t seed,
    unsigned jobs) {
    if (class_count == 0) {
        throw std::invalid_argument(
            "aggregate_contributions: class_count must be >= 1");
    }
    // Pass 1: record counts, to pin each shard's global index offset. The
    // counts come from verified footers; pass 2 re-checks them and throws
    // Inconsistent if a shard changed between the passes.
    const std::vector<std::uint64_t> counts = exec::parallel_map<std::uint64_t>(
        jobs, shards.size(),
        [&](std::size_t s) { return verify_shard(shards[s].path).records; });
    std::vector<std::uint64_t> offsets(shards.size(), 0);
    for (std::size_t s = 1; s < shards.size(); ++s) {
        offsets[s] = offsets[s - 1] + counts[s - 1];
    }

    // Pass 2: label record j of shard s with stream(seed, offset_s + j) -
    // the stream the in-memory label_incidents overload would give it.
    const std::vector<ShardTally> tallies = exec::parallel_map<ShardTally>(
        jobs, shards.size(), [&](std::size_t s) {
            ShardTally tally;
            tally.counts.assign(class_count,
                                std::vector<std::uint64_t>(types.size(), 0));
            tally.totals.assign(types.size(), 0);
            std::uint64_t j = 0;
            ShardReader reader(shards[s].path);
            const ShardInfo info = reader.for_each([&](const Incident& incident) {
                stats::Rng rng = stats::Rng::stream(seed, offsets[s] + j);
                ++j;
                const auto label =
                    sample_consequence(incident, norm, model, near_miss_profile, rng);
                const auto type_index = types.classify(incident);
                if (!type_index) return;
                ++tally.totals[*type_index];
                if (label) {
                    if (*label >= class_count) {
                        throw std::invalid_argument(
                            "aggregate_contributions: label out of range");
                    }
                    ++tally.counts[*label][*type_index];
                }
            });
            if (info.records != counts[s]) {
                throw StoreError(StoreErrorKind::Inconsistent,
                                 "shard '" + shards[s].path +
                                     "' changed between aggregation passes");
            }
            return tally;
        });

    ContributionCounts out;
    out.counts.assign(class_count, std::vector<std::uint64_t>(types.size(), 0));
    out.totals.assign(types.size(), 0);
    for (const ShardTally& tally : tallies) {
        for (std::size_t k = 0; k < types.size(); ++k) {
            out.totals[k] += tally.totals[k];
            for (std::size_t j = 0; j < class_count; ++j) {
                out.counts[j][k] += tally.counts[j][k];
            }
        }
    }
    return out;
}

}  // namespace qrn::store
