#include "store/campaign_store.h"

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "stats/rng.h"
#include "store/cache_key.h"
#include "store/format.h"
#include "store/shard.h"

namespace qrn::store {

namespace {

/// Declares every store metric this path may touch, so a --metrics
/// manifest has the same structure whether the cache hit, missed or was
/// partially invalid (and for every --jobs value).
void declare_metrics() {
    if (!obs::enabled()) return;
    obs::add_counter("store.cache_hits", 0);
    obs::add_counter("store.cache_misses", 0);
    obs::add_counter("store.shards_reused", 0);
    obs::add_counter("store.shards_invalid", 0);
    obs::add_counter("store.shards_written", 0);
    obs::add_counter("store.records_written", 0);
    obs::add_counter("store.bytes_written", 0);
    obs::add_counter("store.shards_read", 0);
    obs::add_counter("store.records_read", 0);
    obs::add_counter("store.bytes_read", 0);
    obs::add_counter("store.checksum_failures", 0);
    obs::declare_timer("store.shard_write_ns");
    obs::declare_timer("store.shard_read_ns");
}

/// A sealed shard qualifies for reuse only when a full integrity scan
/// passes AND its header/footer identify it as exactly this fleet of
/// exactly this run. Any defect means "simulate instead".
bool reusable(const Store& store, const ShardEntry& entry, std::uint64_t key,
              std::uint64_t fleet_index, bool& was_corrupt) {
    try {
        const ShardInfo info = verify_shard(store.shard_path(entry));
        return info.cache_key == key && info.fleet_index == fleet_index &&
               info.records == entry.records;
    } catch (const StoreError& error) {
        // A missing file (Io) is a plain cache miss; anything else is a
        // shard that exists but cannot be trusted.
        was_corrupt = error.is_corruption();
        return false;
    }
}

}  // namespace

ShardEntry simulate_fleet_shard(const sim::CampaignConfig& config,
                                const std::string& dir,
                                std::size_t fleet_index,
                                std::string_view inputs_digest) {
    const std::uint64_t key = fleet_cache_key(config.base, config.hours_per_fleet,
                                              fleet_index, inputs_digest);
    sim::FleetConfig fleet = config.base;
    fleet.seed = stats::Rng::stream_seed(config.base.seed, fleet_index);
    const sim::IncidentLog log =
        sim::FleetSimulator(fleet).run(config.hours_per_fleet);

    ShardEntry entry;
    entry.fleet_index = fleet_index;
    entry.file = Store::shard_filename(fleet_index, key);
    entry.cache_key = key;
    entry.records = log.incidents.size();
    entry.exposure_hours = log.exposure.hours();
    write_shard(dir + "/" + entry.file, key, fleet_index, log);
    return entry;
}

StoreCampaignStats run_campaign_with_store(const sim::CampaignConfig& config,
                                           Store& store,
                                           std::string_view inputs_digest) {
    if (config.fleets == 0) {
        throw std::invalid_argument("run_campaign_with_store: fleets must be >= 1");
    }
    if (!(config.hours_per_fleet > 0.0)) {
        throw std::invalid_argument(
            "run_campaign_with_store: hours_per_fleet must be > 0");
    }
    declare_metrics();

    std::atomic<std::size_t> simulated{0};
    std::atomic<std::size_t> reused{0};
    std::atomic<std::size_t> invalid{0};

    StoreCampaignStats out;
    out.fleets_total = config.fleets;
    out.entries = exec::parallel_map<ShardEntry>(
        config.jobs, config.fleets, [&](std::size_t i) {
            const std::uint64_t key = fleet_cache_key(
                config.base, config.hours_per_fleet, i, inputs_digest);

            if (const ShardEntry* existing = store.find(i);
                existing != nullptr && existing->cache_key == key) {
                bool was_corrupt = false;
                ShardEntry entry = *existing;
                if (reusable(store, entry, key, i, was_corrupt)) {
                    reused.fetch_add(1, std::memory_order_relaxed);
                    if (obs::enabled()) {
                        obs::add_counter("store.cache_hits", 1);
                        obs::add_counter("store.shards_reused", 1);
                    }
                    return entry;
                }
                if (was_corrupt) {
                    invalid.fetch_add(1, std::memory_order_relaxed);
                    if (obs::enabled()) obs::add_counter("store.shards_invalid", 1);
                }
            }

            if (obs::enabled()) obs::add_counter("store.cache_misses", 1);
            simulated.fetch_add(1, std::memory_order_relaxed);
            const ShardEntry entry =
                simulate_fleet_shard(config, store.dir(), i, inputs_digest);

            // A previous run may have left this fleet under a different
            // key (different config); the new manifest row supersedes it,
            // and the stale file is removed best-effort.
            if (const ShardEntry* stale = store.find(i);
                stale != nullptr && stale->file != entry.file) {
                std::error_code ec;
                std::filesystem::remove(store.shard_path(*stale), ec);
            }
            store.record(entry);
            return entry;
        });

    out.fleets_simulated = simulated.load();
    out.fleets_reused = reused.load();
    out.shards_invalid = invalid.load();
    return out;
}

}  // namespace qrn::store
