#include "store/sync.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "store/format.h"

namespace qrn::store {

namespace detail {

namespace {
std::function<void(SyncKind, const std::string&)> g_sync_hook;
}  // namespace

void set_sync_hook_for_test(std::function<void(SyncKind, const std::string&)> hook) {
    g_sync_hook = std::move(hook);
}

}  // namespace detail

namespace {

[[noreturn]] void throw_io(const std::string& action, const std::string& path) {
    throw StoreError(StoreErrorKind::Io,
                     action + " failed for " + path + ": " + std::strerror(errno));
}

void sync_fd_path(SyncKind kind, const std::string& path, int open_flags) {
    if (detail::g_sync_hook) detail::g_sync_hook(kind, path);
    const int fd = ::open(path.c_str(), open_flags);
    if (fd < 0) throw_io("open for sync", path);
    if (::fsync(fd) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_io("fsync", path);
    }
    if (::close(fd) != 0) throw_io("close after sync", path);
}

}  // namespace

void sync_file(const std::string& path) {
    sync_fd_path(SyncKind::File, path, O_RDONLY | O_CLOEXEC);
}

void sync_directory(const std::string& path) {
    sync_fd_path(SyncKind::Directory, path, O_RDONLY | O_DIRECTORY | O_CLOEXEC);
}

}  // namespace qrn::store
