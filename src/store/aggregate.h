// Single-pass streaming aggregation over sealed shards.
//
// A resumed or cached campaign must print the same evidence, rates and
// heterogeneity statistics as the run that simulated everything in memory
// - digit for digit. These functions reproduce the CampaignResult
// aggregates by streaming shards in fleet order: integer tallies commute,
// and every floating-point fold (exposure, pooled events, the per-fleet
// rate summary) is performed serially in fleet order after the per-shard
// scans, so the summation order matches the in-memory path exactly.
// Per-shard scans are independent and run in parallel via qrn_exec; each
// holds O(block) memory, never a whole log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qrn/empirical.h"
#include "qrn/frequency.h"
#include "qrn/incident_type.h"
#include "qrn/verification.h"
#include "stats/histogram.h"
#include "stats/rate_estimation.h"

namespace qrn::store {

/// One shard to aggregate, in campaign fleet order.
struct ShardRef {
    std::uint64_t fleet_index = 0;
    std::string path;
};

/// Everything `qrn campaign` reports, rebuilt from shards.
struct StoreAggregate {
    std::vector<TypeEvidence> evidence;           ///< Pooled per-type evidence.
    ExposureHours total_exposure;                 ///< Fleet-order sum.
    double total_events = 0.0;                    ///< Incidents, fleet-order sum.
    std::uint64_t total_records = 0;
    std::size_t shard_count = 0;
    stats::RunningSummary per_fleet_rates;        ///< Of incident_rate() values.
    std::vector<stats::RateObservation> observations;  ///< Fleet order.

    /// Matches CampaignResult::pooled_incident_rate().
    [[nodiscard]] Frequency pooled_incident_rate() const;

    /// Matches CampaignResult::heterogeneity(); requires >= 2 shards.
    [[nodiscard]] stats::HeterogeneityResult heterogeneity() const;
};

/// Streams every shard once and pools evidence and rate statistics.
/// Shards are scanned in parallel (`jobs`); all folds are fleet-order
/// serial, so the result is bit-identical for every jobs value and equal
/// to the in-memory CampaignResult aggregates. Throws StoreError on any
/// shard defect.
[[nodiscard]] StoreAggregate aggregate_evidence(const std::vector<ShardRef>& shards,
                                                const IncidentTypeSet& types,
                                                unsigned jobs);

/// Streaming equivalent of label_incidents(pooled, ..., seed, jobs) +
/// tally_contributions: record j of shard s is labelled with the RNG
/// stream of its *global* index (fleet-order prefix sums of record
/// counts), so the tallies equal the in-memory path exactly. Two passes
/// over each shard: one to fix the global offsets, one to label.
[[nodiscard]] ContributionCounts aggregate_contributions(
    const std::vector<ShardRef>& shards, const IncidentTypeSet& types,
    std::size_t class_count, const RiskNorm& norm, const InjuryRiskModel& model,
    const std::vector<double>& near_miss_profile, std::uint64_t seed, unsigned jobs);

}  // namespace qrn::store
