// The qrn-store shard format: on-disk constants, typed failure modes and
// the little-endian byte codecs shared by the writer and the reader.
//
// A shard is one fleet's incident log as a block-based binary file
// (docs/STORE.md has the full specification):
//
//   header   magic "QRNSHRD1", u32 version, u32 reserved flags,
//            u64 cache key, u64 fleet index, u32 CRC of the above
//   blocks   u32 block tag, u32 record count (1..kBlockRecords),
//            records (28 bytes each), u32 CRC of the record payload
//   footer   u32 footer tag, u64 record total, f64 exposure hours,
//            six u64 operational counters, u64 cache key (again),
//            u32 CRC of the footer payload
//
// All integers and doubles are little-endian; doubles travel as their
// IEEE-754 bit patterns, so a round-trip is bit-exact and a resumed
// campaign reproduces the in-memory statistics digit for digit. The footer
// only exists on sealed shards: a reader that hits end-of-file before the
// footer tag is looking at an interrupted write and must fail loudly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "qrn/incident.h"

namespace qrn::store {

inline constexpr std::string_view kShardMagic = "QRNSHRD1";  ///< 8 bytes.
inline constexpr std::uint32_t kShardVersion = 1;
inline constexpr std::uint32_t kBlockTag = 0xB10C0001u;
inline constexpr std::uint32_t kFooterTag = 0xF007E001u;
/// Records per payload block; the last block of a shard may hold fewer.
inline constexpr std::uint32_t kBlockRecords = 512;
/// Encoded size of one incident record in bytes.
inline constexpr std::size_t kRecordBytes = 28;
/// Suffix of in-progress shard files; the atomic rename on seal removes it,
/// so a file still wearing it is an interrupted write.
inline constexpr std::string_view kTempSuffix = ".tmp";
/// Extension of shard files inside a store directory.
inline constexpr std::string_view kShardExtension = ".qrs";

/// Why a store operation failed; tests and exit-code mapping key off this
/// (corruption exits 2, plain I/O exits 3 - see the CLI contract).
enum class StoreErrorKind {
    Io,            ///< File missing, unreadable or unwritable.
    BadMagic,      ///< Not a qrn-store shard at all.
    BadVersion,    ///< A shard from a different format revision.
    Truncated,     ///< End-of-file before the sealed footer (crashed write).
    Checksum,      ///< A block or footer CRC mismatch (bit rot).
    Inconsistent,  ///< Structurally valid but self-contradictory (counts,
                   ///< keys or record fields that cannot all be true).
};

[[nodiscard]] std::string_view to_string(StoreErrorKind kind) noexcept;

/// A shard or store-manifest operation failed. what() carries the path and
/// the reason; kind() says whether the data is corrupt or merely absent.
class StoreError : public std::runtime_error {
public:
    StoreError(StoreErrorKind kind, const std::string& message);

    [[nodiscard]] StoreErrorKind kind() const noexcept { return kind_; }

    /// True for every kind except Io: the bytes exist but cannot be
    /// trusted, so callers must re-simulate or report corruption.
    [[nodiscard]] bool is_corruption() const noexcept {
        return kind_ != StoreErrorKind::Io;
    }

private:
    StoreErrorKind kind_;
};

/// The sealed footer's operational totals: everything an IncidentLog
/// carries besides the incident records themselves.
struct ShardTotals {
    double exposure_hours = 0.0;
    std::uint64_t encounters = 0;
    std::uint64_t emergency_brakings = 0;
    std::uint64_t degraded_hours = 0;
    std::uint64_t odd_exits = 0;
    std::uint64_t mrm_executions = 0;
    std::uint64_t unmonitored_exits = 0;

    friend bool operator==(const ShardTotals&, const ShardTotals&) = default;
};

// ---- little-endian byte codecs ----------------------------------------
//
// Explicit byte assembly instead of struct memcpy: the format is defined
// by these functions, not by any compiler's padding or host endianness.

void put_u32(std::string& out, std::uint32_t value);
void put_u64(std::string& out, std::uint64_t value);
/// Appends the IEEE-754 bit pattern; NaN payloads round-trip unchanged.
void put_f64(std::string& out, double value);

/// Reads from `bytes` at `offset`; the caller guarantees the range.
[[nodiscard]] std::uint32_t get_u32(std::string_view bytes, std::size_t offset) noexcept;
[[nodiscard]] std::uint64_t get_u64(std::string_view bytes, std::size_t offset) noexcept;
[[nodiscard]] double get_f64(std::string_view bytes, std::size_t offset) noexcept;

// ---- record codec ------------------------------------------------------
//
// The 28-byte incident record is the wire format of the whole toolkit:
// shard blocks on disk and qrn-serve classify payloads on the socket are
// both sequences of exactly these bytes, so a client can stream records
// that land in a shard bit-identically.

/// Appends the kRecordBytes encoding of one incident.
void encode_record(std::string& out, const Incident& incident);

/// Decodes the record at `offset`; the caller guarantees kRecordBytes are
/// available. `context` prefixes error messages (a path or peer name).
/// Throws StoreError(Inconsistent) on out-of-range enum bytes or records
/// violating qrn::validate().
[[nodiscard]] Incident decode_record(std::string_view bytes, std::size_t offset,
                                     const std::string& context);

}  // namespace qrn::store
