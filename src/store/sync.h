// Durability primitives for the shard store: fd-level fsync of files and
// directories, the part of "crash-safe" that buffered streams and
// std::filesystem::rename cannot provide on their own.
//
// A sealed shard is durable only once (a) the temp file's bytes have
// reached the device *before* the atomic rename publishes the final name,
// and (b) the parent directory entry created by the rename has itself been
// synced. ShardWriter::seal follows exactly that order; these helpers keep
// the POSIX plumbing in one place and expose a test seam so the ordering
// is verifiable without pulling a power plug.
#pragma once

#include <functional>
#include <string>

namespace qrn::store {

/// What a sync request targets - used by the test hook to assert ordering.
enum class SyncKind {
    File,       ///< fsync of a regular file's contents + metadata
    Directory,  ///< fsync of a directory (publishes rename/create entries)
};

/// Flushes the file at `path` to stable storage (open + fsync + close).
/// Throws StoreError{Io} when the file cannot be opened or synced.
void sync_file(const std::string& path);

/// Flushes the directory at `path` so entries renamed or created inside it
/// survive a crash. Throws StoreError{Io} on failure.
void sync_directory(const std::string& path);

namespace detail {
/// Test seam: when set, invoked with (kind, path) before each real fsync.
/// Tests use it to record the sync order seal() performs and to inject
/// failures (anything the hook throws propagates to the caller before the
/// fsync happens). Pass nullptr to restore production behaviour. Not
/// thread-safe against concurrent store writes; tests only.
void set_sync_hook_for_test(std::function<void(SyncKind, const std::string&)> hook);
}  // namespace detail

}  // namespace qrn::store
