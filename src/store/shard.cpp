#include "store/shard.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/metrics.h"
#include "store/crc32.h"
#include "store/sync.h"

namespace qrn::store {

namespace {

/// Header layout: magic(8) version(4) flags(4) key(8) fleet(8) crc(4).
constexpr std::size_t kHeaderPayloadBytes = 32;
constexpr std::size_t kHeaderBytes = kHeaderPayloadBytes + 4;
/// Footer payload: records(8) exposure(8) six counters(48) key(8) = 72.
constexpr std::size_t kFooterPayloadBytes = 72;

[[nodiscard]] std::string encode_footer_payload(std::uint64_t records,
                                                const ShardTotals& totals,
                                                std::uint64_t cache_key) {
    std::string payload;
    payload.reserve(kFooterPayloadBytes);
    put_u64(payload, records);
    put_f64(payload, totals.exposure_hours);
    put_u64(payload, totals.encounters);
    put_u64(payload, totals.emergency_brakings);
    put_u64(payload, totals.degraded_hours);
    put_u64(payload, totals.odd_exits);
    put_u64(payload, totals.mrm_executions);
    put_u64(payload, totals.unmonitored_exits);
    put_u64(payload, cache_key);
    return payload;
}

}  // namespace

// ---- writer ------------------------------------------------------------

struct ShardWriter::Out {
    std::ofstream stream;
};

ShardWriter::ShardWriter(std::string path, std::uint64_t cache_key,
                         std::uint64_t fleet_index)
    : path_(std::move(path)),
      tmp_path_(path_ + std::string(kTempSuffix)),
      out_(std::make_unique<Out>()),
      cache_key_(cache_key),
      fleet_index_(fleet_index) {
    out_->stream.open(tmp_path_, std::ios::binary | std::ios::trunc);
    if (!out_->stream) {
        throw StoreError(StoreErrorKind::Io, "cannot create " + tmp_path_);
    }
    std::string header;
    header.reserve(kHeaderBytes);
    header.append(kShardMagic);
    put_u32(header, kShardVersion);
    put_u32(header, 0);  // reserved flags
    put_u64(header, cache_key_);
    put_u64(header, fleet_index_);
    put_u32(header, crc32(header));
    write_bytes(header);
}

ShardWriter::~ShardWriter() {
    if (!sealed_) {
        // Interrupted write: close and drop the temporary so no partial
        // file survives under any name. Errors are deliberately ignored -
        // a destructor must not throw and the .tmp suffix already marks
        // the file as untrusted.
        out_->stream.close();
        std::error_code ignored;
        std::filesystem::remove(tmp_path_, ignored);
    }
}

void ShardWriter::write_bytes(const std::string& bytes) {
    out_->stream.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out_->stream) {
        throw StoreError(StoreErrorKind::Io, "write failed for " + tmp_path_);
    }
    bytes_ += bytes.size();
}

void ShardWriter::append(const Incident& incident) {
    if (sealed_) {
        throw std::logic_error("ShardWriter::append: shard already sealed");
    }
    encode_record(block_, incident);
    ++block_records_;
    ++records_;
    if (block_records_ == kBlockRecords) flush_block();
}

void ShardWriter::append_columns(const qrn::IncidentColumns& columns) {
    if (sealed_) {
        throw std::logic_error("ShardWriter::append_columns: shard already sealed");
    }
    // Straight columns -> bytes: the column vectors mirror the record
    // layout, so serialization is a strided gather with no Incident in
    // between. Byte-identical to append()ing each row (same encoding, same
    // block boundaries).
    const auto& firsts = columns.firsts();
    const auto& seconds = columns.seconds();
    const auto& mechanisms = columns.mechanisms();
    const auto& induced = columns.induced_flags();
    const auto& speeds = columns.relative_speeds_kmh();
    const auto& distances = columns.min_distances_m();
    const auto& timestamps = columns.timestamps_hours();
    for (std::size_t i = 0; i < columns.size(); ++i) {
        block_.push_back(static_cast<char>(firsts[i]));
        block_.push_back(static_cast<char>(seconds[i]));
        block_.push_back(static_cast<char>(mechanisms[i]));
        block_.push_back(static_cast<char>(induced[i]));
        put_f64(block_, speeds[i]);
        put_f64(block_, distances[i]);
        put_f64(block_, timestamps[i]);
        ++block_records_;
        ++records_;
        if (block_records_ == kBlockRecords) flush_block();
    }
}

void ShardWriter::flush_block() {
    if (block_records_ == 0) return;
    std::string framed;
    framed.reserve(8 + block_.size() + 4);
    put_u32(framed, kBlockTag);
    put_u32(framed, block_records_);
    framed.append(block_);
    put_u32(framed, crc32(block_));
    write_bytes(framed);
    block_.clear();
    block_records_ = 0;
}

SealReceipt ShardWriter::seal(const ShardTotals& totals) {
    if (sealed_) {
        throw std::logic_error("ShardWriter::seal: shard already sealed");
    }
    flush_block();
    std::string footer;
    footer.reserve(4 + kFooterPayloadBytes + 4);
    put_u32(footer, kFooterTag);
    const std::string payload = encode_footer_payload(records_, totals, cache_key_);
    footer.append(payload);
    put_u32(footer, crc32(payload));
    write_bytes(footer);
    out_->stream.flush();
    if (!out_->stream) {
        throw StoreError(StoreErrorKind::Io, "flush failed for " + tmp_path_);
    }
    out_->stream.close();
    // Durability order matters: the temp file's bytes must be on stable
    // storage BEFORE the rename publishes the final name (else a crash can
    // leave a fully-named shard with torn contents), and the directory
    // entry the rename creates must be synced AFTER (else the shard can
    // vanish from the directory even though its bytes survived).
    sync_file(tmp_path_);
    std::error_code rename_error;
    std::filesystem::rename(tmp_path_, path_, rename_error);
    if (rename_error) {
        throw StoreError(StoreErrorKind::Io, "cannot rename " + tmp_path_ +
                                                 " to " + path_ + ": " +
                                                 rename_error.message());
    }
    const std::string parent =
        std::filesystem::path(path_).parent_path().string();
    sync_directory(parent.empty() ? "." : parent);
    sealed_ = true;
    if (obs::enabled()) {
        obs::add_counter("store.shards_written", 1);
        obs::add_counter("store.records_written", records_);
        obs::add_counter("store.bytes_written", bytes_);
    }
    return SealReceipt{records_, bytes_};
}

// ---- reader ------------------------------------------------------------

struct ShardReader::In {
    std::ifstream stream;
};

ShardReader::ShardReader(std::string path)
    : path_(std::move(path)), in_(std::make_unique<In>()) {
    in_->stream.open(path_, std::ios::binary);
    if (!in_->stream) {
        throw StoreError(StoreErrorKind::Io, "cannot open " + path_);
    }
    std::string header;
    read_exact(header, kHeaderBytes, "header");
    if (std::string_view(header).substr(0, kShardMagic.size()) != kShardMagic) {
        throw StoreError(StoreErrorKind::BadMagic,
                         path_ + ": not a qrn-store shard (bad magic)");
    }
    const std::uint32_t version = get_u32(header, 8);
    if (version != kShardVersion) {
        throw StoreError(StoreErrorKind::BadVersion,
                         path_ + ": shard format version " +
                             std::to_string(version) + ", this build reads " +
                             std::to_string(kShardVersion));
    }
    const std::uint32_t stored_crc = get_u32(header, kHeaderPayloadBytes);
    const std::uint32_t actual_crc =
        crc32(std::string_view(header).substr(0, kHeaderPayloadBytes));
    if (stored_crc != actual_crc) {
        throw StoreError(StoreErrorKind::Checksum,
                         path_ + ": header checksum mismatch");
    }
    cache_key_ = get_u64(header, 16);
    fleet_index_ = get_u64(header, 24);
}

ShardReader::~ShardReader() = default;

std::size_t ShardReader::read_some(char* into, std::size_t want) {
    in_->stream.read(into, static_cast<std::streamsize>(want));
    const auto got = static_cast<std::size_t>(in_->stream.gcount());
    if (in_->stream.bad()) {
        throw StoreError(StoreErrorKind::Io, "read failed for " + path_);
    }
    bytes_read_ += got;
    return got;
}

void ShardReader::read_exact(std::string& into, std::size_t want,
                             std::string_view what) {
    into.resize(want);
    const std::size_t got = read_some(into.data(), want);
    if (got != want) {
        throw StoreError(StoreErrorKind::Truncated,
                         path_ + ": unexpected end of file inside " +
                             std::string(what) + " (wanted " +
                             std::to_string(want) + " bytes, got " +
                             std::to_string(got) + "); the shard was never "
                             "sealed or has been cut short");
    }
}

ShardInfo ShardReader::for_each(const std::function<void(const Incident&)>& fn) {
    return stream_blocks([&](std::string_view payload, std::uint32_t count) {
        for (std::uint32_t r = 0; r < count; ++r) {
            fn(decode_record(payload, static_cast<std::size_t>(r) * kRecordBytes,
                             path_));
        }
    });
}

ShardInfo ShardReader::for_each_block(
    const std::function<void(const qrn::IncidentColumns&)>& fn) {
    // One columns buffer reused for every block: capacity settles at
    // kBlockRecords rows and the scan allocates nothing further.
    qrn::IncidentColumns batch;
    return stream_blocks([&](std::string_view payload, std::uint32_t count) {
        batch.clear();
        batch.reserve(count);
        for (std::uint32_t r = 0; r < count; ++r) {
            batch.push_back(decode_record(
                payload, static_cast<std::size_t>(r) * kRecordBytes, path_));
        }
        fn(batch);
    });
}

ShardInfo ShardReader::stream_blocks(
    const std::function<void(std::string_view payload, std::uint32_t count)>&
        on_block) {
    if (consumed_) {
        throw std::logic_error("ShardReader::for_each: reader already consumed");
    }
    consumed_ = true;
    const obs::ScopedTimer timer("store.shard_read_ns");
    try {
        std::uint64_t records = 0;
        std::string buffer;
        for (;;) {
            char tag_bytes[4];
            const std::size_t got = read_some(tag_bytes, 4);
            if (got == 0) {
                throw StoreError(StoreErrorKind::Truncated,
                                 path_ + ": end of file before the sealed "
                                         "footer; the writing run was "
                                         "interrupted");
            }
            if (got != 4) {
                throw StoreError(StoreErrorKind::Truncated,
                                 path_ + ": torn frame tag at end of file");
            }
            const std::uint32_t tag = get_u32(std::string_view(tag_bytes, 4), 0);
            if (tag == kBlockTag) {
                read_exact(buffer, 4, "block header");
                const std::uint32_t count = get_u32(buffer, 0);
                if (count == 0 || count > kBlockRecords) {
                    throw StoreError(StoreErrorKind::Inconsistent,
                                     path_ + ": block claims " +
                                         std::to_string(count) +
                                         " records (valid range is 1.." +
                                         std::to_string(kBlockRecords) + ")");
                }
                read_exact(buffer, static_cast<std::size_t>(count) * kRecordBytes + 4,
                           "record block");
                const std::string_view payload =
                    std::string_view(buffer).substr(0, buffer.size() - 4);
                const std::uint32_t stored = get_u32(buffer, buffer.size() - 4);
                if (stored != crc32(payload)) {
                    throw StoreError(StoreErrorKind::Checksum,
                                     path_ + ": block checksum mismatch "
                                             "(bit rot or torn write)");
                }
                on_block(payload, count);
                records += count;
                continue;
            }
            if (tag == kFooterTag) {
                read_exact(buffer, kFooterPayloadBytes + 4, "footer");
                const std::string_view payload =
                    std::string_view(buffer).substr(0, kFooterPayloadBytes);
                const std::uint32_t stored = get_u32(buffer, kFooterPayloadBytes);
                if (stored != crc32(payload)) {
                    throw StoreError(StoreErrorKind::Checksum,
                                     path_ + ": footer checksum mismatch");
                }
                ShardInfo info;
                info.cache_key = cache_key_;
                info.fleet_index = fleet_index_;
                info.records = get_u64(payload, 0);
                info.totals.exposure_hours = get_f64(payload, 8);
                info.totals.encounters = get_u64(payload, 16);
                info.totals.emergency_brakings = get_u64(payload, 24);
                info.totals.degraded_hours = get_u64(payload, 32);
                info.totals.odd_exits = get_u64(payload, 40);
                info.totals.mrm_executions = get_u64(payload, 48);
                info.totals.unmonitored_exits = get_u64(payload, 56);
                const std::uint64_t footer_key = get_u64(payload, 64);
                if (info.records != records) {
                    throw StoreError(
                        StoreErrorKind::Inconsistent,
                        path_ + ": footer claims " + std::to_string(info.records) +
                            " records but " + std::to_string(records) +
                            " were present");
                }
                if (footer_key != cache_key_) {
                    throw StoreError(StoreErrorKind::Inconsistent,
                                     path_ + ": footer cache key disagrees "
                                             "with the header");
                }
                if (!std::isfinite(info.totals.exposure_hours) ||
                    info.totals.exposure_hours < 0.0) {
                    throw StoreError(StoreErrorKind::Inconsistent,
                                     path_ + ": footer exposure is not a "
                                             "finite non-negative number");
                }
                char trailing;
                if (read_some(&trailing, 1) != 0) {
                    throw StoreError(StoreErrorKind::Inconsistent,
                                     path_ + ": trailing bytes after the "
                                             "sealed footer");
                }
                info.file_bytes = bytes_read_;
                if (obs::enabled()) {
                    obs::add_counter("store.shards_read", 1);
                    obs::add_counter("store.records_read", info.records);
                    obs::add_counter("store.bytes_read", info.file_bytes);
                }
                return info;
            }
            throw StoreError(StoreErrorKind::Inconsistent,
                             path_ + ": unrecognized frame tag (file damaged "
                                     "or not a shard)");
        }
    } catch (const StoreError& error) {
        if (error.is_corruption() && obs::enabled()) {
            obs::add_counter("store.checksum_failures", 1);
        }
        throw;
    }
}

// ---- log-level convenience ---------------------------------------------

ShardTotals totals_of(const sim::IncidentLog& log) noexcept {
    ShardTotals totals;
    totals.exposure_hours = log.exposure.hours();
    totals.encounters = log.encounters;
    totals.emergency_brakings = log.emergency_brakings;
    totals.degraded_hours = log.degraded_hours;
    totals.odd_exits = log.odd_exits;
    totals.mrm_executions = log.mrm_executions;
    totals.unmonitored_exits = log.unmonitored_exits;
    return totals;
}

void write_shard(const std::string& path, std::uint64_t cache_key,
                 std::uint64_t fleet_index, const sim::IncidentLog& log) {
    const obs::ScopedTimer timer("store.shard_write_ns");
    ShardWriter writer(path, cache_key, fleet_index);
    writer.append_columns(log.incidents);
    const SealReceipt receipt = writer.seal(totals_of(log));
    if (receipt.records != log.incidents.size()) {
        throw StoreError(StoreErrorKind::Inconsistent,
                         path + ": sealed " + std::to_string(receipt.records) +
                             " records but the log holds " +
                             std::to_string(log.incidents.size()));
    }
}

ShardInfo read_shard(const std::string& path, sim::IncidentLog& out) {
    ShardReader reader(path);
    sim::IncidentLog log;
    const ShardInfo info = reader.for_each_block(
        [&log](const qrn::IncidentColumns& block) { log.incidents.append(block); });
    log.exposure = ExposureHours(info.totals.exposure_hours);
    log.encounters = info.totals.encounters;
    log.emergency_brakings = info.totals.emergency_brakings;
    log.degraded_hours = info.totals.degraded_hours;
    log.odd_exits = info.totals.odd_exits;
    log.mrm_executions = info.totals.mrm_executions;
    log.unmonitored_exits = info.totals.unmonitored_exits;
    out = std::move(log);
    return info;
}

ShardInfo verify_shard(const std::string& path) {
    ShardReader reader(path);
    return reader.for_each([](const Incident&) {});
}

}  // namespace qrn::store
