// Shard writer and reader: one fleet's incident log as a crash-safe,
// checksummed binary file.
//
// Writing is append-only into `<path>.tmp`; seal() writes the footer,
// flushes, and atomically renames onto the final path. A crash at any
// point therefore leaves either no file, or a `.tmp` file a reader will
// never be handed, or a fully sealed shard - never a half-written file
// under the final name. Reading streams block by block, verifying each
// CRC before any record is surfaced, and fails loudly (typed StoreError)
// on truncation, bit-flips, bad magic, version mismatches and totals that
// disagree with the records actually present. Trust is earned per block:
// a reader never returns data it has not checksummed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "qrn/incident.h"
#include "qrn/incident_columns.h"
#include "sim/fleet.h"
#include "store/format.h"

namespace qrn::store {

/// Everything a sealed shard says about itself (header + footer).
struct ShardInfo {
    std::uint64_t cache_key = 0;    ///< Content key of the producing run.
    std::uint64_t fleet_index = 0;  ///< Position in the campaign's fleet order.
    std::uint64_t records = 0;      ///< Incident records in the shard.
    ShardTotals totals;             ///< Exposure and operational counters.
    std::uint64_t file_bytes = 0;   ///< Total bytes consumed by the reader.
};

/// What seal() just made durable. Returning this (and marking it
/// [[nodiscard]]) forces every call site to face the evidence that the
/// shard reached its final name: the record count the footer claims and
/// the bytes that were synced. Callers that track their own counts
/// cross-check against `records`; qrn-lint's unchecked-seal rule flags
/// any site that drops the receipt.
struct SealReceipt {
    std::uint64_t records = 0;     ///< records the sealed footer claims
    std::uint64_t file_bytes = 0;  ///< bytes written, header to footer
};

/// Append-only shard writer. Records buffer into fixed-size blocks; each
/// block is checksummed as it is flushed. The shard does not exist under
/// its final path until seal() succeeds; a writer destroyed unsealed
/// removes its temporary file.
class ShardWriter {
public:
    /// Opens `<path>.tmp` for writing and emits the header. Throws
    /// StoreError(Io) when the file cannot be created.
    ShardWriter(std::string path, std::uint64_t cache_key, std::uint64_t fleet_index);
    ~ShardWriter();

    ShardWriter(const ShardWriter&) = delete;
    ShardWriter& operator=(const ShardWriter&) = delete;

    /// Appends one record. Throws StoreError(Io) on write failure and
    /// std::logic_error when called after seal().
    void append(const Incident& incident);

    /// Appends every row of `columns` in order, encoding straight from the
    /// column vectors (no per-record Incident materialization - the
    /// columns mirror the record layout field for field). Byte-identical
    /// to appending each row through append().
    void append_columns(const IncidentColumns& columns);

    /// Flushes, writes the sealed footer and atomically renames the file
    /// onto its final path. Throws StoreError(Io) when any step fails.
    /// Returns the durability receipt; discarding it is a lint finding
    /// (unchecked-seal) as well as a compiler warning.
    [[nodiscard]] SealReceipt seal(const ShardTotals& totals);

    [[nodiscard]] std::uint64_t records_written() const noexcept { return records_; }
    [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    void flush_block();
    void write_bytes(const std::string& bytes);

    std::string path_;
    std::string tmp_path_;
    struct Out;  ///< Keeps <fstream> out of every includer of this header.
    std::unique_ptr<Out> out_;
    std::string block_;
    std::uint32_t block_records_ = 0;
    std::uint64_t records_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t cache_key_ = 0;
    std::uint64_t fleet_index_ = 0;
    bool sealed_ = false;
};

/// Streaming shard reader. Construction validates the header; for_each
/// then streams every record through `fn` (block-at-a-time, each block
/// CRC-checked before its records are surfaced) and finally validates the
/// sealed footer against what was actually read. Single pass, O(block)
/// memory: aggregation over shards never materializes a whole log.
class ShardReader {
public:
    /// Opens the shard and validates magic, version and header CRC.
    explicit ShardReader(std::string path);
    ~ShardReader();

    ShardReader(const ShardReader&) = delete;
    ShardReader& operator=(const ShardReader&) = delete;

    [[nodiscard]] std::uint64_t cache_key() const noexcept { return cache_key_; }
    [[nodiscard]] std::uint64_t fleet_index() const noexcept { return fleet_index_; }

    /// Streams all records, then the footer check. Throws StoreError on
    /// any defect; on success returns the shard's self-description.
    /// Consumes the reader (single pass).
    ShardInfo for_each(const std::function<void(const Incident&)>& fn);

    /// Streams CRC-checked blocks decoded as columns: `fn` sees one
    /// IncidentColumns batch per block (up to kBlockRecords rows), backed
    /// by a buffer reused across blocks. Bulk consumers (aggregation, log
    /// reload) scan columns without a per-record callback.
    ShardInfo for_each_block(const std::function<void(const IncidentColumns&)>& fn);

private:
    /// The shared streaming core: walks block frames (each CRC-checked
    /// before `on_block` sees its payload) and validates the footer.
    ShardInfo stream_blocks(
        const std::function<void(std::string_view payload, std::uint32_t count)>&
            on_block);

    [[nodiscard]] std::size_t read_some(char* into, std::size_t want);
    void read_exact(std::string& into, std::size_t want, std::string_view what);

    std::string path_;
    struct In;  ///< Keeps <fstream> out of every includer of this header.
    std::unique_ptr<In> in_;
    std::uint64_t cache_key_ = 0;
    std::uint64_t fleet_index_ = 0;
    std::uint64_t bytes_read_ = 0;
    bool consumed_ = false;
};

/// The footer totals an IncidentLog would seal with.
[[nodiscard]] ShardTotals totals_of(const sim::IncidentLog& log) noexcept;

/// Writes one fleet log as a sealed shard (records in log order). The
/// write is timed and counted through qrn_obs when metrics are armed.
void write_shard(const std::string& path, std::uint64_t cache_key,
                 std::uint64_t fleet_index, const sim::IncidentLog& log);

/// Reads a sealed shard back into an IncidentLog (bit-identical to the log
/// that was written: doubles travel as IEEE bit patterns). Throws
/// StoreError on any defect.
ShardInfo read_shard(const std::string& path, sim::IncidentLog& out);

/// Full integrity scan without materializing records.
ShardInfo verify_shard(const std::string& path);

}  // namespace qrn::store
