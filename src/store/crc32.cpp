#include "store/crc32.h"

#include <array>

namespace qrn::store {

namespace {

/// The reflected CRC-32 table for polynomial 0xEDB88320, computed once.
const std::array<std::uint32_t, 256>& table() {
    static const std::array<std::uint32_t, 256> kTable = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int bit = 0; bit < 8; ++bit) {
                c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            }
            t[n] = c;
        }
        return t;
    }();
    return kTable;
}

}  // namespace

void Crc32::update(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    const auto& t = table();
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < size; ++i) {
        c = t[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    }
    state_ = c;
}

std::uint32_t crc32(std::string_view bytes) noexcept {
    Crc32 crc;
    crc.update(bytes);
    return crc.value();
}

}  // namespace qrn::store
