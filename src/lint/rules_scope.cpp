#include "lint/rules_scope.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <string>

#include "lint/decls.h"
#include "lint/scope.h"

namespace qrn::lint {

namespace {

template <std::size_t N>
[[nodiscard]] bool any_of_names(const std::array<std::string_view, N>& names,
                                std::string_view text) {
    return std::find(names.begin(), names.end(), text) != names.end();
}

// ---- marker-comment regions (qrn:hotloop, qrn:dispatcher) --------------

struct MarkerRegion {
    int begin_line;
    int end_line;
};

/// Parses `qrn:<name>(begin)` / `qrn:<name>(end)` comment pairs; an
/// unbalanced marker is itself a finding under `rule` (a region must not
/// silently stop being checked).
[[nodiscard]] std::vector<MarkerRegion> marker_regions(
    const FileContext& c, std::string_view name, const char* rule,
    std::vector<Finding>& out) {
    const std::string begin_marker = "qrn:" + std::string(name) + "(begin)";
    const std::string end_marker = "qrn:" + std::string(name) + "(end)";
    std::vector<MarkerRegion> regions;
    int open_line = -1;
    for (const Token& t : c.tokens) {
        if (t.kind != TokKind::Comment) continue;
        if (t.text.find(begin_marker) != std::string::npos) {
            if (open_line >= 0) {
                out.push_back({c.path, t.line, rule,
                               "nested " + begin_marker +
                                   "; close the region opened on line " +
                                   std::to_string(open_line) + " first"});
            } else {
                open_line = t.line;
            }
        } else if (t.text.find(end_marker) != std::string::npos) {
            if (open_line < 0) {
                out.push_back({c.path, t.line, rule,
                               end_marker + " without a matching " +
                                   begin_marker});
            } else {
                regions.push_back({open_line, t.line});
                open_line = -1;
            }
        }
    }
    if (open_line >= 0) {
        out.push_back({c.path, open_line, rule,
                       begin_marker + " never closed with " + end_marker});
    }
    return regions;
}

// ---- lock-guard RAII regions -------------------------------------------

constexpr std::array<std::string_view, 4> kLockGuardTypes{
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};

struct GuardRegion {
    std::string mutex;    ///< terminal identifier of the guarded mutex expr
    std::size_t from_ci;  ///< guard live from here to the end of `scope`
    int scope;
    int line;
};

/// Every lock_guard/unique_lock/scoped_lock/shared_lock local: the guard
/// holds its mutex from its declaration to the end of its scope. Mutexes
/// are identified by the terminal identifier of each constructor argument
/// ("mutex" for `lock(job->pending->mutex)`), which is exactly as precise
/// as the annotations that consume it.
[[nodiscard]] std::vector<GuardRegion> guard_regions(const SemanticModel& m) {
    std::vector<GuardRegion> regions;
    for (const Declaration& d : m.decls.decls()) {
        if (d.kind != DeclKind::Local) continue;
        if (!any_of_names(kLockGuardTypes, d.type_terminal())) continue;
        // A "guard" at namespace scope is a function declaration the
        // coarse parser misread; real guards live inside functions.
        if (m.scopes.enclosing_function(d.scope) == -1) continue;
        for (const std::string& terminal : d.init_arg_terminals) {
            if (terminal == "defer_lock" || terminal == "try_to_lock" ||
                terminal == "adopt_lock") {
                continue;
            }
            regions.push_back({terminal, d.name_ci, d.scope, d.line});
        }
    }
    return regions;
}

/// Last component of a possibly ::-qualified name ("drain" for
/// "Server::drain").
[[nodiscard]] std::string_view last_component(std::string_view name) {
    const std::size_t at = name.rfind("::");
    return at == std::string_view::npos ? name : name.substr(at + 2);
}

}  // namespace

// ---- guarded-by --------------------------------------------------------

void check_guarded_by(const FileContext& c, std::vector<Finding>& out) {
    const SemanticModel& m = semantics(c);
    if (m.guarded.empty()) return;

    struct GuardedMember {
        std::string name;
        std::string mutex;
        int class_scope;  ///< -1 for the file-wide form
    };
    std::vector<GuardedMember> members;
    for (const GuardedByAnnotation& g : m.guarded) {
        if (!g.member.empty()) {
            members.push_back({g.member, g.mutex, -1});
        } else if (g.decl >= 0 &&
                   m.decls.decls()[static_cast<std::size_t>(g.decl)].kind ==
                       DeclKind::Member) {
            const Declaration& d =
                m.decls.decls()[static_cast<std::size_t>(g.decl)];
            members.push_back({d.name, g.mutex, d.scope});
        }
        // Attached annotations that bound to nothing (or to a non-member)
        // are guard-annotation findings, not enforcement input.
    }
    if (members.empty()) return;

    const std::vector<GuardRegion> regions = guard_regions(m);
    const CodeView& v = m.view;
    std::set<std::pair<int, std::string>> reported;

    for (std::size_t ci = 0; ci < v.size(); ++ci) {
        if (v.is_pp(ci)) continue;
        const Token& t = v.tok(ci);
        if (t.kind != TokKind::Identifier) continue;
        for (const GuardedMember& g : members) {
            if (t.text != g.name) continue;
            const std::size_t prev = v.prev(ci);
            if (prev < v.size() && v.is(prev, "::")) break;  // Class::name
            const bool member_access =
                prev < v.size() &&
                (v.is(prev, ".") ||
                 (v.is(prev, ">") && v.prev(prev) < v.size() &&
                  v.is(v.prev(prev), "-")));
            // `obj->status()` is a method call, not a touch of a guarded
            // data member of the same name (annotations only ever bind to
            // data members - parse_statement rejects method declarators).
            if (member_access) {
                const std::size_t after = v.next(ci);
                if (after < v.size() && v.is(after, "(")) break;
            }

            const int use_scope = m.scopes.scope_at(ci);
            const int fn = m.scopes.enclosing_function(use_scope);
            // Outside any function body: the declaration itself, default
            // member initializers, annotation targets.
            if (fn == -1) break;
            // The declared name of any declaration is not a use.
            const bool is_decl_site = std::any_of(
                m.decls.decls().begin(), m.decls.decls().end(),
                [&](const Declaration& d) { return d.name_ci == ci; });
            if (is_decl_site) break;

            const std::string& fn_name =
                m.scopes.scopes()[static_cast<std::size_t>(fn)].name;
            if (!member_access) {
                // A local or parameter of the same name shadows the member.
                if (m.decls.visible_local(g.name, ci, use_scope, m.scopes) !=
                    nullptr) {
                    break;
                }
                if (g.class_scope >= 0) {
                    const std::string& class_name =
                        m.scopes.scopes()[static_cast<std::size_t>(g.class_scope)]
                            .name;
                    const bool in_class_body =
                        m.scopes.is_ancestor(g.class_scope, use_scope);
                    const bool out_of_line =
                        !class_name.empty() &&
                        fn_name.rfind(class_name + "::", 0) == 0;
                    if (!in_class_body && !out_of_line) break;
                }
            }
            if (g.class_scope >= 0) {
                // Constructors and destructors run before/after the object
                // is shared; they touch members unlocked by design.
                const std::string& class_name =
                    m.scopes.scopes()[static_cast<std::size_t>(g.class_scope)]
                        .name;
                const std::string_view fn_last = last_component(fn_name);
                if (!class_name.empty() &&
                    (fn_last == class_name ||
                     fn_last == "~" + class_name)) {
                    break;
                }
            }

            const bool locked = std::any_of(
                regions.begin(), regions.end(), [&](const GuardRegion& r) {
                    return r.mutex == g.mutex && r.from_ci < ci &&
                           m.scopes.is_ancestor(r.scope, use_scope);
                });
            if (!locked &&
                reported.emplace(t.line, g.name).second) {
                out.push_back(
                    {c.path, t.line, "guarded-by",
                     "'" + g.name + "' is declared qrn:guarded_by(" + g.mutex +
                         ") but no lock_guard/unique_lock on '" + g.mutex +
                         "' is in scope here"});
            }
            break;
        }
    }
}

// ---- guard-annotation --------------------------------------------------

namespace {

[[nodiscard]] bool identifier_appears(const CodeView& v,
                                      std::string_view name) {
    for (std::size_t ci = 0; ci < v.size(); ++ci) {
        const Token& t = v.tok(ci);
        if (t.kind == TokKind::Identifier && t.text == name) return true;
    }
    return false;
}

[[nodiscard]] bool mutex_typed(const Declaration& d) {
    std::string terminal(d.type_terminal());
    std::transform(terminal.begin(), terminal.end(), terminal.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    return terminal.find("mutex") != std::string::npos;
}

}  // namespace

void check_guard_annotation(const FileContext& c, std::vector<Finding>& out) {
    const SemanticModel& m = semantics(c);
    for (const AnnotationError& err : m.annotation_errors) {
        out.push_back({c.path, err.line, "guard-annotation", err.message});
    }
    for (const GuardedByAnnotation& g : m.guarded) {
        if (!g.member.empty()) {
            // File-wide form: both names must at least occur in this file,
            // so a typo cannot silently disable enforcement.
            for (const std::string& name : {g.member, g.mutex}) {
                if (!identifier_appears(m.view, name)) {
                    out.push_back({c.path, g.line, "guard-annotation",
                                   "file-wide qrn:guarded_by names '" + name +
                                       "', which never appears in this file"});
                }
            }
            continue;
        }
        if (g.decl == -1) {
            out.push_back(
                {c.path, g.line, "guard-annotation",
                 "qrn:guarded_by(mutex) must sit on a member declaration "
                 "(same line or the line above); nothing is declared on "
                 "line " +
                     std::to_string(g.effective_line)});
            continue;
        }
        const Declaration& d =
            m.decls.decls()[static_cast<std::size_t>(g.decl)];
        if (d.kind != DeclKind::Member) {
            out.push_back({c.path, g.line, "guard-annotation",
                           "qrn:guarded_by annotates '" + d.name +
                               "', which is not a class member; use the "
                               "(member, mutex) file-wide form for state "
                               "declared elsewhere"});
            continue;
        }
        const std::string& class_name =
            m.scopes.scopes()[static_cast<std::size_t>(d.scope)].name;
        const Declaration* mu = m.decls.member(d.scope, g.mutex);
        if (mu == nullptr) {
            out.push_back({c.path, g.line, "guard-annotation",
                           "qrn:guarded_by names mutex '" + g.mutex +
                               "', which is not a member of '" +
                               (class_name.empty() ? "<anonymous>"
                                                   : class_name) +
                               "'"});
        } else if (!mutex_typed(*mu)) {
            out.push_back({c.path, g.line, "guard-annotation",
                           "qrn:guarded_by names '" + g.mutex +
                               "' whose type '" + mu->type +
                               "' is not a mutex"});
        }
    }
    for (const LockOrderDecl& order : m.lock_order) {
        for (const std::string& name : order.chain) {
            if (!identifier_appears(m.view, name)) {
                out.push_back({c.path, order.line, "guard-annotation",
                               "qrn:lock_order names '" + name +
                                   "', which never appears in this file"});
            }
        }
    }
}

// ---- lock-order --------------------------------------------------------

void check_lock_order(const FileContext& c, std::vector<Finding>& out) {
    const SemanticModel& m = semantics(c);
    const std::vector<GuardRegion> regions = guard_regions(m);
    if (regions.size() < 2) return;

    // outer -> the set of mutexes that may be acquired while outer is held.
    std::map<std::string, std::set<std::string>> allowed_inner;
    for (const LockOrderDecl& order : m.lock_order) {
        for (std::size_t i = 0; i + 1 < order.chain.size(); ++i) {
            allowed_inner[order.chain[i]].insert(order.chain[i + 1]);
        }
    }
    const auto ordered_before = [&](const std::string& outer,
                                    const std::string& inner) {
        // DFS over the declared edges: is `inner` reachable from `outer`?
        std::vector<std::string> stack{outer};
        std::set<std::string> seen;
        while (!stack.empty()) {
            const std::string at = stack.back();
            stack.pop_back();
            if (!seen.insert(at).second) continue;
            const auto it = allowed_inner.find(at);
            if (it == allowed_inner.end()) continue;
            if (it->second.count(inner) != 0) return true;
            stack.insert(stack.end(), it->second.begin(), it->second.end());
        }
        return false;
    };

    for (const GuardRegion& inner : regions) {
        for (const GuardRegion& held : regions) {
            if (held.from_ci >= inner.from_ci) continue;
            if (!m.scopes.is_ancestor(held.scope, inner.scope)) continue;
            if (held.mutex == inner.mutex) {
                out.push_back({c.path, inner.line, "lock-order",
                               "re-acquiring '" + inner.mutex +
                                   "' while it is already held (line " +
                                   std::to_string(held.line) +
                                   ") self-deadlocks a non-recursive mutex"});
            } else if (ordered_before(inner.mutex, held.mutex)) {
                out.push_back({c.path, inner.line, "lock-order",
                               "acquiring '" + inner.mutex +
                                   "' while holding '" + held.mutex +
                                   "' inverts the declared qrn:lock_order "
                                   "hierarchy"});
            }
        }
    }
}

// ---- dispatcher-no-block -----------------------------------------------

namespace {

constexpr std::array<std::string_view, 21> kBlockingCalls{
    "join",       "detach",     "sleep_for",  "sleep_until", "wait",
    "wait_for",   "wait_until", "accept",     "connect",     "recv",
    "send",       "poll",       "select",     "read_exact",  "write_all",
    "wait_readable", "fopen",   "fread",      "fwrite",      "popen",
    "system"};

constexpr std::array<std::string_view, 3> kBlockingStreamTypes{
    "ifstream", "ofstream", "fstream"};

}  // namespace

void check_dispatcher_no_block(const FileContext& c,
                               std::vector<Finding>& out) {
    const std::vector<MarkerRegion> regions =
        marker_regions(c, "dispatcher", "dispatcher-no-block", out);
    if (regions.empty()) return;
    const auto in_region = [&regions](int line) {
        for (const MarkerRegion& r : regions) {
            if (line > r.begin_line && line < r.end_line) return true;
        }
        return false;
    };
    const SemanticModel& m = semantics(c);
    const CodeView& v = m.view;
    for (std::size_t ci = 0; ci < v.size(); ++ci) {
        const Token& t = v.tok(ci);
        if (t.kind != TokKind::Identifier || !in_region(t.line)) continue;
        const bool call =
            any_of_names(kBlockingCalls, t.text) && v.is(v.next(ci), "(");
        const bool stream = any_of_names(kBlockingStreamTypes, t.text);
        if (!call && !stream) continue;
        out.push_back({c.path, t.line, "dispatcher-no-block",
                       "'" + t.text +
                           "' inside a qrn:dispatcher region blocks the "
                           "store-append serializer; socket/file I/O, "
                           "sleeps and joins belong to the readers or "
                           "drain, never the dispatcher"});
    }
}

// ---- unchecked-seal ----------------------------------------------------

namespace {

constexpr std::array<std::string_view, 8> kMustUseCallees{
    "seal",          "try_push",       "parse_f64",      "parse_u64",
    "parse_probability", "parse_positive", "parse_csv_list", "verify_shard"};

}  // namespace

void check_unchecked_seal(const FileContext& c, std::vector<Finding>& out) {
    const SemanticModel& m = semantics(c);
    const CodeView& v = m.view;

    // Raw fsync/fdatasync anywhere but the store's sync wrapper is a
    // durability bypass: bytes the wrappers never see are bytes the
    // crash-recovery argument cannot account for.
    if (c.path != "src/store/sync.cpp") {
        for (std::size_t ci = 0; ci < v.size(); ++ci) {
            const Token& t = v.tok(ci);
            if (t.kind == TokKind::Identifier &&
                (t.text == "fsync" || t.text == "fdatasync")) {
                out.push_back({c.path, t.line, "unchecked-seal",
                               "raw '" + t.text +
                                   "' outside src/store/sync.cpp bypasses "
                                   "the checked sync wrappers "
                                   "(store::sync_file/sync_directory)"});
            }
        }
    }

    // Expression statements of the shape `chain.callee(args);` whose
    // callee is one of the must-use functions: the returned evidence
    // (seal receipt, parse result, queue admission) is being dropped.
    for (std::size_t s = 0; s < v.size();) {
        if (v.is_pp(s)) {
            ++s;
            continue;
        }
        // `s` is a statement start; find the statement end for the next
        // iteration no matter how the match below goes.
        std::size_t stmt_end = s;
        while (stmt_end < v.size() && !v.is(stmt_end, ";") &&
               !v.is(stmt_end, "{") && !v.is(stmt_end, "}")) {
            if (v.is(stmt_end, "(") || v.is(stmt_end, "[")) {
                stmt_end = v.match_forward(stmt_end);
                if (stmt_end >= v.size()) break;
            }
            ++stmt_end;
        }

        // Chain grammar: id ((:: | . | ->) id)* "(" ... ")" ";"
        std::size_t i = s;
        if (v.is(i, "::")) i = v.next(i);
        std::string callee;
        bool chained = i < v.size() && v.tok(i).kind == TokKind::Identifier;
        if (chained) {
            callee = v.tok(i).text;
            i = v.next(i);
            for (;;) {
                if (v.is(i, "::") || v.is(i, ".")) {
                    const std::size_t id = v.next(i);
                    if (id >= v.size() ||
                        v.tok(id).kind != TokKind::Identifier) {
                        chained = false;
                        break;
                    }
                    callee = v.tok(id).text;
                    i = v.next(id);
                    continue;
                }
                if (v.is(i, "-") && v.is(v.next(i), ">")) {
                    const std::size_t id = v.next(v.next(i));
                    if (id >= v.size() ||
                        v.tok(id).kind != TokKind::Identifier) {
                        chained = false;
                        break;
                    }
                    callee = v.tok(id).text;
                    i = v.next(id);
                    continue;
                }
                break;
            }
        }
        if (chained && v.is(i, "(") &&
            any_of_names(kMustUseCallees, callee)) {
            const std::size_t close = v.match_forward(i);
            if (close < v.size() && v.is(v.next(close), ";")) {
                out.push_back(
                    {c.path, v.tok(s).line, "unchecked-seal",
                     "discarded result of '" + callee +
                         "': seal receipts, queue admission and checked "
                         "parses are load-bearing evidence; use the value "
                         "or suppress with a reason"});
            }
        }

        s = stmt_end < v.size() ? stmt_end + 1 : v.size();
    }
}

// ---- hotloop-alloc (scope-aware) ---------------------------------------

namespace {

constexpr std::array<std::string_view, 10> kAllocatingContainers{
    "vector",        "string",        "deque",        "list",
    "map",           "set",           "unordered_map", "unordered_set",
    "ostringstream", "stringstream"};

constexpr std::array<std::string_view, 2> kHeapMakers{"make_unique",
                                                      "make_shared"};

}  // namespace

/// Hot regions bracketed by "qrn:hotloop" begin/end marker comments must
/// not allocate per iteration. Scope-aware semantics: when a loop opens
/// inside the region, only allocations under such a loop are flagged -
/// declarations hoisted between the begin marker and the loop header are
/// the sanctioned scratch-buffer pattern. A region containing no loop
/// header (markers placed inside the loop body) flags everything, which
/// also keeps the pre-scope-layer behavior for existing markers.
void check_hotloop_alloc_scoped(const FileContext& c,
                                std::vector<Finding>& out) {
    const std::vector<MarkerRegion> regions =
        marker_regions(c, "hotloop", "hotloop-alloc", out);
    if (regions.empty()) return;
    const SemanticModel& m = semantics(c);

    const auto region_of = [&regions](int line) -> const MarkerRegion* {
        for (const MarkerRegion& r : regions) {
            if (line > r.begin_line && line < r.end_line) return &r;
        }
        return nullptr;
    };
    const auto loop_opens_in = [&m](const MarkerRegion& r) {
        for (const Scope& s : m.scopes.scopes()) {
            if (s.kind == ScopeKind::Loop && s.open_line > r.begin_line &&
                s.open_line < r.end_line) {
                return true;
            }
        }
        return false;
    };
    const auto under_region_loop = [&m](int scope, const MarkerRegion& r) {
        for (int s = scope; s >= 0;
             s = m.scopes.scopes()[static_cast<std::size_t>(s)].parent) {
            const Scope& sc = m.scopes.scopes()[static_cast<std::size_t>(s)];
            if (sc.kind == ScopeKind::Loop && sc.open_line > r.begin_line &&
                sc.open_line < r.end_line) {
                return true;
            }
        }
        return false;
    };
    const auto per_iteration = [&](int scope, const MarkerRegion& r) {
        return loop_opens_in(r) ? under_region_loop(scope, r) : true;
    };

    for (const Declaration& d : m.decls.decls()) {
        if (d.kind != DeclKind::Local || d.is_reference || d.is_pointer) {
            continue;
        }
        const MarkerRegion* r = region_of(d.line);
        if (r == nullptr) continue;
        if (d.type.rfind("std::", 0) != 0 ||
            !any_of_names(kAllocatingContainers, d.type_terminal())) {
            continue;
        }
        if (!per_iteration(d.scope, *r)) continue;
        out.push_back({c.path, d.line, "hotloop-alloc",
                       "local std::" + std::string(d.type_terminal()) +
                           " declared inside a qrn:hotloop region "
                           "allocates per iteration; hoist it into a "
                           "scratch buffer reused across iterations"});
    }
    const CodeView& v = m.view;
    for (std::size_t ci = 0; ci < v.size(); ++ci) {
        const Token& t = v.tok(ci);
        if (t.kind != TokKind::Identifier ||
            !any_of_names(kHeapMakers, t.text)) {
            continue;
        }
        const MarkerRegion* r = region_of(t.line);
        if (r == nullptr) continue;
        if (!per_iteration(m.scopes.scope_at(ci), *r)) continue;
        out.push_back({c.path, t.line, "hotloop-alloc",
                       "'" + t.text +
                           "' allocates on every iteration of a "
                           "qrn:hotloop region; hoist the object into a "
                           "scratch buffer reused across iterations"});
    }
}

}  // namespace qrn::lint
