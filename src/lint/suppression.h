// Inline suppression comments:
//
//     // qrn-lint: allow(rule-id) reason the violation is intentional
//     // qrn-lint: allow(rule-a, rule-b) one reason covering both
//
// A suppression covers findings of the named rule(s) on its own line; if
// the comment is the only thing on its line it covers the next line
// instead (the usual "annotation above the offending statement" style).
//
// Suppressions are themselves linted (rule id "suppression-hygiene"):
// the reason must be non-empty and every named rule id must exist, so a
// suppression can never silently rot into a blanket waiver.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/finding.h"
#include "lint/tokenizer.h"

namespace qrn::lint {

/// Rule id under which malformed suppressions are reported. Findings of
/// this rule are never themselves suppressible.
inline constexpr const char* kSuppressionHygieneRule = "suppression-hygiene";

struct Suppression {
    int comment_line = 0;
    int effective_line = 0;  ///< line whose findings it waives
    std::vector<std::string> rules;
    std::string reason;
};

class SuppressionSet {
public:
    /// Scans the comment tokens of one file. `valid_rules` is the set of
    /// registered rule ids; unknown ids and empty reasons are reported
    /// into `findings` against `path`.
    SuppressionSet(const std::vector<Token>& tokens,
                   const std::set<std::string>& valid_rules,
                   const std::string& path, std::vector<Finding>& findings);

    [[nodiscard]] bool allows(const std::string& rule, int line) const;

    [[nodiscard]] const std::vector<Suppression>& entries() const {
        return entries_;
    }

private:
    std::vector<Suppression> entries_;
};

}  // namespace qrn::lint
