// The declaration layer of qrn-lint's lightweight semantic model.
//
// DeclIndex walks each scope's statements and records member, local and
// parameter declarations with a coarse qualified type ("std::lock_guard",
// template arguments dropped), reference/pointer-ness, and - for
// declarations with constructor arguments - the terminal identifier of
// each top-level argument (the "mutex_" in
// `std::lock_guard<std::mutex> lock(mutex_)`). That is exactly enough for
// the scope-aware rules: lock-guard RAII recognition, shadow-aware
// guarded-member lookups, and per-scope allocation checks. SemanticModel
// bundles the scope tree, the declaration index and the parsed
// qrn: annotations, built once per file and cached on the FileContext.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.h"
#include "lint/scope.h"

namespace qrn::lint {

enum class DeclKind {
    Member,  ///< declared at class scope
    Local,   ///< declared in a function/block (or at namespace scope)
    Param,   ///< function/lambda parameter
};

struct Declaration {
    DeclKind kind = DeclKind::Local;
    std::string name;
    /// Qualified type with template arguments dropped: "std::lock_guard",
    /// "unsigned long", "Status". Multi-word builtins join with ' '.
    std::string type;
    bool is_reference = false;
    bool is_pointer = false;
    int scope = -1;            ///< owning scope id (Class scope for members)
    std::size_t name_ci = 0;   ///< ci of the declared name
    int line = 0;              ///< line of the declared name
    /// Terminal identifier of each top-level constructor argument:
    /// `lock(job->pending->mutex)` records {"mutex"}. Empty when the
    /// declaration has no parenthesized/braced initializer.
    std::vector<std::string> init_arg_terminals;

    /// The segment after the last "::" ("lock_guard" for
    /// "std::lock_guard"), for coarse type matching.
    [[nodiscard]] std::string_view type_terminal() const;
};

class DeclIndex {
public:
    DeclIndex(const CodeView& view, const ScopeTree& scopes);

    [[nodiscard]] const std::vector<Declaration>& decls() const {
        return decls_;
    }
    /// The member named `name` declared directly in `class_scope`, or
    /// nullptr.
    [[nodiscard]] const Declaration* member(int class_scope,
                                            std::string_view name) const;
    /// The innermost local/param named `name` visible at code index `ci`
    /// inside scope `at_scope` (declared earlier, in an ancestor-or-self
    /// scope), or nullptr. This is what makes member-shadowing by locals
    /// explicit to the guarded-by rule.
    [[nodiscard]] const Declaration* visible_local(std::string_view name,
                                                   std::size_t ci,
                                                   int at_scope,
                                                   const ScopeTree& scopes) const;

private:
    void index_scope(const CodeView& view, const ScopeTree& scopes, int scope);
    void parse_params(const CodeView& view, const Scope& s, int scope);
    /// Parses one candidate declaration statement in [begin, end); may
    /// record several declarations (`int a, b;`).
    void parse_statement(const CodeView& view, std::size_t begin,
                         std::size_t end, int scope, DeclKind kind);

    std::vector<Declaration> decls_;
};

/// One parsed `qrn:guarded_by(...)` annotation comment. Two forms:
///   attached  - `// qrn:guarded_by(mu_)` trailing a member declaration
///               (or on the line above it): `member` is empty, `decl`
///               indexes the declaration it bound to (-1 = none found).
///   file-wide - `// qrn:guarded_by(name, mu_)`: applies to every use of
///               identifier `name` in this file; used when the member is
///               declared in another file (header) than the methods that
///               touch it.
struct GuardedByAnnotation {
    int line = 0;            ///< line of the annotation comment
    int effective_line = 0;  ///< line the attached form binds to
    std::string member;      ///< file-wide form only; "" for attached
    std::string mutex;
    int decl = -1;           ///< index into DeclIndex::decls(), -1 none
};

/// One `// qrn:lock_order(a < b < c)` hierarchy declaration: while `a`
/// is held, `b` and `c` may be acquired, never the reverse.
struct LockOrderDecl {
    int line = 0;
    std::vector<std::string> chain;
};

/// A malformed qrn: annotation (reported by guard-annotation).
struct AnnotationError {
    int line = 0;
    std::string message;
};

struct SemanticModel {
    CodeView view;
    ScopeTree scopes;
    DeclIndex decls;
    std::vector<GuardedByAnnotation> guarded;
    std::vector<LockOrderDecl> lock_order;
    std::vector<AnnotationError> annotation_errors;

    explicit SemanticModel(const FileContext& ctx);
};

/// The (lazily built, cached) semantic model for `ctx`. The model borrows
/// ctx's token/code/pp_lines storage: build it only once the context has
/// reached its final address, and never move the context afterwards -
/// lint_source's per-file const context satisfies both.
[[nodiscard]] const SemanticModel& semantics(const FileContext& ctx);

}  // namespace qrn::lint
