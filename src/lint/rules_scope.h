// The scope-aware rule family (built on scope.h/decls.h): concurrency
// discipline (guarded-by, lock-order, dispatcher-no-block), durability
// discipline (unchecked-seal), and the scope-aware hotloop allocation
// check. Declared here so rules.cpp can register them; the registry in
// rules.cpp remains the single stable-order rule list.
#pragma once

#include <vector>

#include "lint/finding.h"
#include "lint/rules.h"

namespace qrn::lint {

void check_guarded_by(const FileContext& c, std::vector<Finding>& out);
void check_guard_annotation(const FileContext& c, std::vector<Finding>& out);
void check_lock_order(const FileContext& c, std::vector<Finding>& out);
void check_dispatcher_no_block(const FileContext& c, std::vector<Finding>& out);
void check_unchecked_seal(const FileContext& c, std::vector<Finding>& out);
void check_hotloop_alloc_scoped(const FileContext& c, std::vector<Finding>& out);

}  // namespace qrn::lint
