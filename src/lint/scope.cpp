#include "lint/scope.h"

#include <array>
#include <algorithm>

namespace qrn::lint {

namespace {

constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

template <std::size_t N>
[[nodiscard]] bool any_of_names(const std::array<std::string_view, N>& names,
                                std::string_view text) {
    return std::find(names.begin(), names.end(), text) != names.end();
}

// Tokens that may sit between a function head's ')' and its '{' without
// changing what the brace opens.
constexpr std::array<std::string_view, 7> kHeadQualifiers{
    "const", "noexcept", "override", "final", "mutable", "volatile", "&"};

// Identifiers a paren group may be attached to as a qualifier rather
// than a parameter list: noexcept(...), alignas(...), throw() specs.
constexpr std::array<std::string_view, 3> kParenQualifiers{"noexcept",
                                                           "alignas", "throw"};

}  // namespace

// ---- CodeView ----------------------------------------------------------

std::size_t CodeView::next(std::size_t ci) const {
    ++ci;
    while (ci < size() && is_pp(ci)) ++ci;
    return ci;
}

std::size_t CodeView::prev(std::size_t ci) const {
    while (ci > 0) {
        --ci;
        if (!is_pp(ci)) return ci;
    }
    return size();
}

std::size_t CodeView::match_forward(std::size_t open_ci) const {
    const std::string open = tok(open_ci).text;
    const std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
    int depth = 0;
    for (std::size_t i = open_ci; i < size(); ++i) {
        if (is_pp(i)) continue;
        const std::string& t = tok(i).text;
        if (t == open) {
            ++depth;
        } else if (t == close) {
            if (--depth == 0) return i;
        }
    }
    return size();
}

std::size_t CodeView::match_backward(std::size_t close_ci) const {
    const std::string close = tok(close_ci).text;
    const std::string open = close == ")" ? "(" : close == "}" ? "{" : "[";
    int depth = 0;
    for (std::size_t i = close_ci + 1; i-- > 0;) {
        if (is_pp(i)) continue;
        const std::string& t = tok(i).text;
        if (t == close) {
            ++depth;
        } else if (t == open) {
            if (--depth == 0) return i;
        }
    }
    return size();
}

std::size_t CodeView::skip_template_args(std::size_t lt_ci,
                                         std::size_t fail) const {
    int depth = 0;
    for (std::size_t i = lt_ci; i < size(); ++i) {
        if (is_pp(i)) continue;
        const std::string& t = tok(i).text;
        if (t == "<") {
            ++depth;
        } else if (t == ">") {
            if (--depth == 0) return next(i);
        } else if (t == ";" || t == "{" || t == "}") {
            return fail;  // was a comparison, not template arguments
        }
    }
    return fail;
}

// ---- preprocessor_lines ------------------------------------------------

std::set<int> preprocessor_lines(std::string_view src) {
    std::set<int> lines;
    int line = 1;
    bool continued = false;  // previous directive line ended in backslash
    std::size_t i = 0;
    while (i <= src.size()) {
        const std::size_t eol = src.find('\n', i);
        const std::size_t end = eol == std::string_view::npos ? src.size() : eol;
        const std::string_view text = src.substr(i, end - i);
        bool directive = continued;
        if (!directive) {
            std::size_t first = text.find_first_not_of(" \t");
            directive = first != std::string_view::npos && text[first] == '#';
        }
        if (directive) {
            lines.insert(line);
            std::string_view trimmed = text;
            while (!trimmed.empty() &&
                   (trimmed.back() == '\r' || trimmed.back() == ' ' ||
                    trimmed.back() == '\t')) {
                trimmed.remove_suffix(1);
            }
            continued = !trimmed.empty() && trimmed.back() == '\\';
        } else {
            continued = false;
        }
        if (eol == std::string_view::npos) break;
        i = eol + 1;
        ++line;
    }
    return lines;
}

// ---- ScopeTree ---------------------------------------------------------

ScopeTree::ScopeTree(CodeView view) : view_(view) { build(); }

void ScopeTree::build() {
    Scope file;
    file.kind = ScopeKind::File;
    file.parent = -1;
    file.open_ci = 0;
    file.close_ci = view_.size();
    file.open_line = 1;
    scopes_.push_back(file);
    scope_of_.assign(view_.size(), 0);

    std::vector<int> stack{0};
    for (std::size_t ci = 0; ci < view_.size(); ++ci) {
        scope_of_[ci] = stack.back();
        if (view_.is_pp(ci)) continue;
        const std::string& t = view_.tok(ci).text;
        if (t == "{") {
            Scope s;
            s.parent = stack.back();
            s.open_ci = ci;
            s.close_ci = view_.size();
            s.open_line = view_.tok(ci).line;
            classify(ci, s);
            const int id = static_cast<int>(scopes_.size());
            scopes_.push_back(s);
            scope_of_[ci] = id;
            stack.push_back(id);
        } else if (t == "}" && stack.size() > 1) {
            scopes_[stack.back()].close_ci = ci;
            scope_of_[ci] = stack.back();
            stack.pop_back();
        }
    }
    // Unclosed scopes (truncated/unbalanced input) keep close_ci = size().
}

int ScopeTree::scope_at(std::size_t ci) const {
    return ci < scope_of_.size() ? scope_of_[ci] : 0;
}

bool ScopeTree::is_ancestor(int ancestor, int scope) const {
    for (int s = scope; s >= 0; s = scopes_[static_cast<std::size_t>(s)].parent) {
        if (s == ancestor) return true;
    }
    return false;
}

int ScopeTree::enclosing(int scope, ScopeKind kind) const {
    for (int s = scope; s >= 0; s = scopes_[static_cast<std::size_t>(s)].parent) {
        if (scopes_[static_cast<std::size_t>(s)].kind == kind) return s;
    }
    return -1;
}

int ScopeTree::enclosing_function(int scope) const {
    for (int s = scope; s >= 0; s = scopes_[static_cast<std::size_t>(s)].parent) {
        const ScopeKind k = scopes_[static_cast<std::size_t>(s)].kind;
        if (k == ScopeKind::Function || k == ScopeKind::Lambda) return s;
    }
    return -1;
}

namespace {

/// `b` sits on the last identifier of a possibly-qualified name
/// (Server::~Server, std::move, try_push). Returns the ci where the
/// chain begins; `text_out` (optional) receives the chain's source text.
std::size_t qualified_chain_begin(const CodeView& v, std::size_t b,
                                  std::string* text_out) {
    std::size_t begin = b;
    for (;;) {
        std::size_t p = v.prev(begin);
        if (p < v.size() && v.is(p, "~")) {
            begin = p;
            p = v.prev(begin);
        }
        if (p < v.size() && v.is(p, "::")) {
            const std::size_t q = v.prev(p);
            if (q < v.size() && v.tok(q).kind == TokKind::Identifier) {
                begin = q;
                continue;
            }
            begin = p;  // leading :: of a global-qualified name
        }
        break;
    }
    if (text_out != nullptr) {
        text_out->clear();
        for (std::size_t i = begin; i <= b && i < v.size(); i = v.next(i)) {
            *text_out += v.tok(i).text;
            if (i == b) break;
        }
    }
    return begin;
}

/// Walks back over trailing head qualifiers (const/noexcept/&&/
/// noexcept(...)/...) from `j`; returns the first index that is not one.
std::size_t absorb_head_qualifiers(const CodeView& v, std::size_t j) {
    for (int guard = 0; guard < 16 && j < v.size(); ++guard) {
        const Token& t = v.tok(j);
        if (any_of_names(kHeadQualifiers, t.text)) {
            j = v.prev(j);
            continue;
        }
        if (t.text == ")") {
            const std::size_t open = v.match_backward(j);
            if (open >= v.size()) break;
            const std::size_t before = v.prev(open);
            if (before < v.size() &&
                any_of_names(kParenQualifiers, v.tok(before).text)) {
                j = v.prev(before);
                continue;
            }
        }
        break;
    }
    return j;
}

/// If the tokens ending at `j` form a trailing-return type
/// ("-> std::vector<int>"), returns the index of the ')' the arrow is
/// attached to; otherwise kNoIndex.
std::size_t absorb_trailing_return(const CodeView& v, std::size_t j) {
    for (int guard = 0; guard < 32 && j < v.size(); ++guard) {
        const Token& t = v.tok(j);
        if (t.text == ">") {
            const std::size_t p = v.prev(j);
            if (p < v.size() && v.is(p, "-")) {
                const std::size_t paren = v.prev(p);
                if (paren < v.size() && v.is(paren, ")")) return paren;
                return kNoIndex;
            }
            j = v.prev(j);
            continue;
        }
        if (t.kind == TokKind::Identifier || t.kind == TokKind::Number ||
            t.text == "::" || t.text == "<" || t.text == "*" || t.text == "&" ||
            t.text == ",") {
            j = v.prev(j);
            continue;
        }
        return kNoIndex;
    }
    return kNoIndex;
}

constexpr std::array<std::string_view, 5> kControlBeforeParen{
    "for", "while", "if", "switch", "catch"};

}  // namespace

void ScopeTree::classify(std::size_t open_ci, Scope& s) const {
    const CodeView& v = view_;
    std::size_t j = v.prev(open_ci);
    if (j >= v.size()) {
        s.kind = ScopeKind::Block;
        return;
    }
    const Token& before = v.tok(j);
    if (before.kind == TokKind::String) {
        s.kind = ScopeKind::Block;  // extern "C" { ... }
        return;
    }
    const std::string& bt = before.text;
    if (bt == "else") {
        s.kind = ScopeKind::Conditional;
        return;
    }
    if (bt == "do") {
        s.kind = ScopeKind::Loop;
        return;
    }
    if (bt == "try") {
        s.kind = ScopeKind::Try;
        return;
    }
    if (bt == "class" || bt == "struct" || bt == "union") {
        s.kind = ScopeKind::Class;  // anonymous
        return;
    }
    if (bt == "enum") {
        s.kind = ScopeKind::Enum;
        return;
    }
    if (bt == "namespace") {
        s.kind = ScopeKind::Namespace;
        return;
    }
    if (bt == "}") {
        // `S() : a_(a), b_{b} {` -- a brace-init entry closes the
        // member-initializer list right before the constructor body.
        const std::size_t o = v.match_backward(j);
        const std::size_t nb = o < v.size() ? v.prev(o) : v.size();
        if (nb < v.size() && v.tok(nb).kind == TokKind::Identifier) {
            const std::size_t cb = qualified_chain_begin(v, nb, nullptr);
            const std::size_t p = v.prev(cb);
            if (p < v.size() && (v.is(p, ":") || v.is(p, ",")) &&
                classify_member_init_list(p, s)) {
                return;
            }
        }
        s.kind = ScopeKind::Block;
        return;
    }
    if (bt == ";" || bt == "{" || bt == ":") {
        s.kind = ScopeKind::Block;  // statement-position brace, label, case
        return;
    }

    std::size_t head_end = absorb_head_qualifiers(v, j);
    if (head_end < v.size() && !v.is(head_end, ")")) {
        // "auto f(...) -> ret {" puts return-type tokens before the brace.
        const std::size_t paren = absorb_trailing_return(v, head_end);
        if (paren != kNoIndex) head_end = paren;
    }

    if (head_end < v.size() && v.is(head_end, "]")) {
        const std::size_t lb = v.match_backward(head_end);
        const std::size_t before_lb = lb < v.size() ? v.prev(lb) : v.size();
        if (before_lb < v.size() && v.is_ident(before_lb, "operator")) {
            s.kind = ScopeKind::Function;
            s.name = "operator[]";
            return;
        }
        s.kind = ScopeKind::Lambda;
        return;
    }

    if (head_end < v.size() && v.is(head_end, ")")) {
        classify_paren_head(head_end, s);
        return;
    }

    if (before.kind == TokKind::Identifier) {
        classify_statement_head(open_ci, s);
        return;
    }
    s.kind = ScopeKind::Init;  // "= {", "f({", "{1, {2, 3}}", ...
}

/// `close_ci` sits on the ')' directly (after qualifier absorption)
/// preceding the '{': decide among control statement, lambda, function
/// definition, and constructor with member-initializer list.
void ScopeTree::classify_paren_head(std::size_t close_ci, Scope& s) const {
    const CodeView& v = view_;
    const std::size_t open = v.match_backward(close_ci);
    if (open >= v.size()) {
        s.kind = ScopeKind::Block;
        return;
    }
    std::size_t b = v.prev(open);
    if (b >= v.size()) {
        s.kind = ScopeKind::Init;
        return;
    }
    // if constexpr (...) { -- the keyword hides behind "constexpr".
    if (v.is_ident(b, "constexpr")) {
        const std::size_t bb = v.prev(b);
        if (bb < v.size() && v.is_ident(bb, "if")) b = bb;
    }
    const std::string& bt = v.tok(b).text;
    if (any_of_names(kControlBeforeParen, bt)) {
        s.kind = bt == "for" || bt == "while" ? ScopeKind::Loop
                 : bt == "catch"             ? ScopeKind::Try
                                             : ScopeKind::Conditional;
        s.params_open_ci = open;
        s.params_close_ci = close_ci;
        return;
    }
    if (bt == "]") {
        const std::size_t lb = v.match_backward(b);
        const std::size_t before_lb = lb < v.size() ? v.prev(lb) : v.size();
        if (before_lb < v.size() && v.is_ident(before_lb, "operator")) {
            s.kind = ScopeKind::Function;
            s.name = "operator[]";
            s.params_open_ci = open;
            s.params_close_ci = close_ci;
            return;
        }
        s.kind = ScopeKind::Lambda;
        s.params_open_ci = open;
        s.params_close_ci = close_ci;
        return;
    }
    if (bt == ")") {
        // operator()(params) { -- the call-operator's own parens.
        const std::size_t o2 = v.match_backward(b);
        const std::size_t before_o2 = o2 < v.size() ? v.prev(o2) : v.size();
        if (before_o2 < v.size() && v.is_ident(before_o2, "operator")) {
            s.kind = ScopeKind::Function;
            s.name = "operator()";
            s.params_open_ci = open;
            s.params_close_ci = close_ci;
            return;
        }
        s.kind = ScopeKind::Init;
        return;
    }
    if (v.tok(b).kind == TokKind::Punct) {
        // operator==(...) { / operator+(...) { -- scan back over the
        // (at most two-token) operator symbol for the keyword.
        std::size_t p = b;
        for (int step = 0; step < 2 && p < v.size(); ++step) {
            p = v.prev(p);
            if (p < v.size() && v.is_ident(p, "operator")) {
                s.kind = ScopeKind::Function;
                s.name = "operator" + v.tok(b).text;
                s.params_open_ci = open;
                s.params_close_ci = close_ci;
                return;
            }
            if (p >= v.size() || v.tok(p).kind != TokKind::Punct) break;
        }
        s.kind = ScopeKind::Init;
        return;
    }
    if (v.tok(b).kind != TokKind::Identifier) {
        s.kind = ScopeKind::Init;
        return;
    }

    std::string name;
    const std::size_t chain_begin = qualified_chain_begin(v, b, &name);
    const std::size_t p = v.prev(chain_begin);
    if (p < v.size() && v.is_ident(p, "operator")) {
        // conversion operator: operator bool() {
        s.kind = ScopeKind::Function;
        s.name = "operator " + name;
        s.params_open_ci = open;
        s.params_close_ci = close_ci;
        return;
    }
    if (p < v.size() && (v.is(p, ":") || v.is(p, ","))) {
        // The paren belonged to the last entry of a constructor's
        // member-initializer list; walk the list back to the ':' and
        // classify the real head before it.
        if (classify_member_init_list(p, s)) return;
        s.kind = ScopeKind::Init;
        return;
    }
    s.kind = ScopeKind::Function;
    s.name = name;
    s.params_open_ci = open;
    s.params_close_ci = close_ci;
}

/// `cur` sits on the ':' or ',' preceding a member-initializer entry.
/// Walks entries (`name(...)` or `name{...}`, possibly qualified)
/// backward to the list's ':' and classifies the constructor head before
/// it. Returns false when the shape is not an initializer list after all.
bool ScopeTree::classify_member_init_list(std::size_t cur, Scope& s) const {
    const CodeView& v = view_;
    for (int guard = 0; guard < 64 && cur < v.size(); ++guard) {
        if (v.is(cur, ":")) {
            const std::size_t head = absorb_head_qualifiers(v, v.prev(cur));
            if (head < v.size() && v.is(head, ")")) {
                classify_paren_head(head, s);
                return true;
            }
            return false;
        }
        if (!v.is(cur, ",")) return false;
        const std::size_t e = v.prev(cur);
        if (e >= v.size() || (!v.is(e, ")") && !v.is(e, "}"))) return false;
        const std::size_t o = v.match_backward(e);
        if (o >= v.size()) return false;
        const std::size_t nb = v.prev(o);
        if (nb >= v.size() || v.tok(nb).kind != TokKind::Identifier) return false;
        cur = v.prev(qualified_chain_begin(v, nb, nullptr));
    }
    return false;
}

/// The brace follows a bare identifier: scan the statement head backward
/// for "namespace N {", "class/struct/union X ... {", "enum [class] E {";
/// everything else is a braced initializer.
void ScopeTree::classify_statement_head(std::size_t open_ci, Scope& s) const {
    const CodeView& v = view_;
    // Find the statement's first token: walk back to ; { } skipping
    // balanced bracket groups (a for-loop's header semicolons sit inside
    // parens and do not end the statement).
    std::size_t begin = open_ci;
    std::size_t i = v.prev(open_ci);
    while (i < v.size()) {
        const std::string& t = v.tok(i).text;
        if (t == ";" || t == "{" || t == "}") break;
        if (t == ")" || t == "]") {
            const std::size_t o = v.match_backward(i);
            if (o >= v.size()) break;
            begin = o;
            i = v.prev(o);
            continue;
        }
        begin = i;
        i = v.prev(i);
    }

    std::size_t k = begin;
    // template <...> prefix, storage/linkage qualifiers.
    for (int guard = 0; guard < 8 && k < open_ci; ++guard) {
        if (v.is_ident(k, "template")) {
            const std::size_t lt = v.next(k);
            if (lt < v.size() && v.is(lt, "<")) {
                k = v.skip_template_args(lt, open_ci);
                continue;
            }
        }
        if (v.is_ident(k, "inline") || v.is_ident(k, "static") ||
            v.is_ident(k, "constexpr") || v.is_ident(k, "export") ||
            v.is_ident(k, "typename")) {
            k = v.next(k);
            continue;
        }
        break;
    }
    if (k >= open_ci) {
        s.kind = ScopeKind::Init;
        return;
    }

    if (v.is_ident(k, "namespace")) {
        s.kind = ScopeKind::Namespace;
        for (std::size_t n = v.next(k); n < open_ci; n = v.next(n)) {
            s.name += v.tok(n).text;
        }
        return;
    }
    const bool is_class = v.is_ident(k, "class") || v.is_ident(k, "struct") ||
                          v.is_ident(k, "union");
    const bool is_enum = v.is_ident(k, "enum");
    if (!is_class && !is_enum) {
        s.kind = ScopeKind::Init;
        return;
    }
    s.kind = is_enum ? ScopeKind::Enum : ScopeKind::Class;
    std::size_t n = v.next(k);
    if (is_enum && n < open_ci &&
        (v.is_ident(n, "class") || v.is_ident(n, "struct"))) {
        n = v.next(n);
    }
    // Skip attributes ([[nodiscard]]) and alignas(...) before the name.
    for (int guard = 0; guard < 4 && n < open_ci; ++guard) {
        if (v.is(n, "[")) {
            n = v.next(v.match_forward(n));
            continue;
        }
        if (v.is_ident(n, "alignas")) {
            const std::size_t po = v.next(n);
            if (po < v.size() && v.is(po, "(")) {
                n = v.next(v.match_forward(po));
                continue;
            }
        }
        break;
    }
    if (n < open_ci && v.tok(n).kind == TokKind::Identifier) {
        s.name = v.tok(n).text;
    }
}

}  // namespace qrn::lint
