#include "lint/suppression.h"

#include <algorithm>
#include <cctype>

namespace qrn::lint {

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
        s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
        s.remove_suffix(1);
    }
    return s;
}

/// Strips the comment delimiters: "// ..." or "/* ... */".
[[nodiscard]] std::string_view comment_body(std::string_view text) {
    if (text.size() >= 2 && text[0] == '/' && text[1] == '/') {
        return trim(text.substr(2));
    }
    if (text.size() >= 4 && text[0] == '/' && text[1] == '*') {
        text.remove_prefix(2);
        if (text.size() >= 2 && text.substr(text.size() - 2) == "*/") {
            text.remove_suffix(2);
        }
        return trim(text);
    }
    return trim(text);
}

}  // namespace

SuppressionSet::SuppressionSet(const std::vector<Token>& tokens,
                               const std::set<std::string>& valid_rules,
                               const std::string& path,
                               std::vector<Finding>& findings) {
    constexpr std::string_view kMarker = "qrn-lint:";
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind != TokKind::Comment) continue;
        std::string_view body = comment_body(tok.text);
        if (body.substr(0, kMarker.size()) != kMarker) continue;
        body = trim(body.substr(kMarker.size()));

        const auto bad = [&](const std::string& why) {
            findings.push_back(Finding{path, tok.line, kSuppressionHygieneRule, why});
        };

        // Prose that merely mentions "qrn-lint:" is not a suppression;
        // only an allow-clause is. But once the author typed "allow",
        // anything short of the exact grammar is reported, so a typo like
        // "allow (rule)" can never become a silent no-op.
        constexpr std::string_view kAllow = "allow(";
        if (body.substr(0, 5) != "allow") continue;
        if (body.substr(0, kAllow.size()) != kAllow) {
            bad("malformed qrn-lint comment; expected 'qrn-lint: allow(rule-id) reason'");
            continue;
        }
        body.remove_prefix(kAllow.size());
        const std::size_t close = body.find(')');
        if (close == std::string_view::npos) {
            bad("unterminated allow(...) in qrn-lint comment");
            continue;
        }

        Suppression sup;
        sup.comment_line = tok.line;
        std::string_view list = body.substr(0, close);
        while (!list.empty()) {
            const std::size_t comma = list.find(',');
            const std::string_view id =
                trim(comma == std::string_view::npos ? list : list.substr(0, comma));
            list = comma == std::string_view::npos ? std::string_view{}
                                                   : list.substr(comma + 1);
            if (id.empty()) continue;
            if (valid_rules.find(std::string(id)) == valid_rules.end()) {
                bad("suppression names unknown rule '" + std::string(id) +
                    "'; see qrn-lint --list-rules");
            } else if (std::string(id) == kSuppressionHygieneRule) {
                bad("'suppression-hygiene' findings cannot be suppressed");
            } else {
                sup.rules.push_back(std::string(id));
            }
        }
        sup.reason = std::string(trim(body.substr(close + 1)));
        if (sup.rules.empty()) {
            bad("allow() names no rule; expected 'qrn-lint: allow(rule-id) reason'");
            continue;
        }
        if (sup.reason.empty()) {
            bad("suppression for '" + sup.rules.front() +
                "' has no reason; every waiver must say why");
            continue;
        }

        // A comment that shares its line with code waives that line; a
        // stand-alone comment waives the line below it.
        const bool alone = std::none_of(
            tokens.begin(), tokens.begin() + static_cast<std::ptrdiff_t>(i),
            [&](const Token& t) {
                return t.kind != TokKind::Comment && t.line == tok.line;
            });
        sup.effective_line = alone ? tok.line + 1 : tok.line;
        entries_.push_back(std::move(sup));
    }
}

bool SuppressionSet::allows(const std::string& rule, int line) const {
    if (rule == kSuppressionHygieneRule) return false;
    for (const Suppression& sup : entries_) {
        if (sup.effective_line != line && sup.comment_line != line) continue;
        if (std::find(sup.rules.begin(), sup.rules.end(), rule) != sup.rules.end()) {
            return true;
        }
    }
    return false;
}

}  // namespace qrn::lint
