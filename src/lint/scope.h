// The scope layer of qrn-lint's lightweight semantic model.
//
// A ScopeTree recovers the brace structure of one file from the token
// stream alone - no preprocessor, no name lookup, no libclang - and
// classifies each `{...}` region (namespace, class, function, lambda,
// loop, conditional, try/catch, plain block, or braced initializer) by
// looking at the tokens immediately before the opening brace. Tokens on
// preprocessor-directive lines are masked out first, so an unbalanced
// brace inside an `#ifdef` arm or a function-like macro body cannot skew
// the tree for the code around it. The result is deliberately coarse:
// scope-aware rules need "which function/loop/class am I in" and "does
// this lock guard's scope enclose that member access", not full semantic
// analysis.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/tokenizer.h"

namespace qrn::lint {

/// A borrowing view over one file's non-comment tokens with the
/// preprocessor-directive lines masked out. All scope-layer code walks
/// this view; `ci` indices below are indices into `code`.
class CodeView {
public:
    CodeView(const std::vector<Token>& tokens,
             const std::vector<std::size_t>& code,
             const std::set<int>& pp_lines)
        : tokens_(&tokens), code_(&code), pp_lines_(&pp_lines) {}

    [[nodiscard]] std::size_t size() const { return code_->size(); }
    [[nodiscard]] const Token& tok(std::size_t ci) const {
        return (*tokens_)[(*code_)[ci]];
    }
    /// True when the token sits on a preprocessor-directive line (masked
    /// out of structural analysis).
    [[nodiscard]] bool is_pp(std::size_t ci) const {
        return pp_lines_->count(tok(ci).line) != 0;
    }
    [[nodiscard]] bool is(std::size_t ci, std::string_view text) const {
        return ci < size() && tok(ci).text == text;
    }
    [[nodiscard]] bool is_ident(std::size_t ci, std::string_view text) const {
        return ci < size() && tok(ci).kind == TokKind::Identifier &&
               tok(ci).text == text;
    }
    /// Next non-preprocessor index strictly after `ci`, or size().
    [[nodiscard]] std::size_t next(std::size_t ci) const;
    /// Previous non-preprocessor index strictly before `ci`, or size()
    /// (the uniform "no such index" sentinel) when none exists.
    [[nodiscard]] std::size_t prev(std::size_t ci) const;
    /// Opener at `open_ci` is one of ( { [ : index of the matching
    /// closer, or size() when the file never closes it.
    [[nodiscard]] std::size_t match_forward(std::size_t open_ci) const;
    /// Closer at `close_ci` is one of ) } ] : index of the matching
    /// opener, or size() when there is none.
    [[nodiscard]] std::size_t match_backward(std::size_t close_ci) const;
    /// `lt_ci` sits on "<": index just past the matching ">", or `fail`
    /// when the run hits ; { } first (a comparison, not template args).
    [[nodiscard]] std::size_t skip_template_args(std::size_t lt_ci,
                                                 std::size_t fail) const;

private:
    const std::vector<Token>* tokens_;
    const std::vector<std::size_t>* code_;
    const std::set<int>* pp_lines_;
};

enum class ScopeKind {
    File,         ///< the implicit whole-file scope (always scope 0)
    Namespace,    ///< namespace N { ... }   (name "" when anonymous)
    Class,        ///< class/struct/union body
    Enum,         ///< enum / enum class body
    Function,     ///< free or member function body (name may be qualified)
    Lambda,       ///< lambda body
    Loop,         ///< for / while / do body
    Conditional,  ///< if / else / switch body
    Try,          ///< try or catch body
    Block,        ///< bare { ... } statement block, extern "C", unknown
    Init,         ///< braced initializer / aggregate init (not a scope in
                  ///< the language, tracked so decls inside are ignored)
};

struct Scope {
    ScopeKind kind = ScopeKind::Block;
    /// Namespace/class name, or the function's (possibly ::-qualified)
    /// name; empty for anonymous/unnamed scopes.
    std::string name;
    int parent = -1;           ///< index into scopes(); -1 for File
    std::size_t open_ci = 0;   ///< ci of the '{' (File: 0)
    std::size_t close_ci = 0;  ///< ci of the matching '}' (File: size())
    int open_line = 0;         ///< line of the '{' (File: 1)
    /// For Function/Lambda/Loop/Conditional/Try heads: the ci range of
    /// the head's parenthesis list '(' .. ')'. Both 0 when none.
    std::size_t params_open_ci = 0;
    std::size_t params_close_ci = 0;
};

class ScopeTree {
public:
    explicit ScopeTree(CodeView view);

    [[nodiscard]] const std::vector<Scope>& scopes() const { return scopes_; }
    [[nodiscard]] const CodeView& view() const { return view_; }
    /// Innermost scope owning code index `ci` (the '{' and '}' of a scope
    /// belong to that scope). Always valid: falls back to 0 (File).
    [[nodiscard]] int scope_at(std::size_t ci) const;
    /// True when `ancestor` is `scope` or one of its ancestors.
    [[nodiscard]] bool is_ancestor(int ancestor, int scope) const;
    /// Nearest enclosing scope (self included) of `kind`, or -1.
    [[nodiscard]] int enclosing(int scope, ScopeKind kind) const;
    /// Nearest enclosing Function or Lambda (self included), or -1.
    [[nodiscard]] int enclosing_function(int scope) const;

private:
    void build();
    /// Classifies the scope opened by the '{' at `open_ci` and fills
    /// kind/name/params of `s`.
    void classify(std::size_t open_ci, Scope& s) const;
    void classify_paren_head(std::size_t close_ci, Scope& s) const;
    void classify_statement_head(std::size_t open_ci, Scope& s) const;
    bool classify_member_init_list(std::size_t cur, Scope& s) const;

    CodeView view_;
    std::vector<Scope> scopes_;
    std::vector<int> scope_of_;  ///< per code index, innermost scope
};

/// Lines (1-based) that belong to preprocessor directives, including
/// backslash-continued continuation lines. Computed from raw source text.
[[nodiscard]] std::set<int> preprocessor_lines(std::string_view src);

}  // namespace qrn::lint
