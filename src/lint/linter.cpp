#include "lint/linter.h"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/rules.h"
#include "lint/suppression.h"

namespace qrn::lint {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] bool lintable_extension(const fs::path& p) {
    static constexpr std::array<std::string_view, 6> kExts{
        ".cpp", ".h", ".hpp", ".cc", ".hh", ".inl"};
    const std::string ext = p.extension().string();
    return std::find(kExts.begin(), kExts.end(), ext) != kExts.end();
}

void sort_findings(std::vector<Finding>& findings) {
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  if (a.rule != b.rule) return a.rule < b.rule;
                  return a.message < b.message;
              });
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding& a, const Finding& b) {
                                   return a.file == b.file && a.line == b.line &&
                                          a.rule == b.rule &&
                                          a.message == b.message;
                               }),
                   findings.end());
}

}  // namespace

std::string relativize(std::string path) {
    std::replace(path.begin(), path.end(), '\\', '/');
    static constexpr std::array<std::string_view, 4> kRoots{"src", "tests",
                                                            "bench", "examples"};
    std::size_t best = std::string::npos;
    for (const std::string_view root : kRoots) {
        const std::string mid = "/" + std::string(root) + "/";
        const std::size_t at = path.rfind(mid);
        if (at != std::string::npos && (best == std::string::npos || at + 1 > best)) {
            best = at + 1;
        }
        const std::string lead = std::string(root) + "/";
        if (path.compare(0, lead.size(), lead) == 0 && best == std::string::npos) {
            best = 0;
        }
    }
    return best == std::string::npos ? path : path.substr(best);
}

std::vector<Finding> lint_source(const std::string& display_path,
                                 std::string_view content) {
    const FileContext ctx = make_context(relativize(display_path), content);

    std::vector<Finding> findings;
    SuppressionSet suppressions(ctx.tokens, rule_ids(), ctx.path, findings);

    std::vector<Finding> raw;
    for (const Rule& rule : rules()) rule.check(ctx, raw);
    for (Finding& f : raw) {
        if (!suppressions.allows(f.rule, f.line)) {
            findings.push_back(std::move(f));
        }
    }
    sort_findings(findings);
    return findings;
}

LintResult lint_paths(const std::vector<std::string>& paths, std::string& error) {
    std::vector<fs::path> files;
    for (const std::string& p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
                if (entry.is_regular_file() && lintable_extension(entry.path())) {
                    files.push_back(entry.path());
                }
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            error = "path does not exist or is not a file/directory: " + p;
            return {};
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    LintResult result;
    for (const fs::path& file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            error = "cannot read " + file.string();
            return {};
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        ++result.files_scanned;
        std::vector<Finding> file_findings =
            lint_source(file.string(), buf.str());
        result.findings.insert(result.findings.end(),
                               std::make_move_iterator(file_findings.begin()),
                               std::make_move_iterator(file_findings.end()));
    }
    sort_findings(result.findings);
    return result;
}

}  // namespace qrn::lint
