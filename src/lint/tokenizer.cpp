#include "lint/tokenizer.h"

#include <cctype>

namespace qrn::lint {

namespace {

[[nodiscard]] bool ident_start(char c) noexcept {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool ident_char(char c) noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Character cursor over the source with translation-phase-2 line
/// splicing: peek()/get() make a backslash immediately followed by a
/// newline (optionally with a CR) invisible, while still counting the
/// physical line. Raw string bodies use raw_get(), which keeps splices.
class Cursor {
public:
    explicit Cursor(std::string_view s) : s_(s) {}

    [[nodiscard]] bool eof() { return skip_splices(), pos_ >= s_.size(); }

    /// Logical character `ahead` positions away, or '\0' past the end.
    [[nodiscard]] char peek(std::size_t ahead = 0) {
        skip_splices();
        std::size_t p = pos_;
        for (std::size_t i = 0; i < ahead; ++i) {
            p = skip_splices_from(p + 1);
        }
        return p < s_.size() ? s_[p] : '\0';
    }

    char get() {
        skip_splices();
        if (pos_ >= s_.size()) return '\0';
        const char c = s_[pos_++];
        if (c == '\n') ++line_;
        return c;
    }

    /// Physical character, splices included (raw string bodies).
    char raw_get() {
        if (pos_ >= s_.size()) return '\0';
        const char c = s_[pos_++];
        if (c == '\n') ++line_;
        return c;
    }

    [[nodiscard]] char raw_peek() const {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    [[nodiscard]] int line() const noexcept { return line_; }

private:
    /// Advances `p` past any run of splices starting at it and returns
    /// the resulting position; only the member overload moves pos_ (and
    /// the line counter, since a splice swallows a physical newline).
    [[nodiscard]] std::size_t skip_splices_from(std::size_t p) const {
        while (p + 1 < s_.size() && s_[p] == '\\') {
            if (s_[p + 1] == '\n') {
                p += 2;
            } else if (s_[p + 1] == '\r' && p + 2 < s_.size() && s_[p + 2] == '\n') {
                p += 3;
            } else {
                break;
            }
        }
        return p;
    }

    void skip_splices() {
        std::size_t p = skip_splices_from(pos_);
        while (pos_ < p) {
            if (s_[pos_] == '\n') ++line_;
            ++pos_;
        }
    }

    std::string_view s_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

/// Encoding prefixes that may precede a string/char literal.
[[nodiscard]] bool is_encoding_prefix(std::string_view id) noexcept {
    return id == "u8" || id == "u" || id == "U" || id == "L";
}

/// Identifier that is actually a raw-string prefix (R, u8R, uR, UR, LR).
[[nodiscard]] bool is_raw_prefix(std::string_view id) noexcept {
    return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

class Lexer {
public:
    explicit Lexer(std::string_view src) : cur_(src) {}

    [[nodiscard]] std::vector<Token> run() {
        while (!cur_.eof()) {
            const char c = cur_.peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
                c == '\v') {
                cur_.get();
                continue;
            }
            start_line_ = cur_.line();
            if (c == '/' && cur_.peek(1) == '/') {
                lex_line_comment();
            } else if (c == '/' && cur_.peek(1) == '*') {
                lex_block_comment();
            } else if (c == '"') {
                lex_string("");
            } else if (c == '\'') {
                lex_char();
            } else if (ident_start(c)) {
                lex_identifier_or_literal_prefix();
            } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                       (c == '.' &&
                        std::isdigit(static_cast<unsigned char>(cur_.peek(1))))) {
                lex_number();
            } else {
                lex_punct();
            }
        }
        return std::move(out_);
    }

private:
    void emit(TokKind kind, std::string text) {
        out_.push_back(Token{kind, std::move(text), start_line_});
    }

    void lex_line_comment() {
        std::string text;
        // get() hides spliced newlines, so a backslash-continued line
        // comment extends onto the next physical line, as in real C++.
        while (!cur_.eof() && cur_.peek() != '\n') text += cur_.get();
        emit(TokKind::Comment, std::move(text));
    }

    void lex_block_comment() {
        std::string text;
        text += cur_.get();  // '/'
        text += cur_.get();  // '*'
        while (!cur_.eof()) {
            const char c = cur_.get();
            text += c;
            if (c == '*' && cur_.peek() == '/') {
                text += cur_.get();
                break;
            }
        }
        emit(TokKind::Comment, std::move(text));
    }

    void lex_string(std::string prefix) {
        std::string text = std::move(prefix);
        text += cur_.get();  // opening quote
        while (!cur_.eof()) {
            const char c = cur_.get();
            if (c == '\n') break;  // unterminated: close at line end
            text += c;
            if (c == '\\' && !cur_.eof()) {
                text += cur_.get();  // escaped char (quote, backslash, ...)
            } else if (c == '"') {
                break;
            }
        }
        emit(TokKind::String, std::move(text));
    }

    /// cur_ sits on the opening quote; `prefix` is e.g. "R" or "u8R".
    /// Raw string bodies take characters verbatim: no splices, no
    /// escapes; only )delim" terminates.
    void lex_raw_string(std::string prefix) {
        std::string text = std::move(prefix);
        text += cur_.raw_get();  // '"'
        std::string delim;
        while (!cur_.eof() && cur_.raw_peek() != '(') {
            delim += cur_.raw_get();
        }
        text += delim;
        if (!cur_.eof()) text += cur_.raw_get();  // '('
        const std::string close = ")" + delim + "\"";
        std::string tail;
        while (!cur_.eof()) {
            tail += cur_.raw_get();
            if (tail.size() >= close.size() &&
                tail.compare(tail.size() - close.size(), close.size(), close) == 0) {
                break;
            }
        }
        text += tail;
        emit(TokKind::String, std::move(text));
    }

    void lex_char() {
        std::string text;
        text += cur_.get();  // opening '
        while (!cur_.eof()) {
            const char c = cur_.get();
            if (c == '\n') break;
            text += c;
            if (c == '\\' && !cur_.eof()) {
                text += cur_.get();
            } else if (c == '\'') {
                break;
            }
        }
        emit(TokKind::CharLit, std::move(text));
    }

    void lex_identifier_or_literal_prefix() {
        std::string id;
        while (!cur_.eof() && ident_char(cur_.peek())) id += cur_.get();
        if (cur_.peek() == '"') {
            if (is_raw_prefix(id)) return lex_raw_string(std::move(id));
            if (is_encoding_prefix(id)) return lex_string(std::move(id));
        }
        if (cur_.peek() == '\'' && is_encoding_prefix(id)) {
            // u'x' etc.: fold the prefix into the char literal.
            const int line = start_line_;
            lex_char();
            out_.back().text.insert(0, id);
            out_.back().line = line;
            return;
        }
        emit(TokKind::Identifier, std::move(id));
    }

    void lex_number() {
        // pp-number: digits, identifier chars, '.', digit separators,
        // and a sign right after an exponent marker (1e-3, 0x1p+2).
        std::string text;
        text += cur_.get();
        while (!cur_.eof()) {
            const char c = cur_.peek();
            if (ident_char(c) || c == '.') {
                text += cur_.get();
            } else if (c == '\'' && ident_char(cur_.peek(1))) {
                text += cur_.get();  // digit separator, not a char literal
            } else if ((c == '+' || c == '-') && !text.empty() &&
                       (text.back() == 'e' || text.back() == 'E' ||
                        text.back() == 'p' || text.back() == 'P')) {
                text += cur_.get();
            } else {
                break;
            }
        }
        emit(TokKind::Number, std::move(text));
    }

    void lex_punct() {
        std::string text;
        text += cur_.get();
        // "::" is the one multi-character punctuator rules care about
        // (std::thread, Rng::stream); everything else stays single-char
        // so bracket depth counting in rules.cpp sees every < > ( ).
        if (text[0] == ':' && cur_.peek() == ':') text += cur_.get();
        emit(TokKind::Punct, std::move(text));
    }

    Cursor cur_;
    int start_line_ = 1;
    std::vector<Token> out_;
};

}  // namespace

std::vector<Token> tokenize(std::string_view src) { return Lexer(src).run(); }

}  // namespace qrn::lint
