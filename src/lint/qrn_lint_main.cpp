// qrn-lint: the toolkit's self-hosted static-analysis gate.
//
// Usage:  qrn-lint [--list-rules] <path>...
//
// Scans the given files/directories for violations of the project's
// safety-code invariants (see docs/LINTING.md) and prints findings as
// "file:line: rule-id: message" on stdout.
//
// Exit-code contract (stable; the lint_selfcheck ctest and the CI lint
// job rely on it, mirroring the qrn CLI's 0/1/2 convention):
//   0  clean (or --list-rules)
//   1  usage error: unknown flag, no paths, unreadable path
//   2  at least one finding

// qrn-lint: allow(iostream-in-lib) CLI entry point: stdout/stderr is the product surface
#include <iostream>
#include <string>
#include <vector>

#include "lint/linter.h"
#include "lint/rules.h"

namespace {

void print_usage(std::ostream& os) {
    os << "usage: qrn-lint [--list-rules] [--format=text|gh] <path>...\n"
          "  Lints *.cpp/*.h/*.hpp/*.cc/*.hh under each path for the\n"
          "  project invariants listed by --list-rules (docs/LINTING.md).\n"
          "  Suppress one finding with: // qrn-lint: allow(rule-id) reason\n"
          "  --format=gh emits GitHub Actions ::error annotations instead\n"
          "  of file:line lines (the stderr summary and exit codes do not\n"
          "  change).\n"
          "  Exit codes: 0 clean, 1 usage error, 2 findings.\n";
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> paths;
    bool list_rules = false;
    bool gh_format = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg.rfind("--format=", 0) == 0) {
            const std::string format = arg.substr(std::string("--format=").size());
            if (format == "gh") {
                gh_format = true;
            } else if (format != "text") {
                std::cerr << "qrn-lint: unknown format '" << format << "'\n";
                print_usage(std::cerr);
                return 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            print_usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "qrn-lint: unknown option '" << arg << "'\n";
            print_usage(std::cerr);
            return 1;
        } else {
            paths.push_back(arg);
        }
    }

    if (list_rules) {
        for (const auto& rule : qrn::lint::rules()) {
            std::cout << rule.id << "\n    " << rule.summary << "\n";
        }
        return 0;
    }
    if (paths.empty()) {
        std::cerr << "qrn-lint: no paths given\n";
        print_usage(std::cerr);
        return 1;
    }

    std::string error;
    const qrn::lint::LintResult result = qrn::lint::lint_paths(paths, error);
    if (!error.empty()) {
        std::cerr << "qrn-lint: " << error << "\n";
        return 1;
    }
    for (const auto& finding : result.findings) {
        std::cout << (gh_format ? qrn::lint::render_gh(finding)
                                : qrn::lint::render(finding))
                  << "\n";
    }
    if (!result.findings.empty()) {
        std::cerr << "qrn-lint: " << result.findings.size() << " finding"
                  << (result.findings.size() == 1 ? "" : "s") << " in "
                  << result.files_scanned << " files\n";
        return 2;
    }
    return 0;
}
