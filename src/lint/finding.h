// A single qrn-lint diagnostic, rendered as "file:line: rule-id: message".
#pragma once

#include <string>

namespace qrn::lint {

struct Finding {
    std::string file;  ///< project-relative path with '/' separators
    int line = 0;      ///< 1-based
    std::string rule;  ///< rule id, e.g. "raw-parse"
    std::string message;
};

[[nodiscard]] inline std::string render(const Finding& f) {
    return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " + f.message;
}

}  // namespace qrn::lint
