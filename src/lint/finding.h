// A single qrn-lint diagnostic, rendered as "file:line: rule-id: message".
#pragma once

#include <string>

namespace qrn::lint {

struct Finding {
    std::string file;  ///< project-relative path with '/' separators
    int line = 0;      ///< 1-based
    std::string rule;  ///< rule id, e.g. "raw-parse"
    std::string message;
};

[[nodiscard]] inline std::string render(const Finding& f) {
    return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " + f.message;
}

/// GitHub Actions workflow-command rendering: one `::error` annotation per
/// finding, which the Actions runner pins to the file and line in the PR
/// diff view. The message data is %-escaped per the workflow-command
/// grammar ('%' first, so the escapes themselves survive).
[[nodiscard]] inline std::string render_gh(const Finding& f) {
    std::string text = f.rule + ": " + f.message;
    auto escape = [&text](char from, const char* to) {
        std::string escaped;
        escaped.reserve(text.size());
        for (const char ch : text) {
            if (ch == from) {
                escaped += to;
            } else {
                escaped += ch;
            }
        }
        text = std::move(escaped);
    };
    escape('%', "%25");
    escape('\r', "%0D");
    escape('\n', "%0A");
    return "::error file=" + f.file + ",line=" + std::to_string(f.line) +
           "::" + text;
}

}  // namespace qrn::lint
