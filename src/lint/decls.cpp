#include "lint/decls.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace qrn::lint {

namespace {

template <std::size_t N>
[[nodiscard]] bool any_of_names(const std::array<std::string_view, N>& names,
                                std::string_view text) {
    return std::find(names.begin(), names.end(), text) != names.end();
}

// Leading decl-specifiers that carry no type information.
constexpr std::array<std::string_view, 9> kLeadingQualifiers{
    "static", "constexpr", "const",    "inline",  "mutable",
    "volatile", "thread_local", "extern", "register"};

// Statements starting with one of these are never variable declarations.
constexpr std::array<std::string_view, 31> kNeverDeclStarters{
    "using",    "typedef",  "friend",   "return",   "throw",   "if",
    "else",     "for",      "while",    "do",       "switch",  "case",
    "default",  "break",    "continue", "goto",     "delete",  "new",
    "public",   "private",  "protected", "template", "namespace", "class",
    "struct",   "enum",     "union",    "operator", "static_assert",
    "sizeof",   "this"};

constexpr std::array<std::string_view, 15> kBuiltinTypeWords{
    "unsigned", "signed",  "long",     "short",    "int",
    "char",     "bool",    "float",    "double",   "void",
    "auto",     "wchar_t", "char8_t",  "char16_t", "char32_t"};

[[nodiscard]] bool valid_identifier(std::string_view s) {
    if (s.empty()) return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
        return false;
    }
    return std::all_of(s.begin(), s.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    });
}

[[nodiscard]] std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
        s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
        s.remove_suffix(1);
    }
    return s;
}

}  // namespace

std::string_view Declaration::type_terminal() const {
    const std::size_t at = type.rfind("::");
    return at == std::string::npos ? std::string_view(type)
                                   : std::string_view(type).substr(at + 2);
}

// ---- DeclIndex ---------------------------------------------------------

DeclIndex::DeclIndex(const CodeView& view, const ScopeTree& scopes) {
    const std::vector<Scope>& all = scopes.scopes();
    for (int s = 0; s < static_cast<int>(all.size()); ++s) {
        const Scope& scope = all[static_cast<std::size_t>(s)];
        if (scope.kind == ScopeKind::Init || scope.kind == ScopeKind::Enum) {
            continue;  // initializer contents / enumerators are not decls
        }
        if (scope.params_open_ci != 0 || scope.params_close_ci != 0) {
            parse_params(view, scope, s);
        }
        index_scope(view, scopes, s);
    }
}

void DeclIndex::parse_params(const CodeView& view, const Scope& s, int scope) {
    const DeclKind kind =
        (s.kind == ScopeKind::Function || s.kind == ScopeKind::Lambda)
            ? DeclKind::Param
            : DeclKind::Local;  // for-init / condition / catch decls
    // Split the head's (...) on top-level ';' (for-loop header); each
    // segment is parsed as one candidate declaration statement.
    std::size_t seg = s.params_open_ci + 1;
    int depth = 0;
    for (std::size_t i = s.params_open_ci; i <= s.params_close_ci; ++i) {
        if (view.is_pp(i)) continue;
        const std::string& t = view.tok(i).text;
        if (t == "(" || t == "[" || t == "{") ++depth;
        if (t == ")" || t == "]" || t == "}") --depth;
        const bool at_end = i == s.params_close_ci;
        const bool split =
            at_end || (depth == 1 && (t == ";" || (kind == DeclKind::Param && t == ",")));
        if (!split) continue;
        parse_statement(view, seg, i, scope, kind);
        seg = i + 1;
    }
}

void DeclIndex::index_scope(const CodeView& view, const ScopeTree& scopes,
                            int scope) {
    const Scope& s = scopes.scopes()[static_cast<std::size_t>(scope)];
    const DeclKind kind =
        s.kind == ScopeKind::Class ? DeclKind::Member : DeclKind::Local;
    std::size_t i = s.kind == ScopeKind::File ? 0 : s.open_ci + 1;
    std::size_t stmt_start = i;
    while (i < s.close_ci && i < view.size()) {
        if (view.is_pp(i)) {
            ++i;
            continue;
        }
        const std::string& t = view.tok(i).text;
        if (t == "{") {
            const int child = scopes.scope_at(i);
            const Scope& cs = scopes.scopes()[static_cast<std::size_t>(child)];
            if (cs.kind == ScopeKind::Init) {
                // Brace initializer: stays part of this statement
                // (`std::string s{...};`); skip over its contents.
                i = cs.close_ci + 1;
                continue;
            }
            parse_statement(view, stmt_start, i, scope, kind);
            i = cs.close_ci + 1;
            stmt_start = i;
            continue;
        }
        if (t == ";") {
            parse_statement(view, stmt_start, i, scope, kind);
            stmt_start = i + 1;
        }
        ++i;
    }
}

void DeclIndex::parse_statement(const CodeView& view, std::size_t begin,
                                std::size_t end, int scope, DeclKind kind) {
    end = std::min(end, view.size());
    std::size_t i = begin;
    while (i < end && view.is_pp(i)) ++i;
    // Access labels prefix the first declaration after them in the
    // statement stream (`private: std::mutex mu_;`).
    while (i < end && view.tok(i).kind == TokKind::Identifier &&
           (view.tok(i).text == "public" || view.tok(i).text == "protected" ||
            view.tok(i).text == "private") &&
           view.is(view.next(i), ":")) {
        i = view.next(view.next(i));
    }
    // Leading decl-specifiers.
    while (i < end && view.tok(i).kind == TokKind::Identifier &&
           any_of_names(kLeadingQualifiers, view.tok(i).text)) {
        i = view.next(i);
    }
    if (i >= end) return;
    if (view.tok(i).kind != TokKind::Identifier && !view.is(i, "::")) return;
    if (view.tok(i).kind == TokKind::Identifier &&
        any_of_names(kNeverDeclStarters, view.tok(i).text)) {
        return;
    }

    // ---- type: builtin word run, or qualified id with template args ----
    std::string type;
    if (view.tok(i).kind == TokKind::Identifier &&
        any_of_names(kBuiltinTypeWords, view.tok(i).text)) {
        while (i < end && view.tok(i).kind == TokKind::Identifier &&
               any_of_names(kBuiltinTypeWords, view.tok(i).text)) {
            if (!type.empty()) type += ' ';
            type += view.tok(i).text;
            i = view.next(i);
        }
    } else {
        if (view.is(i, "::")) i = view.next(i);  // global-qualified
        if (i >= end || view.tok(i).kind != TokKind::Identifier) return;
        type = view.tok(i).text;
        i = view.next(i);
        for (;;) {
            if (i < end && view.is(i, "<")) {
                const std::size_t past = view.skip_template_args(i, view.size());
                if (past > end) return;  // comparison, not a template
                i = past;
            }
            if (i < end && view.is(i, "::")) {
                const std::size_t id = view.next(i);
                if (id >= end || view.tok(id).kind != TokKind::Identifier) return;
                type += "::";
                type += view.tok(id).text;
                i = view.next(id);
                continue;
            }
            break;
        }
    }

    // ---- declarator list -----------------------------------------------
    for (;;) {
        bool is_pointer = false;
        bool is_reference = false;
        while (i < end) {
            const std::string& d = view.tok(i).text;
            if (d == "*") {
                is_pointer = true;
            } else if (d == "&") {
                is_reference = true;
            } else if (view.is_ident(i, "const")) {
                // east const / const-qualified pointee
            } else {
                break;
            }
            i = view.next(i);
        }
        if (i >= end || view.tok(i).kind != TokKind::Identifier) return;
        if (any_of_names(kNeverDeclStarters, view.tok(i).text) ||
            any_of_names(kBuiltinTypeWords, view.tok(i).text)) {
            return;
        }
        Declaration d;
        d.kind = kind;
        d.name = view.tok(i).text;
        d.type = type;
        d.is_pointer = is_pointer;
        d.is_reference = is_reference;
        d.scope = scope;
        d.name_ci = i;
        d.line = view.tok(i).line;

        std::size_t j = view.next(i);
        if (j < end && view.is(j, "[")) {
            const std::size_t close = view.match_forward(j);
            if (close >= end) return;
            j = view.next(close);
        }
        if (j >= end) {  // segment ends right after the name: plain decl
            decls_.push_back(std::move(d));
            return;
        }
        const std::string& t = view.tok(j).text;
        if (t == "=" || t == ";" || t == ":") {
            // "= init" (skip to a top-level comma, if any), bit-field, or
            // range-for "decl : range".
            decls_.push_back(std::move(d));
            if (t != "=") return;
            std::size_t after_comma = view.size();
            int depth = 0;
            for (std::size_t k = view.next(j); k < end; k = view.next(k)) {
                const std::string& e = view.tok(k).text;
                if (e == "(" || e == "[" || e == "{" || e == "<") ++depth;
                if (e == ")" || e == "]" || e == "}" || e == ">") --depth;
                if (e == "," && depth == 0) {
                    after_comma = view.next(k);
                    break;
                }
            }
            if (after_comma >= end) return;
            i = after_comma;
            continue;
        }
        if (t == "," && kind != DeclKind::Param) {
            decls_.push_back(std::move(d));
            i = view.next(j);
            continue;
        }
        if (t == "(" || t == "{") {
            if (kind == DeclKind::Member && t == "(") {
                return;  // a method declaration, not a paren-initialized field
            }
            const std::size_t close = view.match_forward(j);
            if (close >= view.size()) return;
            // Terminal identifier of each top-level constructor argument.
            std::string last_ident;
            int depth = 0;
            for (std::size_t k = j; k <= close; k = view.next(k)) {
                const std::string& e = view.tok(k).text;
                if (e == "(" || e == "[" || e == "{") ++depth;
                if (e == ")" || e == "]" || e == "}") --depth;
                const bool arg_end = k == close || (depth == 1 && e == ",");
                if (view.tok(k).kind == TokKind::Identifier) {
                    last_ident = view.tok(k).text;
                }
                if (arg_end && !last_ident.empty()) {
                    d.init_arg_terminals.push_back(last_ident);
                    last_ident.clear();
                }
            }
            decls_.push_back(std::move(d));
            const std::size_t after = view.next(close);
            if (after < end && view.is(after, ",")) {
                i = view.next(after);
                continue;
            }
            return;
        }
        return;  // anything else: an expression, not a declaration
    }
}

const Declaration* DeclIndex::member(int class_scope,
                                     std::string_view name) const {
    for (const Declaration& d : decls_) {
        if (d.kind == DeclKind::Member && d.scope == class_scope &&
            d.name == name) {
            return &d;
        }
    }
    return nullptr;
}

const Declaration* DeclIndex::visible_local(std::string_view name,
                                            std::size_t ci, int at_scope,
                                            const ScopeTree& scopes) const {
    const Declaration* best = nullptr;
    for (const Declaration& d : decls_) {
        if (d.kind == DeclKind::Member || d.name != name) continue;
        if (d.name_ci >= ci) continue;
        if (!scopes.is_ancestor(d.scope, at_scope)) continue;
        if (best == nullptr || d.name_ci > best->name_ci) best = &d;
    }
    return best;
}

// ---- annotations -------------------------------------------------------

namespace {

/// Strips comment delimiters and doxygen decoration: "// x", "/* x */",
/// "/// x", "///< x" all yield "x". An annotation must START the comment
/// body (mirroring the suppression grammar), so prose that merely
/// mentions an annotation marker mid-sentence is never parsed as one.
[[nodiscard]] std::string_view annotation_body(std::string_view text) {
    while (!text.empty() && (text.front() == '/' || text.front() == '*' ||
                             text.front() == '<')) {
        text.remove_prefix(1);
    }
    if (text.size() >= 2 && text.substr(text.size() - 2) == "*/") {
        text.remove_suffix(2);
    }
    return trim(text);
}

void parse_annotations(const FileContext& ctx, SemanticModel& model) {
    constexpr std::string_view kGuard = "qrn:guarded_by";
    constexpr std::string_view kOrder = "qrn:lock_order";
    for (std::size_t i = 0; i < ctx.tokens.size(); ++i) {
        const Token& t = ctx.tokens[i];
        if (t.kind != TokKind::Comment) continue;
        const std::string_view text = annotation_body(t.text);

        const auto paren_payload =
            [&](std::string_view marker) -> std::pair<bool, std::string_view> {
            if (text.substr(0, marker.size()) != marker) return {false, {}};
            std::string_view rest = text.substr(marker.size());
            if (rest.empty() || rest[0] != '(') {
                model.annotation_errors.push_back(
                    {t.line, "malformed " + std::string(marker) +
                                 " annotation: expected '(...)' after the marker"});
                return {false, {}};
            }
            const std::size_t close = rest.find(')');
            if (close == std::string_view::npos) {
                model.annotation_errors.push_back(
                    {t.line, "unterminated " + std::string(marker) + "(...)"});
                return {false, {}};
            }
            return {true, rest.substr(1, close - 1)};
        };

        if (text.substr(0, kGuard.size()) == kGuard) {
            const auto [ok, payload] = paren_payload(kGuard);
            if (!ok) continue;
            std::vector<std::string> args;
            std::string_view rest = payload;
            for (;;) {
                const std::size_t comma = rest.find(',');
                args.emplace_back(trim(
                    comma == std::string_view::npos ? rest : rest.substr(0, comma)));
                if (comma == std::string_view::npos) break;
                rest = rest.substr(comma + 1);
            }
            const bool idents_ok = std::all_of(
                args.begin(), args.end(),
                [](const std::string& a) { return valid_identifier(a); });
            if (!idents_ok || args.empty() || args.size() > 2) {
                model.annotation_errors.push_back(
                    {t.line,
                     "qrn:guarded_by takes (mutex) on a member declaration or "
                     "(member, mutex) file-wide; got '(" +
                         std::string(payload) + ")'"});
                continue;
            }
            GuardedByAnnotation g;
            g.line = t.line;
            const bool alone = std::none_of(
                ctx.tokens.begin(),
                ctx.tokens.begin() + static_cast<std::ptrdiff_t>(i),
                [&](const Token& other) {
                    return other.kind != TokKind::Comment && other.line == t.line;
                });
            g.effective_line = alone ? t.line + 1 : t.line;
            if (args.size() == 2) {
                g.member = args[0];
                g.mutex = args[1];
            } else {
                g.mutex = args[0];
                for (std::size_t d = 0; d < model.decls.decls().size(); ++d) {
                    const Declaration& decl = model.decls.decls()[d];
                    if (decl.line == g.effective_line) {
                        g.decl = static_cast<int>(d);
                        break;
                    }
                }
            }
            model.guarded.push_back(std::move(g));
            continue;
        }
        if (text.substr(0, kOrder.size()) == kOrder) {
            const auto [ok, payload] = paren_payload(kOrder);
            if (!ok) continue;
            LockOrderDecl order;
            order.line = t.line;
            std::string_view rest = payload;
            bool idents_ok = true;
            for (;;) {
                const std::size_t lt = rest.find('<');
                const std::string name(trim(
                    lt == std::string_view::npos ? rest : rest.substr(0, lt)));
                idents_ok = idents_ok && valid_identifier(name);
                order.chain.push_back(name);
                if (lt == std::string_view::npos) break;
                rest = rest.substr(lt + 1);
            }
            if (!idents_ok || order.chain.size() < 2) {
                model.annotation_errors.push_back(
                    {t.line,
                     "qrn:lock_order declares a hierarchy as (outer < inner "
                     "[< ...]); got '(" +
                         std::string(payload) + ")'"});
                continue;
            }
            model.lock_order.push_back(std::move(order));
        }
    }
}

}  // namespace

SemanticModel::SemanticModel(const FileContext& ctx)
    : view(ctx.tokens, ctx.code, ctx.pp_lines),
      scopes(view),
      decls(view, scopes) {
    parse_annotations(ctx, *this);
}

const SemanticModel& semantics(const FileContext& ctx) {
    if (!ctx.sem) ctx.sem = std::make_shared<const SemanticModel>(ctx);
    return *ctx.sem;
}

}  // namespace qrn::lint
