// The qrn-lint rule registry.
//
// Each rule encodes one project invariant that earlier PRs established by
// convention; the registry makes them machine-checked. Rules see one file
// at a time as a token stream (tokenizer.h), so string literals, comments
// and raw strings can never trip them, and report Findings that the
// linter (linter.h) filters through inline suppressions (suppression.h).
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint/finding.h"
#include "lint/tokenizer.h"

namespace qrn::lint {

struct SemanticModel;  // decls.h; built lazily by semantics(ctx)

struct FileContext {
    /// Project-relative path with '/' separators (e.g. "src/qrn/json.cpp");
    /// rules scope themselves by prefix/suffix matches on it.
    std::string path;
    bool is_header = false;
    /// Full token stream, comments included.
    std::vector<Token> tokens;
    /// Indices into `tokens` of the non-comment tokens, in order; rules
    /// match identifier/punctuator sequences on this view.
    std::vector<std::size_t> code;
    /// Lines belonging to preprocessor directives (continuations
    /// included); the scope layer masks these out of structural analysis.
    std::set<int> pp_lines;
    /// Scope/declaration model, built on first use by semantics(ctx) and
    /// shared by every scope-aware rule on this file.
    mutable std::shared_ptr<const SemanticModel> sem;
};

/// Builds a FileContext from source text (tokenizes and classifies).
[[nodiscard]] FileContext make_context(std::string path, std::string_view src);

struct Rule {
    std::string id;
    std::string summary;  ///< one line for --list-rules and docs
    std::function<void(const FileContext&, std::vector<Finding>&)> check;
};

/// All registered rules, in stable documentation order. Includes the
/// suppression-hygiene pseudo-rule (checked by SuppressionSet, listed
/// here so --list-rules documents it and allow() can validate ids).
[[nodiscard]] const std::vector<Rule>& rules();

/// The registered rule ids, for suppression validation.
[[nodiscard]] const std::set<std::string>& rule_ids();

}  // namespace qrn::lint
