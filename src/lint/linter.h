// File discovery + rule execution + suppression filtering for qrn-lint.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/finding.h"

namespace qrn::lint {

struct LintResult {
    std::vector<Finding> findings;  ///< sorted by (file, line, rule)
    std::size_t files_scanned = 0;
};

/// Project-relative view of `path`: everything from the last
/// src/tests/bench/examples path component on (so findings printed from
/// an out-of-tree build still read "src/qrn/json.cpp:343"). Paths outside
/// those roots are returned unchanged, with '\\' normalized to '/'.
[[nodiscard]] std::string relativize(std::string path);

/// Lints one in-memory source file (the unit-test entry point).
/// `display_path` is relativized and used for rule scoping.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& display_path,
                                               std::string_view content);

/// Lints every *.cpp/*.h/*.hpp/*.cc/*.hh under the given files or
/// directories (recursively), in sorted path order. A path that does not
/// exist is reported through `error` and makes the call fail (empty
/// result, files_scanned == 0).
[[nodiscard]] LintResult lint_paths(const std::vector<std::string>& paths,
                                    std::string& error);

}  // namespace qrn::lint
