#include "lint/rules.h"

#include <array>
#include <algorithm>

#include "lint/rules_scope.h"
#include "lint/scope.h"
#include "lint/suppression.h"

namespace qrn::lint {

namespace {

// ---- small matching helpers over the non-comment token view ------------

[[nodiscard]] const Token& tok(const FileContext& c, std::size_t ci) {
    return c.tokens[c.code[ci]];
}

[[nodiscard]] bool text_is(const FileContext& c, std::size_t ci,
                           std::string_view text) {
    return ci < c.code.size() && tok(c, ci).text == text;
}

[[nodiscard]] bool is_ident(const FileContext& c, std::size_t ci,
                            std::string_view text) {
    return ci < c.code.size() && tok(c, ci).kind == TokKind::Identifier &&
           tok(c, ci).text == text;
}

[[nodiscard]] bool path_starts_with(const std::string& path,
                                    std::string_view prefix) {
    return path.size() >= prefix.size() &&
           std::string_view(path).substr(0, prefix.size()) == prefix;
}

template <std::size_t N>
[[nodiscard]] bool any_of_names(const std::array<std::string_view, N>& names,
                                std::string_view text) {
    return std::find(names.begin(), names.end(), text) != names.end();
}

// ---- raw-parse ---------------------------------------------------------

constexpr std::array<std::string_view, 23> kRawParseNames{
    "stod",    "stof",    "stold",    "stoi",     "stol",     "stoll",
    "stoul",   "stoull",  "atoi",     "atol",     "atoll",    "atof",
    "strtod",  "strtof",  "strtold",  "strtol",   "strtoll",  "strtoul",
    "strtoull", "sscanf", "vsscanf",  "scanf",    "fscanf"};

void check_raw_parse(const FileContext& c, std::vector<Finding>& out) {
    if (c.path == "src/tools/parse.cpp" || c.path == "src/qrn/json.cpp") return;
    for (std::size_t ci = 0; ci < c.code.size(); ++ci) {
        const Token& t = tok(c, ci);
        if (t.kind == TokKind::Identifier && any_of_names(kRawParseNames, t.text)) {
            out.push_back({c.path, t.line, "raw-parse",
                           "raw numeric parsing ('" + t.text +
                               "') bypasses the checked grammar; use "
                               "qrn_tools_parse (src/tools/parse.h)"});
        }
    }
}

// ---- ambient-rng -------------------------------------------------------

constexpr std::array<std::string_view, 10> kAmbientRngNames{
    "rand",          "srand",      "rand_r",
    "random_device", "mt19937",    "mt19937_64",
    "minstd_rand",   "minstd_rand0", "default_random_engine",
    "random_shuffle"};

void check_ambient_rng(const FileContext& c, std::vector<Finding>& out) {
    if (c.path == "src/stats/rng.cpp") return;
    for (std::size_t ci = 0; ci < c.code.size(); ++ci) {
        const Token& t = tok(c, ci);
        if (t.kind == TokKind::Identifier && any_of_names(kAmbientRngNames, t.text)) {
            out.push_back({c.path, t.line, "ambient-rng",
                           "ambient randomness ('" + t.text +
                               "') breaks bit-identical replay; seed a "
                               "stats::Rng (src/stats/rng.h)"});
        }
    }
}

// ---- naked-new ---------------------------------------------------------

void check_naked_new(const FileContext& c, std::vector<Finding>& out) {
    for (std::size_t ci = 0; ci < c.code.size(); ++ci) {
        const Token& t = tok(c, ci);
        if (t.kind != TokKind::Identifier) continue;
        const std::string prev = ci > 0 ? tok(c, ci - 1).text : "";
        if (t.text == "new") {
            if (prev == "operator") continue;  // allocation-function declaration
            out.push_back({c.path, t.line, "naked-new",
                           "naked 'new' is banned; use std::make_unique / "
                           "std::make_shared or a container"});
        } else if (t.text == "delete") {
            // "= delete" (deleted function) and "operator delete" are
            // declarations, not deallocations.
            if (prev == "=" || prev == "operator") continue;
            out.push_back({c.path, t.line, "naked-new",
                           "naked 'delete' is banned; ownership must live in "
                           "RAII types, never in a manual delete"});
        }
    }
}

// ---- thread-discipline -------------------------------------------------

void check_thread_discipline(const FileContext& c, std::vector<Finding>& out) {
    // Three sanctioned concurrency modules: src/exec owns the pool,
    // src/serve owns the daemon's long-lived accept/reader/dispatcher
    // threads (I/O-bound waiting a fixed pool cannot host without
    // starving compute work), and src/sched owns the distributed
    // coordinator's lease-renewal thread (a periodic timer that must tick
    // while the pool is saturated with fleet work).
    if (path_starts_with(c.path, "src/exec/") ||
        path_starts_with(c.path, "src/serve/") ||
        path_starts_with(c.path, "src/sched/")) {
        return;
    }
    for (std::size_t ci = 2; ci < c.code.size(); ++ci) {
        const Token& t = tok(c, ci);
        if (t.kind != TokKind::Identifier ||
            (t.text != "thread" && t.text != "jthread")) {
            continue;
        }
        if (text_is(c, ci - 1, "::") && is_ident(c, ci - 2, "std")) {
            out.push_back({c.path, t.line, "thread-discipline",
                           "std::" + t.text +
                               " outside src/exec, src/serve or src/sched; run "
                               "work on the shared pool via exec::parallel_for/"
                               "parallel_map (src/exec/parallel.h)"});
        }
    }
}

// ---- rng-stream --------------------------------------------------------

constexpr std::array<std::string_view, 3> kParallelEntryPoints{
    "parallel_for", "parallel_map", "parallel_chunks"};

/// ci sits on "<": returns the index just past the matching ">", or
/// `fail` if the angle bracket run does not close sanely.
[[nodiscard]] std::size_t skip_template_args(const FileContext& c, std::size_t ci,
                                             std::size_t fail) {
    int depth = 0;
    for (; ci < c.code.size(); ++ci) {
        const std::string& s = tok(c, ci).text;
        if (s == "<") {
            ++depth;
        } else if (s == ">") {
            if (--depth == 0) return ci + 1;
        } else if (s == ";" || s == "{" || s == "}") {
            return fail;  // was a comparison, not template arguments
        }
    }
    return fail;
}

void check_rng_stream(const FileContext& c, std::vector<Finding>& out) {
    std::vector<int> flagged_lines;
    for (std::size_t ci = 0; ci < c.code.size(); ++ci) {
        const Token& t = tok(c, ci);
        if (t.kind != TokKind::Identifier ||
            !any_of_names(kParallelEntryPoints, t.text)) {
            continue;
        }
        std::size_t open = ci + 1;
        if (text_is(c, open, "<")) {
            open = skip_template_args(c, open, c.code.size());
        }
        if (!text_is(c, open, "(")) continue;

        // Walk the balanced argument list of the parallel_* call and flag
        // any direct Rng construction inside it. Rng::stream(seed, index)
        // is the blessed schedule-independent derivation; everything else
        // ("Rng rng(x)", "Rng(x)", "Rng rng{x}") bakes draw order into
        // the chunk schedule.
        int depth = 0;
        for (std::size_t j = open; j < c.code.size(); ++j) {
            const std::string& s = tok(c, j).text;
            if (s == "(") ++depth;
            if (s == ")" && --depth == 0) break;
            if (!is_ident(c, j, "Rng")) continue;
            std::size_t k = j + 1;
            if (text_is(c, k, "::")) continue;  // Rng::stream / stream_seed
            if (k < c.code.size() && tok(c, k).kind == TokKind::Identifier) {
                ++k;  // "Rng rng(...)" declaration form
            }
            if (text_is(c, k, "(") || text_is(c, k, "{")) {
                const int line = tok(c, j).line;
                if (std::find(flagged_lines.begin(), flagged_lines.end(), line) ==
                    flagged_lines.end()) {
                    flagged_lines.push_back(line);
                    out.push_back(
                        {c.path, line, "rng-stream",
                         "direct Rng seeding inside a parallel region is "
                         "schedule-dependent; derive per-index streams with "
                         "stats::Rng::stream(seed, index)"});
                }
            }
        }
    }
}

// ---- using-namespace-header --------------------------------------------

void check_using_namespace_header(const FileContext& c, std::vector<Finding>& out) {
    if (!c.is_header) return;
    for (std::size_t ci = 0; ci + 1 < c.code.size(); ++ci) {
        if (is_ident(c, ci, "using") && is_ident(c, ci + 1, "namespace")) {
            out.push_back({c.path, tok(c, ci).line, "using-namespace-header",
                           "'using namespace' in a header leaks into every "
                           "includer; qualify names instead"});
        }
    }
}

// ---- iostream-in-lib ---------------------------------------------------

void check_iostream_in_lib(const FileContext& c, std::vector<Finding>& out) {
    if (!path_starts_with(c.path, "src/")) return;
    for (std::size_t ci = 0; ci + 4 < c.code.size(); ++ci) {
        if (text_is(c, ci, "#") && is_ident(c, ci + 1, "include") &&
            text_is(c, ci + 2, "<") && is_ident(c, ci + 3, "iostream") &&
            text_is(c, ci + 4, ">")) {
            out.push_back({c.path, tok(c, ci).line, "iostream-in-lib",
                           "<iostream> in library code pulls in global stream "
                           "objects and static init; take a std::ostream& or "
                           "return strings (CLI entry points may suppress)"});
        }
    }
}

// ---- raw-file-io -------------------------------------------------------

constexpr std::array<std::string_view, 3> kRawIoFunctions{"fread", "fwrite",
                                                          "fopen"};

/// Unchecked binary stream I/O is confined to the shard store - the one
/// layer that checksums every byte it reads back - and the manifest
/// serializer. Anywhere else, raw fread/fwrite or stream .read()/.write()
/// produces bytes no integrity check ever sees.
void check_raw_file_io(const FileContext& c, std::vector<Finding>& out) {
    if (path_starts_with(c.path, "src/store/")) return;
    if (c.path == "src/obs/manifest.cpp") return;
    for (std::size_t ci = 0; ci < c.code.size(); ++ci) {
        const Token& t = tok(c, ci);
        if (t.kind != TokKind::Identifier) continue;
        if (any_of_names(kRawIoFunctions, t.text)) {
            out.push_back({c.path, t.line, "raw-file-io",
                           "raw binary file I/O ('" + t.text +
                               "') outside src/store bypasses the checksummed "
                               "shard layer; go through qrn_store or the "
                               "checked JSON loaders"});
            continue;
        }
        // Member-call form: stream.read(...) / stream->write(...). The
        // tokenizer emits "->" as two punctuators, '-' then '>'.
        if ((t.text == "read" || t.text == "write") && ci > 0 &&
            (text_is(c, ci - 1, ".") ||
             (ci > 1 && text_is(c, ci - 2, "-") && text_is(c, ci - 1, ">"))) &&
            text_is(c, ci + 1, "(")) {
            out.push_back({c.path, t.line, "raw-file-io",
                           "unchecked stream ." + t.text +
                               "() outside src/store bypasses the checksummed "
                               "shard layer; go through qrn_store or the "
                               "checked JSON loaders"});
        }
    }
}

// ---- throw-message -----------------------------------------------------

constexpr std::array<std::string_view, 7> kPreconditionExceptions{
    "invalid_argument", "logic_error",   "domain_error", "out_of_range",
    "length_error",     "runtime_error", "range_error"};

void check_throw_message(const FileContext& c, std::vector<Finding>& out) {
    for (std::size_t ci = 0; ci < c.code.size(); ++ci) {
        if (!is_ident(c, ci, "throw")) continue;
        // Skip the (possibly qualified) thrown type: id ("::" id)*.
        std::size_t j = ci + 1;
        std::string last_ident;
        while (j < c.code.size() && tok(c, j).kind == TokKind::Identifier) {
            last_ident = tok(c, j).text;
            if (!text_is(c, j + 1, "::")) {
                ++j;
                break;
            }
            j += 2;
        }
        if (last_ident.empty() ||
            !any_of_names(kPreconditionExceptions, last_ident)) {
            continue;
        }
        const bool paren = text_is(c, j, "(");
        const bool brace = text_is(c, j, "{");
        if (!paren && !brace) continue;
        const Token& first_arg = j + 1 < c.code.size()
                                     ? tok(c, j + 1)
                                     : Token{};
        const bool empty_args =
            (paren && first_arg.text == ")") || (brace && first_arg.text == "}");
        const bool empty_message =
            first_arg.kind == TokKind::String &&
            (first_arg.text == "\"\"" || first_arg.text == "u8\"\"");
        if (empty_args || empty_message) {
            out.push_back({c.path, tok(c, ci).line, "throw-message",
                           "precondition throw of std::" + last_ident +
                               " carries no message; say which contract was "
                               "violated and by what value"});
        }
    }
}

}  // namespace

FileContext make_context(std::string path, std::string_view src) {
    FileContext ctx;
    ctx.path = std::move(path);
    const std::size_t dot = ctx.path.rfind('.');
    if (dot != std::string::npos) {
        const std::string ext = ctx.path.substr(dot);
        ctx.is_header = ext == ".h" || ext == ".hpp" || ext == ".hh" || ext == ".inl";
    }
    ctx.tokens = tokenize(src);
    for (std::size_t i = 0; i < ctx.tokens.size(); ++i) {
        if (ctx.tokens[i].kind != TokKind::Comment) ctx.code.push_back(i);
    }
    ctx.pp_lines = preprocessor_lines(src);
    return ctx;
}

const std::vector<Rule>& rules() {
    static const std::vector<Rule> kRules = [] {
        std::vector<Rule> r;
        r.push_back(Rule{"raw-parse",
                     "std::sto*/ato*/strto*/sscanf outside the checked parse "
                     "layer (src/tools/parse.cpp, src/qrn/json.cpp)",
                     check_raw_parse});
        r.push_back(Rule{"ambient-rng",
                     "rand()/std::random_device/engine construction outside "
                     "src/stats/rng.cpp",
                     check_ambient_rng});
        r.push_back(Rule{"naked-new",
                     "naked new/delete expressions (ownership must be RAII)",
                     check_naked_new});
        r.push_back(Rule{"thread-discipline",
                     "std::thread/std::jthread outside src/exec, src/serve or "
                     "src/sched (use the shared pool)",
                     check_thread_discipline});
        r.push_back(Rule{"rng-stream",
                     "direct Rng seeding inside parallel_for/map/chunks "
                     "arguments (use Rng::stream)",
                     check_rng_stream});
        r.push_back(Rule{"using-namespace-header",
                     "'using namespace' at any scope in a header",
                     check_using_namespace_header});
        r.push_back(Rule{"iostream-in-lib",
                     "#include <iostream> in src/ library code",
                     check_iostream_in_lib});
        r.push_back(Rule{"raw-file-io",
                     "fread/fwrite/fopen or stream .read()/.write() outside "
                     "src/store and the manifest serializer",
                     check_raw_file_io});
        r.push_back(Rule{"throw-message",
                     "precondition throw (std::invalid_argument & co) with "
                     "empty or missing message",
                     check_throw_message});
        r.push_back(Rule{"hotloop-alloc",
                     "per-iteration heap allocation (owning std container "
                     "declaration, make_unique/make_shared) inside a "
                     "qrn:hotloop(begin)/(end) region - scope-aware: "
                     "buffers hoisted before the loop are clean; "
                     "unbalanced markers",
                     check_hotloop_alloc_scoped});
        r.push_back(Rule{"guarded-by",
                     "a member annotated '// qrn:guarded_by(mu_)' touched "
                     "with no lock_guard/unique_lock on that mutex in scope",
                     check_guarded_by});
        r.push_back(Rule{"guard-annotation",
                     "malformed qrn:guarded_by/qrn:lock_order annotation, "
                     "or one naming a nonexistent member or non-mutex",
                     check_guard_annotation});
        r.push_back(Rule{"lock-order",
                     "acquiring a mutex against the declared "
                     "'// qrn:lock_order(outer < inner)' hierarchy, or "
                     "re-acquiring one already held",
                     check_lock_order});
        r.push_back(Rule{"dispatcher-no-block",
                     "blocking call (socket/file I/O, sleep, join) inside "
                     "a qrn:dispatcher(begin)/(end) region; unbalanced "
                     "markers",
                     check_dispatcher_no_block});
        r.push_back(Rule{"unchecked-seal",
                     "discarded result of ShardWriter::seal, "
                     "BoundedQueue::try_push or tools::parse_*; raw fsync "
                     "outside the store's sync wrappers",
                     check_unchecked_seal});
        r.push_back(Rule{kSuppressionHygieneRule,
                     "malformed 'qrn-lint: allow(...)' comment: no reason, "
                     "unknown rule id (never suppressible)",
                     [](const FileContext&, std::vector<Finding>&) {
                         // Emitted by SuppressionSet while parsing comments.
                     }});
        return r;
    }();
    return kRules;
}

const std::set<std::string>& rule_ids() {
    static const std::set<std::string> kIds = [] {
        std::set<std::string> ids;
        for (const Rule& r : rules()) ids.insert(r.id);
        return ids;
    }();
    return kIds;
}

}  // namespace qrn::lint
