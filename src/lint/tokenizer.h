// Comment/string/raw-string-aware C++ tokenizer for qrn-lint.
//
// This is not a compiler front end: it produces just enough lexical
// structure for the project rules in rules.h to match identifier and
// punctuator sequences without being fooled by comments, string literals
// (including raw strings and encoding prefixes), character literals,
// digit separators or line continuations. Comments are kept as tokens so
// the suppression grammar (suppression.h) can read them; rules match on
// the non-comment stream.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qrn::lint {

enum class TokKind {
    Identifier,  ///< keywords are not distinguished from identifiers
    Number,      ///< pp-number, including 0x1F, 1'000'000, 1.5e-3
    String,      ///< "..." with escapes, u8"...", R"delim(...)delim"
    CharLit,     ///< 'a', '\n', u'x'
    Comment,     ///< // ... (splice-extended) or /* ... */, delimiters kept
    Punct,       ///< single characters, except "::" which is one token
};

struct Token {
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 1;  ///< 1-based line the token starts on
};

/// Lexes `src`. Line continuations (backslash-newline, also with a
/// trailing CR) are spliced everywhere except inside raw string literals,
/// exactly like translation phase 2; line numbers still count the spliced
/// physical lines so findings point at real source lines. Unterminated
/// literals and comments are closed at end of input rather than rejected:
/// the linter must degrade gracefully on code the compiler will reject
/// anyway.
[[nodiscard]] std::vector<Token> tokenize(std::string_view src);

}  // namespace qrn::lint
