// Plain-text table rendering for the bench binaries.
//
// Every figure/table reproduction prints its rows through this builder so
// that the regenerated artifacts share one format and can be diffed between
// runs. Columns auto-size; cells are strings formatted by the caller (see
// format.h helpers for numbers and frequencies).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qrn::report {

/// Column alignment within a rendered table.
enum class Align { Left, Right };

/// Incrementally built, auto-sized ASCII table.
class Table {
public:
    /// Creates a table with the given column headers (at least one).
    explicit Table(std::vector<std::string> headers);

    /// Sets alignment for one column (default: Left).
    void set_align(std::size_t column, Align align);

    /// Appends a row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    /// Inserts a horizontal separator line before the next row.
    void add_separator();

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Renders the table, including a header rule, to a string.
    [[nodiscard]] std::string render() const;

private:
    struct Row {
        std::vector<std::string> cells;  // empty => separator
        bool is_separator = false;
    };

    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

/// Formats a double with the given precision (fixed notation).
[[nodiscard]] std::string fixed(double value, int precision);

/// Formats a double in scientific notation (e.g. "1.0e-07").
[[nodiscard]] std::string scientific(double value, int precision = 1);

/// Formats a fraction as a percentage string (e.g. 0.7 -> "70.0%").
[[nodiscard]] std::string percent(double fraction, int precision = 1);

}  // namespace qrn::report
