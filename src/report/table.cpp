#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace qrn::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Left) {
    if (headers_.empty()) throw std::invalid_argument("Table: needs at least one column");
}

void Table::set_align(std::size_t column, Align align) {
    if (column >= aligns_.size()) throw std::out_of_range("Table::set_align: bad column");
    aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("Table::add_row: cell count != column count");
    }
    rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::string Table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        if (row.is_separator) continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            widths[c] = std::max(widths[c], row.cells[c].size());
        }
    }

    const auto pad = [&](const std::string& s, std::size_t w, Align a) {
        std::string out;
        if (a == Align::Right) out.append(w - s.size(), ' ');
        out += s;
        if (a == Align::Left) out.append(w - s.size(), ' ');
        return out;
    };
    const auto rule = [&] {
        std::string out;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            out += std::string(widths[c] + 2, '-');
            out += c + 1 < widths.size() ? "+" : "";
        }
        return out + "\n";
    };

    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << ' ' << pad(headers_[c], widths[c], aligns_[c]) << ' ';
        if (c + 1 < headers_.size()) os << '|';
    }
    os << '\n' << rule();
    for (const auto& row : rows_) {
        if (row.is_separator) {
            os << rule();
            continue;
        }
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            os << ' ' << pad(row.cells[c], widths[c], aligns_[c]) << ' ';
            if (c + 1 < row.cells.size()) os << '|';
        }
        os << '\n';
    }
    return os.str();
}

std::string fixed(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

std::string scientific(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*e", precision, value);
    return buf;
}

std::string percent(double fraction, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
    return buf;
}

}  // namespace qrn::report
