// ASCII rendering of one-dimensional series: horizontal bar charts (for the
// per-class budget bars of Fig. 3/5) and log-scale staircase plots (for the
// acceptable-risk curves of Fig. 1/2). Rendering is pure text so figure
// benches need no plotting dependency.
#pragma once

#include <string>
#include <vector>

namespace qrn::report {

/// One labelled value in a bar chart.
struct BarItem {
    std::string label;
    double value = 0.0;
};

/// Renders labelled horizontal bars scaled to `width` characters.
/// Values must be >= 0; all-zero input renders empty bars.
[[nodiscard]] std::string bar_chart(const std::vector<BarItem>& items,
                                    std::size_t width = 50);

/// Renders bars on a log10 scale between the data's min and max positive
/// values. Non-positive values render as empty bars. Suitable for
/// frequencies spanning many orders of magnitude.
[[nodiscard]] std::string log_bar_chart(const std::vector<BarItem>& items,
                                        std::size_t width = 50);

/// A stacked bar: one label with multiple named segments (e.g. one
/// consequence class with contributions from several incident types).
struct StackedBar {
    std::string label;
    std::vector<BarItem> segments;
    double limit = 0.0;  ///< Budget line; drawn as '|' when > 0.
};

/// Renders stacked horizontal bars with a shared linear scale, one distinct
/// fill character per segment index, plus a legend.
[[nodiscard]] std::string stacked_bar_chart(const std::vector<StackedBar>& bars,
                                            std::size_t width = 50);

}  // namespace qrn::report
