// Minimal RFC-4180-ish CSV writer used by the benches to emit the data
// series behind each regenerated figure alongside the human-readable table.
#pragma once

#include <string>
#include <vector>

namespace qrn::report {

/// Builds CSV text in memory; the caller decides where it goes.
class CsvWriter {
public:
    /// Starts the document with a header row (at least one column).
    explicit CsvWriter(std::vector<std::string> headers);

    /// Appends a row; must match the header column count.
    void add_row(std::vector<std::string> cells);

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Renders the full document (header + rows), quoting where needed.
    [[nodiscard]] std::string render() const;

    /// Writes the rendered document to a file. Throws on I/O failure.
    void write_file(const std::string& path) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace qrn::report
