#include "report/series.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace qrn::report {

namespace {

std::size_t label_width(const std::vector<BarItem>& items) {
    std::size_t w = 0;
    for (const auto& item : items) w = std::max(w, item.label.size());
    return w;
}

std::string value_text(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3e", v);
    return buf;
}

}  // namespace

std::string bar_chart(const std::vector<BarItem>& items, std::size_t width) {
    double max_v = 0.0;
    for (const auto& item : items) max_v = std::max(max_v, item.value);
    const std::size_t lw = label_width(items);
    std::ostringstream os;
    for (const auto& item : items) {
        const auto n = max_v <= 0.0
                           ? std::size_t{0}
                           : static_cast<std::size_t>(
                                 std::lround(item.value / max_v * static_cast<double>(width)));
        os << item.label << std::string(lw - item.label.size(), ' ') << " |"
           << std::string(n, '#') << ' ' << value_text(item.value) << '\n';
    }
    return os.str();
}

std::string log_bar_chart(const std::vector<BarItem>& items, std::size_t width) {
    double min_v = 0.0, max_v = 0.0;
    bool any = false;
    for (const auto& item : items) {
        if (item.value <= 0.0) continue;
        if (!any) {
            min_v = max_v = item.value;
            any = true;
        } else {
            min_v = std::min(min_v, item.value);
            max_v = std::max(max_v, item.value);
        }
    }
    const std::size_t lw = label_width(items);
    std::ostringstream os;
    const double lo = any ? std::log10(min_v) - 0.5 : 0.0;
    const double hi = any ? std::log10(max_v) : 1.0;
    const double span = std::max(hi - lo, 1e-9);
    for (const auto& item : items) {
        std::size_t n = 0;
        if (item.value > 0.0) {
            const double frac = (std::log10(item.value) - lo) / span;
            n = static_cast<std::size_t>(
                std::lround(std::clamp(frac, 0.0, 1.0) * static_cast<double>(width)));
        }
        os << item.label << std::string(lw - item.label.size(), ' ') << " |"
           << std::string(n, '#') << ' ' << value_text(item.value) << '\n';
    }
    return os.str();
}

std::string stacked_bar_chart(const std::vector<StackedBar>& bars, std::size_t width) {
    static constexpr char kFill[] = {'#', '=', '+', '*', 'o', '~', '%', '@'};
    double max_v = 0.0;
    std::size_t lw = 0;
    for (const auto& bar : bars) {
        double total = 0.0;
        for (const auto& seg : bar.segments) total += seg.value;
        max_v = std::max({max_v, total, bar.limit});
        lw = std::max(lw, bar.label.size());
    }
    std::ostringstream os;
    for (const auto& bar : bars) {
        os << bar.label << std::string(lw - bar.label.size(), ' ') << " |";
        double total = 0.0;
        std::string fill;
        for (std::size_t s = 0; s < bar.segments.size(); ++s) {
            const double v = bar.segments[s].value;
            total += v;
            const auto n = max_v <= 0.0
                               ? std::size_t{0}
                               : static_cast<std::size_t>(std::lround(
                                     v / max_v * static_cast<double>(width)));
            fill.append(n, kFill[s % sizeof kFill]);
        }
        // Budget line position on the same scale.
        if (bar.limit > 0.0 && max_v > 0.0) {
            const auto pos = static_cast<std::size_t>(
                std::lround(bar.limit / max_v * static_cast<double>(width)));
            if (fill.size() < pos) fill.append(pos - fill.size(), ' ');
            fill.insert(fill.begin() + static_cast<std::ptrdiff_t>(std::min(pos, fill.size())),
                        '|');
        }
        os << fill << "  total=" << value_text(total);
        if (bar.limit > 0.0) os << " limit=" << value_text(bar.limit);
        os << '\n';
    }
    // Legend from the first bar's segment labels (shared ordering assumed).
    if (!bars.empty() && !bars.front().segments.empty()) {
        os << "legend:";
        for (std::size_t s = 0; s < bars.front().segments.size(); ++s) {
            os << ' ' << kFill[s % sizeof kFill] << '=' << bars.front().segments[s].label;
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace qrn::report
