#include "report/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qrn::report {

namespace {

std::string escape(const std::string& cell) {
    // CR must quote too: a bare \r inside an unquoted cell splits the
    // record on CRLF-aware readers (RFC 4180).
    if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("CsvWriter: needs >= 1 column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("CsvWriter::add_row: cell count != column count");
    }
    rows_.push_back(std::move(cells));
}

std::string CsvWriter::render() const {
    std::ostringstream os;
    const auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << escape(cells[c]);
            if (c + 1 < cells.size()) os << ',';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("CsvWriter: cannot open " + path);
    f << render();
    if (!f) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace qrn::report
