// Assembles the QRN safety case from the toolkit's artifacts.
//
// Structure (mirroring the paper's argumentation):
//   Top claim: the ADS is sufficiently safe, i.e. the QRN is met in-ODD.
//     Strategy: argue over the risk norm's consequence classes.
//       Claim per class: its acceptable frequency is not exceeded.
//         Evidence: Eq. 1 verification verdict for that class.
//     Strategy: argue completeness of the safety goals.
//       Evidence: MECE certificate of the incident classification.
//       Evidence: allocation soundness (Eq. 1 at the budgets).
//     Strategy: argue each safety goal is implemented.
//       Claim per SG: the implementation meets its budget.
//         Evidence: fleet evidence verdict for the goal.
//         Evidence: FSC closure for the goal (when an FSC is supplied).
#pragma once

#include <optional>

#include "fsc/fsr.h"
#include "qrn/classification.h"
#include "qrn/safety_goal.h"
#include "qrn/verification.h"
#include "safety_case/argument.h"

namespace qrn::safety_case {

/// Inputs to the case builder. Pointers refer to caller-owned artifacts and
/// must outlive the call (the builder copies what it needs into the tree).
struct CaseInputs {
    const AllocationProblem* problem = nullptr;        ///< Required.
    const Allocation* allocation = nullptr;            ///< Required.
    const SafetyGoalSet* goals = nullptr;              ///< Required.
    const MeceReport* mece_certificate = nullptr;      ///< Required.
    const VerificationReport* verification = nullptr;  ///< Required.
    const fsc::FunctionalSafetyConcept* fsc = nullptr; ///< Optional.
};

/// Builds the full QRN safety case. Evidence statuses come from the
/// artifacts: e.g. a class whose verification verdict is Violated yields
/// Failed evidence, PointFulfilled yields Pending ("more exposure needed"),
/// Fulfilled yields Supported. Throws if a required input is missing or
/// the inputs are mutually inconsistent (sizes/ids).
[[nodiscard]] SafetyCase build_case(const CaseInputs& inputs);

}  // namespace qrn::safety_case
