// Safety-case argument trees (goal-structuring-notation style).
//
// The paper repeatedly speaks of the "safety argument and body of evidence,
// or safety case" whose top claim the risk norm defines ("the risk norm
// defines what is regarded 'sufficiently safe' in the design-time safety
// case top claim", Sec. III-A). This module provides the argument
// structure: claims supported through strategies by subclaims, terminating
// in evidence; plus solvedness propagation so a case can be queried for
// open (unsupported) claims.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace qrn::safety_case {

/// Node kinds of the argument tree.
enum class NodeKind : std::uint8_t {
    Claim,     ///< A proposition to be supported (GSN goal).
    Strategy,  ///< How the parent claim is decomposed (GSN strategy).
    Evidence,  ///< A terminal solution (GSN solution).
};

[[nodiscard]] std::string_view to_string(NodeKind kind) noexcept;

/// Whether an evidence item currently holds.
enum class EvidenceStatus : std::uint8_t {
    Supported,  ///< The referenced artifact demonstrates the claim.
    Failed,     ///< The artifact exists but contradicts the claim.
    Pending,    ///< Not yet produced.
};

/// One node of the argument.
class ArgumentNode {
    /// Passkey: only the static factories can name this type, so only they
    /// can construct nodes - but through std::make_unique, not a naked new.
    struct Passkey {
        explicit Passkey() = default;
    };

public:
    ArgumentNode(Passkey, std::string id, std::string text, NodeKind kind,
                 EvidenceStatus status);

    /// Creates a claim or strategy node (no status).
    [[nodiscard]] static std::unique_ptr<ArgumentNode> claim(std::string id,
                                                             std::string text);
    [[nodiscard]] static std::unique_ptr<ArgumentNode> strategy(std::string id,
                                                                std::string text);
    /// Creates an evidence node with its status.
    [[nodiscard]] static std::unique_ptr<ArgumentNode> evidence(std::string id,
                                                                std::string text,
                                                                EvidenceStatus status);

    [[nodiscard]] const std::string& id() const noexcept { return id_; }
    [[nodiscard]] const std::string& text() const noexcept { return text_; }
    [[nodiscard]] NodeKind kind() const noexcept { return kind_; }
    [[nodiscard]] EvidenceStatus status() const noexcept { return status_; }
    [[nodiscard]] const std::vector<std::unique_ptr<ArgumentNode>>& children()
        const noexcept {
        return children_;
    }

    /// Adds a child (claims/strategies only; evidence is terminal) and
    /// returns it for chained building.
    ArgumentNode& add(std::unique_ptr<ArgumentNode> child);

    /// A node is solved when: evidence -> status Supported; claim/strategy
    /// -> it has children and all children are solved.
    [[nodiscard]] bool solved() const;

    /// Collects ids of unsolved nodes (open claims, failed/pending
    /// evidence, childless claims).
    void collect_open(std::vector<std::string>& out) const;

    /// Indented rendering with per-node solvedness markers.
    [[nodiscard]] std::string render(int indent = 0) const;

private:
    std::string id_;
    std::string text_;
    NodeKind kind_;
    EvidenceStatus status_ = EvidenceStatus::Pending;
    std::vector<std::unique_ptr<ArgumentNode>> children_;
};

/// A complete safety case: a named argument tree with query helpers.
class SafetyCase {
public:
    SafetyCase(std::string title, std::unique_ptr<ArgumentNode> top_claim);

    [[nodiscard]] const std::string& title() const noexcept { return title_; }
    [[nodiscard]] const ArgumentNode& top() const noexcept { return *top_; }

    /// The case holds iff the top claim is solved.
    [[nodiscard]] bool holds() const { return top_->solved(); }

    /// Ids of all open (unsolved) nodes, depth-first.
    [[nodiscard]] std::vector<std::string> open_items() const;

    [[nodiscard]] std::string render() const;

    /// GitHub-flavoured markdown rendering: nested task-list bullets with
    /// solvedness checkboxes, suitable for committing next to the code or
    /// pasting into review tooling.
    [[nodiscard]] std::string render_markdown() const;

private:
    std::string title_;
    std::unique_ptr<ArgumentNode> top_;
};

}  // namespace qrn::safety_case
