#include "safety_case/argument.h"

#include <sstream>
#include <stdexcept>

namespace qrn::safety_case {

std::string_view to_string(NodeKind kind) noexcept {
    switch (kind) {
        case NodeKind::Claim: return "claim";
        case NodeKind::Strategy: return "strategy";
        case NodeKind::Evidence: return "evidence";
    }
    return "?";
}

ArgumentNode::ArgumentNode(Passkey, std::string id, std::string text, NodeKind kind,
                           EvidenceStatus status)
    : id_(std::move(id)), text_(std::move(text)), kind_(kind), status_(status) {
    if (id_.empty()) throw std::invalid_argument("ArgumentNode: id must be non-empty");
    if (text_.empty()) throw std::invalid_argument("ArgumentNode: text must be non-empty");
}

std::unique_ptr<ArgumentNode> ArgumentNode::claim(std::string id, std::string text) {
    return std::make_unique<ArgumentNode>(Passkey{}, std::move(id), std::move(text),
                                          NodeKind::Claim, EvidenceStatus::Pending);
}

std::unique_ptr<ArgumentNode> ArgumentNode::strategy(std::string id, std::string text) {
    return std::make_unique<ArgumentNode>(Passkey{}, std::move(id), std::move(text),
                                          NodeKind::Strategy, EvidenceStatus::Pending);
}

std::unique_ptr<ArgumentNode> ArgumentNode::evidence(std::string id, std::string text,
                                                     EvidenceStatus status) {
    return std::make_unique<ArgumentNode>(Passkey{}, std::move(id), std::move(text),
                                          NodeKind::Evidence, status);
}

ArgumentNode& ArgumentNode::add(std::unique_ptr<ArgumentNode> child) {
    if (kind_ == NodeKind::Evidence) {
        throw std::invalid_argument("ArgumentNode: evidence nodes are terminal");
    }
    if (!child) throw std::invalid_argument("ArgumentNode::add: child must be non-null");
    children_.push_back(std::move(child));
    return *children_.back();
}

bool ArgumentNode::solved() const {
    if (kind_ == NodeKind::Evidence) return status_ == EvidenceStatus::Supported;
    if (children_.empty()) return false;  // an undeveloped claim is open
    for (const auto& child : children_) {
        if (!child->solved()) return false;
    }
    return true;
}

void ArgumentNode::collect_open(std::vector<std::string>& out) const {
    if (solved()) return;
    if (kind_ == NodeKind::Evidence || children_.empty()) {
        out.push_back(id_);
        return;
    }
    for (const auto& child : children_) child->collect_open(out);
}

std::string ArgumentNode::render(int indent) const {
    std::ostringstream os;
    os << std::string(static_cast<std::size_t>(indent) * 2, ' ') << '['
       << to_string(kind_) << ' ' << id_ << (solved() ? " +" : " OPEN") << "] " << text_
       << '\n';
    for (const auto& child : children_) os << child->render(indent + 1);
    return os.str();
}

SafetyCase::SafetyCase(std::string title, std::unique_ptr<ArgumentNode> top_claim)
    : title_(std::move(title)), top_(std::move(top_claim)) {
    if (title_.empty()) throw std::invalid_argument("SafetyCase: title must be non-empty");
    if (!top_) throw std::invalid_argument("SafetyCase: top claim must be non-null");
    if (top_->kind() != NodeKind::Claim) {
        throw std::invalid_argument("SafetyCase: the top node must be a claim");
    }
}

std::vector<std::string> SafetyCase::open_items() const {
    std::vector<std::string> out;
    top_->collect_open(out);
    return out;
}

namespace {

void markdown_node(std::ostringstream& os, const ArgumentNode& node, int depth) {
    os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "- ["
       << (node.solved() ? 'x' : ' ') << "] **" << node.id() << "** ("
       << to_string(node.kind()) << "): " << node.text() << '\n';
    for (const auto& child : node.children()) markdown_node(os, *child, depth + 1);
}

}  // namespace

std::string SafetyCase::render_markdown() const {
    std::ostringstream os;
    os << "# " << title_ << "\n\n"
       << "Status: " << (holds() ? "**HOLDS**" : "**OPEN**") << "\n\n";
    markdown_node(os, *top_, 0);
    const auto open = open_items();
    if (!open.empty()) {
        os << "\nOpen items:\n";
        for (const auto& id : open) os << "- " << id << '\n';
    }
    return os.str();
}

std::string SafetyCase::render() const {
    std::ostringstream os;
    os << "Safety case: " << title_ << (holds() ? "  [HOLDS]" : "  [OPEN]") << '\n'
       << std::string(60, '=') << '\n'
       << top_->render();
    return os.str();
}

}  // namespace qrn::safety_case
