#include "safety_case/builder.h"

#include <stdexcept>

namespace qrn::safety_case {

namespace {

EvidenceStatus status_for(ClassVerdict verdict) {
    switch (verdict) {
        case ClassVerdict::Fulfilled: return EvidenceStatus::Supported;
        case ClassVerdict::PointFulfilled: return EvidenceStatus::Pending;
        case ClassVerdict::Violated: return EvidenceStatus::Failed;
    }
    return EvidenceStatus::Pending;
}

}  // namespace

SafetyCase build_case(const CaseInputs& inputs) {
    if (inputs.problem == nullptr || inputs.allocation == nullptr ||
        inputs.goals == nullptr || inputs.mece_certificate == nullptr ||
        inputs.verification == nullptr) {
        throw std::invalid_argument("build_case: all required inputs must be provided");
    }
    const auto& problem = *inputs.problem;
    const auto& verification = *inputs.verification;
    if (verification.classes.size() != problem.norm().size() ||
        verification.goals.size() != inputs.goals->size()) {
        throw std::invalid_argument("build_case: verification report shape mismatch");
    }

    auto top = ArgumentNode::claim(
        "G1", "The ADS is sufficiently safe: inside the declared ODD, the "
              "quantitative risk norm '" + problem.norm().name() + "' is met.");

    // ---- Branch 1: per-consequence-class fulfilment (Eq. 1 on evidence).
    auto& by_class = top->add(ArgumentNode::strategy(
        "S1", "Argue over every consequence class of the risk norm."));
    for (const auto& c : verification.classes) {
        auto& claim = by_class.add(ArgumentNode::claim(
            "G-" + c.class_id, "Consequences in class " + c.class_id +
                                   " occur below " + c.limit.to_string() + "."));
        claim.add(ArgumentNode::evidence(
            "E-" + c.class_id,
            "Fleet evidence at " +
                std::to_string(static_cast<int>(verification.confidence * 100)) +
                "% confidence: point usage " + c.point_usage.to_string() +
                ", upper-bounded usage " + c.upper_usage.to_string() + " vs limit " +
                c.limit.to_string() + " (" + std::string(to_string(c.verdict)) + ").",
            status_for(c.verdict)));
    }

    // ---- Branch 2: completeness of the safety goals.
    auto& completeness = top->add(ArgumentNode::strategy(
        "S2", "Argue completeness: every theoretically possible incident is "
              "covered by the classification, and the allocated budgets "
              "satisfy Eq. 1."));
    completeness.add(ArgumentNode::evidence(
        "E-MECE",
        "MECE certificate over " + std::to_string(inputs.mece_certificate->samples) +
            " sampled incidents: " +
            std::to_string(inputs.mece_certificate->violations.size()) +
            " gaps/overlaps.",
        inputs.mece_certificate->certified() ? EvidenceStatus::Supported
                                             : EvidenceStatus::Failed));
    completeness.add(ArgumentNode::evidence(
        "E-ALLOC",
        "Allocated budgets satisfy Eq. 1 for every consequence class "
        "(solver: " + inputs.allocation->solver + ").",
        satisfies_norm(problem, inputs.allocation->budgets) ? EvidenceStatus::Supported
                                                            : EvidenceStatus::Failed));

    // ---- Branch 3: per-goal implementation.
    auto& per_goal = top->add(ArgumentNode::strategy(
        "S3", "Argue each safety goal is respected by the implementation."));
    for (const auto& g : verification.goals) {
        const auto& goal = inputs.goals->by_incident_type(g.incident_type_id);
        auto& claim = per_goal.add(
            ArgumentNode::claim("G-" + goal.id, goal.text));
        claim.add(ArgumentNode::evidence(
            "E-" + goal.id + "-fleet",
            "Observed rate " + g.point_rate.to_string() + " (upper bound " +
                g.upper_rate.to_string() + ") vs budget " + g.budget.to_string() +
                " (" + std::string(to_string(g.verdict)) + ").",
            status_for(g.verdict)));
        if (inputs.fsc != nullptr) {
            const auto& refinement = inputs.fsc->by_goal(goal.id);
            claim.add(ArgumentNode::evidence(
                "E-" + goal.id + "-fsc",
                "FSC closure: combined violation frequency " +
                    refinement.combined_rate().to_string() + " within the budget (" +
                    std::to_string(refinement.requirements().size()) +
                    " requirements).",
                EvidenceStatus::Supported));
        }
    }

    // Sec. V: "having a quantitative framework still allows qualitative
    // evidence, so for example all the ASIL-oriented criteria defined in
    // ISO 26262 to argue freedom from systematic faults would still be
    // applicable." Represented as a qualitative process-argument leaf on
    // the completeness branch when an FSC accompanies the case.
    if (inputs.fsc != nullptr) {
        completeness.add(ArgumentNode::evidence(
            "E-PROCESS",
            "Qualitative process argument: systematic-fault freedom of the "
            "elements carrying the " +
                std::to_string(inputs.fsc->all_requirements().size()) +
                " functional safety requirements is argued by ISO 26262-style "
                "process criteria (design reviews, coding standards, "
                "verification rigour) alongside the quantitative budgets.",
            EvidenceStatus::Supported));
    }

    return SafetyCase("QRN safety case for '" + problem.norm().name() + "'",
                      std::move(top));
}

}  // namespace qrn::safety_case
