// Highway pilot: the same feature analysed twice - classical ISO 26262
// HARA vs the QRN tailoring - reproducing the Sec. II comparison.
//
// Run: ./highway_pilot_vs_hara
#include <iostream>

#include "hara/hara_study.h"
#include "qrn/qrn.h"
#include "report/table.h"

int main() {
    using namespace qrn;

    std::cout << "=== Classical ISO 26262 HARA for a highway pilot ===\n\n";
    const auto hazards = hara::derive_hazards(hara::ads_functions());
    auto catalog = hara::SituationCatalog::ads_example();
    std::cout << "HAZOP hazards: " << hazards.size() << " ("
              << hara::ads_functions().size() << " functions x guidewords)\n";
    std::cout << "Operational situations in the catalog: " << catalog.size() << '\n';
    std::cout << "Hazardous events to assess: " << hazards.size() * catalog.size()
              << '\n';

    // Adding descriptive dimensions multiplies the catalog - the
    // completeness problem of Sec. II-B(1).
    catalog = catalog.with_dimension({"road works", {"no", "yes"}});
    catalog = catalog.with_dimension({"surface", {"asphalt", "gravel", "cobble"}});
    std::cout << "...after two more ODD dimensions: " << catalog.size()
              << " situations (" << hazards.size() * catalog.size() << " events)\n\n";

    const auto assessor = hara::ads_heuristic_assessor(catalog);
    const auto result = hara::run_hara(hazards, catalog, assessor, 5000);
    std::cout << "Sampled assessment of " << result.situations_assessed
              << " events yielded " << result.events.size()
              << " ASIL-rated hazardous events and " << result.goals.size()
              << " safety goals, e.g.:\n";
    for (std::size_t g = 0; g < std::min<std::size_t>(result.goals.size(), 3); ++g) {
        std::cout << "  " << result.goals[g].id << ": " << result.goals[g].text << '\n';
    }
    std::cout << "\nNote what these goals rest on: per-situation exposure ratings that\n"
                 "the ADS's own tactical policy will change, and a situation catalog\n"
                 "whose completeness cannot be argued.\n\n";

    std::cout << "=== QRN tailoring for the same feature ===\n\n";
    const auto norm = RiskNorm::paper_example();
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});
    const AllocationProblem problem(norm, types, matrix);
    const auto goals = SafetyGoalSet::derive(problem, allocate_water_filling(problem));

    std::cout << "Safety goals (complete by classification, independent of situations):\n";
    for (const auto& goal : goals.all()) {
        std::cout << "  " << goal.id << ": " << goal.text << '\n';
    }

    report::Table compare({"aspect", "ISO 26262 HARA", "QRN tailoring"});
    compare.add_row({"analysis input", std::to_string(result.situations_assessed) +
                                           " hazardous events (sampled)",
                     "one risk norm + " + std::to_string(types.size()) + " incident types"});
    compare.add_row({"goal integrity attribute", "qualitative ASIL", "frequency budget"});
    compare.add_row({"physical characteristics in goals",
                     "FTTI (e.g. " +
                         std::to_string(static_cast<int>(
                             hara::indicative_ftti_ms(result.goals[0].asil))) +
                         " ms), braking capacities",
                     "none - determined in the solution domain (Sec. IV)"});
    compare.add_row({"completeness argument", "per-situation enumeration (open-ended)",
                     "MECE classification (machine-checkable)"});
    compare.add_row({"exposure handling", "fixed E rating per situation",
                     "runtime adaptation inside the solution domain"});
    std::cout << '\n' << compare.render();
    return 0;
}
