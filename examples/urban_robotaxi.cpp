// Urban robotaxi: the full QRN lifecycle on a simulated fleet.
//
// Scenario: an urban ODD (<= 50 km/h streets, rain and night allowed), a
// cautious tactical policy, and a fleet accumulating operational hours.
// The example allocates SG budgets from a risk norm, runs the fleet, and
// verifies Eq. 1 from the measured incident log - including the exposure
// needed before the statistical upper bounds clear the limits.
//
// Run: ./urban_robotaxi [hours=50000] [seed=2024]
#include <iostream>

#include "exec/parallel.h"
#include "fsc/refinement.h"
#include "qrn/qrn.h"
#include "report/table.h"
#include "safety_case/builder.h"
#include "sim/sim.h"
#include "stats/rng.h"
#include "tools/parse.h"

int main(int argc, char** argv) {
    using namespace qrn;
    double hours = 50000.0;
    std::uint64_t seed = 2024;
    try {
        if (argc > 1) hours = tools::parse_positive("hours", argv[1]);
        if (argc > 2) seed = tools::parse_u64("seed", argv[2]);
    } catch (const tools::ParseError& e) {
        std::cerr << "urban_robotaxi: " << e.what() << "\n";
        return 1;
    }

    // A service-level norm for the pilot deployment. Limits are deliberately
    // modest (this is a research example, not a certified safety case).
    RiskNorm norm(ConsequenceClassSet::paper_example(),
                  {
                      Frequency::per_hour(5e-1),  // vQ1 scared road user
                      Frequency::per_hour(2e-1),  // vQ2 forced evasive action
                      Frequency::per_hour(5e-2),  // vQ3 material damage
                      Frequency::per_hour(1e-2),  // vS1 light/moderate injuries
                      Frequency::per_hour(5e-3),  // vS2 severe injuries
                      Frequency::per_hour(3e-3),  // vS3 life-threatening
                  },
                  "urban robotaxi pilot norm");

    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});
    const AllocationProblem problem(norm, types, matrix, {}, EthicalConstraint{0.8});
    const auto allocation = allocate_water_filling(problem);
    const auto goals = SafetyGoalSet::derive(problem, allocation);

    std::cout << "Safety goals for the pilot:\n";
    for (const auto& goal : goals.all()) std::cout << "  " << goal.id << ": " << goal.text << '\n';

    // Fleet operation inside the urban ODD with the cautious policy.
    sim::FleetConfig config;
    config.odd = sim::Odd::urban();
    config.policy = sim::TacticalPolicy::cautious();
    config.seed = seed;
    std::cout << "\nOperating " << hours << " h in " << config.odd.describe() << " ...\n";
    // Parallel across operational stretches; the log is identical to a
    // serial run (per-stretch RNG streams, partials merged in order).
    const auto log = sim::FleetSimulator(config).run(hours, exec::default_jobs());
    std::cout << "  encounters resolved: " << log.encounters
              << ", incidents logged: " << log.incidents.size()
              << ", emergency brakings: " << log.emergency_brakings << "\n\n";

    // Eq. 1 verification from the measured evidence.
    const auto evidence = log.evidence_for(types);
    const auto verification = verify_against_evidence(problem, allocation, evidence, 0.95);

    report::Table goal_table({"goal", "budget", "observed", "95% upper", "verdict"});
    for (const auto& g : verification.goals) {
        goal_table.add_row({"SG-" + g.incident_type_id, g.budget.to_string(),
                            g.point_rate.to_string(), g.upper_rate.to_string(),
                            std::string(to_string(g.verdict))});
    }
    std::cout << goal_table.render() << '\n';

    report::Table class_table({"class", "limit", "point usage", "upper usage", "verdict"});
    for (const auto& c : verification.classes) {
        class_table.add_row({c.class_id, c.limit.to_string(), c.point_usage.to_string(),
                             c.upper_usage.to_string(), std::string(to_string(c.verdict))});
    }
    std::cout << class_table.render() << '\n';

    // Refine the goals into a functional safety concept (Sec. IV) and
    // assemble the full safety case from every artifact produced above.
    const auto fsc = fsc::derive_fsc(goals, fsc::ChainTemplate{});
    const auto tree = ClassificationTree::paper_example();
    const auto mece = tree.certify_mece(
        50000,
        [](std::size_t i) {
            stats::Rng rng = stats::Rng::stream(7, i);
            Incident incident;
            incident.second = actor_type_from_index(
                static_cast<std::size_t>(rng.uniform_int(1, kActorTypeCount - 1)));
            if (rng.bernoulli(0.5)) {
                incident.mechanism = IncidentMechanism::NearMiss;
                incident.min_distance_m = rng.uniform(0.0, 5.0);
            }
            incident.relative_speed_kmh = rng.uniform(0.0, 150.0);
            return incident;
        },
        10, exec::default_jobs());
    safety_case::CaseInputs case_inputs;
    case_inputs.problem = &problem;
    case_inputs.allocation = &allocation;
    case_inputs.goals = &goals;
    case_inputs.mece_certificate = &mece;
    case_inputs.verification = &verification;
    case_inputs.fsc = &fsc;
    const auto safety_case = safety_case::build_case(case_inputs);
    std::cout << safety_case.render() << '\n';

    if (verification.norm_fulfilled()) {
        std::cout << "Risk norm FULFILLED with 95% confidence.\n";
    } else if (verification.norm_point_fulfilled()) {
        std::cout << "Point estimates inside the norm, but confidence bounds are not "
                     "conclusive yet - more operational exposure needed.\n";
        for (std::size_t j = 0; j < norm.size(); ++j) {
            std::cout << "  to demonstrate " << norm.classes().at(j).id
                      << " with zero further events: "
                      << exposure_to_demonstrate(norm.limit(j), 0.95).hours()
                      << " h\n";
        }
    } else {
        std::cout << "Risk norm VIOLATED - the FSC must change the tactical policy "
                     "or restrict the ODD.\n";
    }
    return verification.norm_point_fulfilled() ? 0 : 1;
}
