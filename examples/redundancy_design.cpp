// Architecture exploration under the quantitative framework (Sec. V).
//
// Design problem from the paper: "determine a drivable area in front of ego
// vehicle free from VRUs. A safety requirement on the aggregated block of
// sensing and prediction could then be not to overestimate such an area,
// with a very tough integrity attribute."
//
// The example explores single / dual / triple sensing channels plus an
// independent monitor, evaluates each architecture's violation frequency
// against the SG budget, and contrasts the verdicts with what the
// qualitative ASIL rules could express.
//
// Run: ./redundancy_design
#include <iostream>

#include "quant/asil_compare.h"
#include "report/table.h"

int main() {
    using namespace qrn;
    using namespace qrn::quant;

    // The SG budget for "never overestimate the VRU-free drivable area".
    const auto budget = Frequency::per_hour(1e-8);
    // Each perception channel violates (overestimates) at this rate -
    // QM-grade on its own. Failures persist for ~6 minutes (0.1 h) until
    // self-checks or degraded weather passes.
    const auto channel = Frequency::per_hour(1e-4);
    const double tau = 0.1;

    std::cout << "SG budget: " << budget.to_string() << ", per-channel rate "
              << channel.to_string() << " (band: "
              << hara::to_string(asil_band_for_rate(channel)) << ")\n\n";

    report::Table table(
        {"architecture", "combined rate", "band", "meets budget", "ASIL rules"});
    for (const auto& row :
         compare_redundancy(channel, tau, {1, 2, 3}, budget)) {
        table.add_row({row.architecture, row.combined_rate.to_string(),
                       std::string(hara::to_string(row.combined_band)),
                       row.combined_rate <= budget ? "yes" : "no",
                       row.asil_rules_applicable ? "expressible" : "not expressible"});
    }
    std::cout << table.render() << '\n';

    // A concrete architecture: camera+lidar redundant pair, radar monitor,
    // and a shared arbiter in series - with cause-agnostic budgets.
    std::vector<std::unique_ptr<ArchNode>> pair;
    pair.push_back(ArchNode::element("camera pipeline", channel,
                                     CauseCategory::PerformanceLimitation));
    pair.push_back(ArchNode::element("lidar pipeline", channel,
                                     CauseCategory::PerformanceLimitation));
    std::vector<std::unique_ptr<ArchNode>> top;
    top.push_back(ArchNode::all_of("redundant sensing", std::move(pair), tau));
    top.push_back(ArchNode::element("fusion arbiter (sw)", Frequency::per_hour(2e-9),
                                    CauseCategory::SystematicDesign));
    top.push_back(ArchNode::element("compute module (hw)", Frequency::per_hour(3e-9),
                                    CauseCategory::RandomHardware));
    const auto architecture = ArchNode::any_of("drivable-area overestimation",
                                               std::move(top));

    std::cout << "Proposed architecture:\n" << architecture->render() << '\n';
    const auto total = architecture->evaluate();
    std::cout << "Unified violation frequency across all cause categories: "
              << total.to_string() << (total <= budget ? "  -> budget met\n"
                                                       : "  -> budget NOT met\n");

    // The same budget viewed per cause category (Sec. V: one budget for
    // systematic, random-hardware and performance causes together).
    report::Table causes({"cause category", "summed rate"});
    double systematic = 0.0, random_hw = 0.0, performance = 0.0;
    for (const auto& c : architecture->leaf_contributions()) {
        switch (c.cause) {
            case CauseCategory::SystematicDesign:
                systematic += c.rate.per_hour_value();
                break;
            case CauseCategory::RandomHardware:
                random_hw += c.rate.per_hour_value();
                break;
            case CauseCategory::PerformanceLimitation:
                performance += c.rate.per_hour_value();
                break;
        }
    }
    causes.add_row({"systematic", report::scientific(systematic)});
    causes.add_row({"random hardware", report::scientific(random_hw)});
    causes.add_row({"performance limitation (pre-redundancy)",
                    report::scientific(performance)});
    std::cout << '\n' << causes.render();

    // Where should improvement effort go? Rank the elements by elasticity.
    std::cout << "\nElement importance (d ln top-rate / d ln element-rate):\n";
    report::Table importance({"element", "cause", "rate", "elasticity"});
    for (const auto& row : leaf_elasticities(*architecture)) {
        importance.add_row({row.name, std::string(to_string(row.cause)),
                            row.rate.to_string(), report::fixed(row.elasticity, 3)});
    }
    std::cout << importance.render();
    // Classical fault-tree view: which failure combinations defeat the SG?
    std::cout << "\nMinimal cut sets of the architecture:\n";
    for (const auto& cut : minimal_cut_sets(*architecture)) {
        std::cout << "  {";
        for (std::size_t i = 0; i < cut.size(); ++i) {
            std::cout << (i > 0 ? ", " : "") << cut[i];
        }
        std::cout << "}" << (cut.size() == 1 ? "   <- single point of failure" : "")
                  << '\n';
    }

    std::cout << "\nNote: the redundant pair turns two QM-grade performance-limited\n"
                 "channels into a contribution far below either channel's own rate -\n"
                 "credit the qualitative decomposition rules cannot express.\n";
    return total <= budget ? 0 : 1;
}
