// Quickstart: the QRN method in ~60 lines.
//
// Builds the paper's running example end to end:
//   risk norm -> incident types -> contribution fractions -> budget
//   allocation -> safety goals -> completeness argument.
//
// Run: ./quickstart
#include <cstdio>
#include <iostream>

#include "exec/parallel.h"
#include "qrn/qrn.h"
#include "report/table.h"
#include "stats/rng.h"

int main() {
    using namespace qrn;

    // 1. The quantitative risk norm: what "sufficiently safe" means.
    const auto norm = RiskNorm::paper_example();
    std::cout << "Risk norm '" << norm.name() << "':\n";
    report::Table norm_table({"class", "name", "domain", "acceptable frequency"});
    for (std::size_t j = 0; j < norm.size(); ++j) {
        const auto entry = norm.entry(j);
        norm_table.add_row({entry.consequence_class.id, entry.consequence_class.name,
                            std::string(to_string(entry.consequence_class.domain)),
                            entry.limit.to_string()});
    }
    std::cout << norm_table.render() << '\n';

    // 2. Incident types: Ego<->VRU within tolerance margins (Fig. 5).
    const auto types = IncidentTypeSet::paper_vru_example();

    // 3. Contribution fractions from the injury-risk model.
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});

    // 4. Allocate frequency budgets so Eq. 1 holds for every class.
    const AllocationProblem problem(norm, types, matrix, {}, EthicalConstraint{0.8});
    const auto allocation = allocate_water_filling(problem);
    std::cout << "Allocation (" << allocation.solver
              << "), min headroom: " << report::percent(allocation.min_headroom())
              << "\n\n";

    // 5. One safety goal per incident type, in the paper's format.
    const auto goals = SafetyGoalSet::derive(problem, allocation);
    for (const auto& goal : goals.all()) {
        std::cout << goal.id << ": " << goal.text << '\n';
    }
    std::cout << '\n';

    // 6. Completeness: certify the MECE classification, measure which
    //    leaves the goals actually constrain, and print the safety-case
    //    argument (including the open obligations a real study must close).
    //    The sampler is index-pure (incident i depends only on stream
    //    (1, i)), so both scans run on every available core with output
    //    identical to a serial run.
    const auto tree = ClassificationTree::paper_example();
    const auto sample_incident = [](std::size_t i) {
        stats::Rng rng = stats::Rng::stream(1, i);
        Incident incident;
        incident.second = actor_type_from_index(
            static_cast<std::size_t>(rng.uniform_int(1, kActorTypeCount - 1)));
        if (rng.bernoulli(0.5)) {
            incident.mechanism = IncidentMechanism::NearMiss;
            incident.min_distance_m = rng.uniform(0.0, 5.0);
        }
        incident.relative_speed_kmh = rng.uniform(0.0, 150.0);
        return incident;
    };
    const unsigned jobs = exec::default_jobs();
    const auto certificate = tree.certify_mece(100000, sample_incident, 10, jobs);
    const auto coverage =
        check_type_coverage(tree, types, 100000, sample_incident, jobs);
    std::cout << goals.completeness_argument(tree, certificate, &coverage);
    return certificate.certified() ? 0 : 1;
}
