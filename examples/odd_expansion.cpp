// Staged ODD expansion: the deployment pattern the QRN method enables.
//
// Because the risk norm is decoupled from the implementation (paper
// Sec. VII), an operator can hold the norm fixed while widening the ODD in
// stages, gating every expansion on fleet evidence: run a verification
// campaign inside the current ODD, check Eq. 1 with confidence bounds, and
// keep a sequential (SPRT) monitor on the most severe incident type as a
// live tripwire. Expansion proceeds only while the evidence supports it.
//
// Run: ./odd_expansion [hours_per_fleet=4000]
#include <iostream>

#include "qrn/norm_builder.h"
#include "qrn/qrn.h"
#include "report/table.h"
#include "sim/sim.h"
#include "stats/sequential.h"
#include "tools/parse.h"

int main(int argc, char** argv) {
    using namespace qrn;
    double hours_per_fleet = 4000.0;
    try {
        if (argc > 1) hours_per_fleet = tools::parse_positive("hours_per_fleet", argv[1]);
    } catch (const tools::ParseError& e) {
        std::cerr << "odd_expansion: " << e.what() << "\n";
        return 1;
    }

    // One norm for the whole programme, calibrated between the societal
    // ceiling and what the simulated fleet can credibly demonstrate.
    NormCalibration calibration;
    calibration.societal_ceiling_per_hour = 2e-2;  // worst class, simulated world
    calibration.claimable_floor_per_hour = 2e-3;
    calibration.target_fraction = 0.5;
    const auto norm =
        calibrate_norm(ConsequenceClassSet::paper_example(), calibration,
                       "ODD expansion programme norm");
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});
    const AllocationProblem problem(norm, types, matrix);
    const auto allocation = allocate_water_filling(problem);
    const auto goals = SafetyGoalSet::derive(problem, allocation);
    std::cout << "Programme norm (worst class "
              << norm.limit(norm.size() - 1).to_string() << "), goals:\n";
    for (const auto& goal : goals.all()) std::cout << "  " << goal.id << ": " << goal.text << '\n';

    // The expansion ladder.
    struct Stage {
        const char* name;
        sim::Odd odd;
    };
    sim::Odd stage1 = sim::Odd::urban();
    stage1.max_speed_limit_kmh = 30.0;
    stage1.max_vru_density = 1.0;
    stage1.allow_night = false;
    sim::Odd stage2 = sim::Odd::urban();
    stage2.max_speed_limit_kmh = 40.0;
    stage2.allow_night = false;
    sim::Odd stage3 = sim::Odd::urban();
    const Stage stages[] = {
        {"stage 1: 30 km/h, daylight, calm districts", stage1},
        {"stage 2: 40 km/h, daylight, all districts", stage2},
        {"stage 3: 50 km/h incl. night (full urban ODD)", stage3},
    };

    // SPRT tripwire on the most severe incident type (I3): H0 at its
    // budget, H1 at 4x the budget.
    const auto i3 = types.index_of("I3").value();
    const double budget_i3 = allocation.budgets[i3].per_hour_value();
    stats::PoissonSprt tripwire(budget_i3, 4.0 * budget_i3, 0.05, 0.05);

    report::Table table({"stage", "fleet-hours", "incidents", "norm verdict",
                         "I3 SPRT", "decision"});
    bool halted = false;
    std::uint64_t seed = 9000;
    for (const auto& stage : stages) {
        if (halted) {
            table.add_row({stage.name, "-", "-", "-", "-", "not reached"});
            continue;
        }
        sim::CampaignConfig campaign;
        campaign.base.odd = stage.odd;
        campaign.base.policy = sim::TacticalPolicy::cautious();
        campaign.base.seed = seed++;
        campaign.fleets = 5;
        campaign.hours_per_fleet = hours_per_fleet;
        const auto result = sim::run_campaign(campaign);
        const auto evidence = result.pooled_evidence(types);
        const auto report =
            verify_against_evidence(problem, allocation, evidence, 0.95);
        tripwire.observe(evidence[i3].events, result.total_exposure.hours());

        const bool norm_ok = report.norm_point_fulfilled();
        const bool sprt_ok = tripwire.decision() != stats::SprtDecision::RejectH0;
        const char* decision = norm_ok && sprt_ok ? "EXPAND" : "HALT";
        halted = !(norm_ok && sprt_ok);
        std::size_t incidents = 0;
        for (const auto& log : result.logs) incidents += log.incidents.size();
        table.add_row({stage.name, report::fixed(result.total_exposure.hours(), 0),
                       std::to_string(incidents),
                       report.norm_fulfilled()         ? "FULFILLED"
                       : report.norm_point_fulfilled() ? "POINT-ONLY"
                                                       : "VIOLATED",
                       std::string(stats::to_string(tripwire.decision())), decision});
    }
    std::cout << '\n' << table.render();
    std::cout << "\nThe same risk norm gated every stage; only the ODD (a design\n"
                 "choice in the solution domain) moved - paper Secs. IV & VII.\n";
    return halted ? 1 : 0;
}
