// Product-line variability (Sec. VII): one risk norm, several variants.
//
// "While there may be some variability in the frequency allocation for each
// incident type (as solutions for variants may have different
// characteristics) the total acceptable risk for each consequence class
// will be the same." Three variants of an ADS product line allocate the
// same norm differently; the example prints each allocation and checks all
// of them against the shared class limits.
//
// Run: ./product_line
#include <iostream>

#include "qrn/product_line.h"
#include "qrn/qrn.h"
#include "report/series.h"
#include "report/table.h"

int main() {
    using namespace qrn;

    const auto norm = RiskNorm::paper_example();
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});

    struct Variant {
        const char* name;
        std::vector<double> weights;  // relative demand per incident type
        const char* rationale;
    };
    const Variant variants[] = {
        {"city shuttle", {8.0, 1.0, 0.2},
         "dense VRU traffic: near misses dominate, high-speed collisions rare"},
        {"suburban taxi", {2.0, 1.0, 1.0}, "balanced exposure"},
        {"arterial bus", {1.0, 1.0, 3.0},
         "higher speeds: the severe-collision type needs more budget"},
    };

    // The ProductLine owns the shared structure and refuses variants that
    // cannot meet the shared norm - the line's invariant.
    ProductLine line(norm, types, matrix, EthicalConstraint{0.8});
    report::Table table({"variant", "f_I1 (near miss)", "f_I2 (<=10 km/h)",
                         "f_I3 (10-70 km/h)", "min headroom"});
    for (const auto& variant : variants) {
        line.add_variant(variant.name, variant.weights);
        const auto& allocation = line.variant(variant.name);
        table.add_row({variant.name, allocation.budgets[0].to_string(),
                       allocation.budgets[1].to_string(),
                       allocation.budgets[2].to_string(),
                       report::percent(allocation.min_headroom())});
    }
    std::cout << "Shared risk norm '" << norm.name() << "', per-variant allocations:\n\n"
              << table.render() << '\n';
    for (const auto& variant : variants) {
        std::cout << "  " << variant.name << ": " << variant.rationale << '\n';
    }

    std::cout << "\nBudget spread across the line (the paper's 'variability in the\n"
                 "frequency allocation' under one total acceptable risk):\n";
    report::Table spread_table({"incident type", "min budget", "max budget", "spread"});
    for (const auto& spread : line.budget_spread()) {
        spread_table.add_row({spread.incident_type_id, spread.min_budget.to_string(),
                              spread.max_budget.to_string(),
                              report::fixed(spread.ratio, 2) + "x"});
    }
    std::cout << spread_table.render();

    // Show the shared ceiling graphically for the worst class of one variant.
    const AllocationProblem shuttle(norm, types, matrix, variants[0].weights,
                                    EthicalConstraint{0.8});
    const auto allocation = allocate_proportional(shuttle);
    std::vector<report::StackedBar> bars;
    for (std::size_t j = 0; j < norm.size(); ++j) {
        report::StackedBar bar;
        bar.label = norm.classes().at(j).id;
        bar.limit = norm.limit(j).per_hour_value();
        for (std::size_t k = 0; k < types.size(); ++k) {
            bar.segments.push_back(
                {types.at(k).id(),
                 matrix.fraction(j, k) * allocation.budgets[k].per_hour_value()});
        }
        bars.push_back(std::move(bar));
    }
    std::cout << "\nCity-shuttle usage vs shared limits (linear scale per row):\n"
              << report::stacked_bar_chart(bars, 46);
    std::cout << "\nAll variants meet the same total acceptable risk per class.\n";
    return 0;
}
