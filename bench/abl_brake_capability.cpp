// ABL3: the brake-degradation argument of paper Sec. II-B(3), executable.
//
// "A vehicle-internal fault leading to a reduced braking capacity of only
// 4 m/s^2 ... can be regarded as a hazard of a brake-by-wire functionality.
// ... For an ADS this is not an appropriate analysis. ... as long as the
// tactical decisions know about the current actual braking capability, it
// should be possible to safely adjust the driving style accordingly."
//
// Sweeps the degraded deceleration cap with the tactical layer either
// aware (adapts speed and gaps) or unaware (drives as if healthy).
//
// Expected shape: unaware incident rates climb steeply as the capability
// drops; aware rates stay near the healthy baseline - the degraded
// capability is absorbed by tactical adaptation, so "constant braking
// capability" need not be a safety goal for an ADS.
#include <iostream>

#include "report/csv.h"
#include "report/table.h"
#include "sim/sim.h"

namespace {

double incidents_per_hour(bool fault, double cap, bool aware, double hours) {
    qrn::sim::FleetConfig config;
    config.odd = qrn::sim::Odd::urban();
    config.policy = qrn::sim::TacticalPolicy::nominal();
    config.seed = 909;  // same seed: identical encounter stream everywhere
    if (fault) {
        config.faults.brake_degradation_probability = 1.0;
        config.faults.degraded_decel_cap_ms2 = cap;
        config.faults.policy_aware = aware;
    }
    const auto log = qrn::sim::FleetSimulator(config).run(hours);
    return static_cast<double>(log.incidents.size()) / hours;
}

}  // namespace

int main() {
    using namespace qrn::report;

    std::cout << "ABL3: degraded braking capability - aware vs unaware tactics\n\n";
    const double hours = 3000.0;
    const double healthy = incidents_per_hour(false, 0.0, false, hours);
    std::cout << "healthy baseline: " << fixed(healthy, 4) << " incidents/h\n\n";

    Table table({"braking cap (m/s^2)", "unaware incidents/h", "aware incidents/h",
                 "unaware / healthy", "aware / healthy"});
    CsvWriter csv({"cap_ms2", "unaware_per_h", "aware_per_h", "healthy_per_h"});
    bool aware_stays_flat = true;
    bool unaware_degrades = false;
    for (const double cap : {8.0, 6.0, 5.0, 4.0, 3.0}) {
        const double unaware = incidents_per_hour(true, cap, false, hours);
        const double aware = incidents_per_hour(true, cap, true, hours);
        table.add_row({fixed(cap, 1), fixed(unaware, 4), fixed(aware, 4),
                       fixed(unaware / healthy, 2) + "x",
                       fixed(aware / healthy, 2) + "x"});
        csv.add_row({fixed(cap, 1), fixed(unaware, 5), fixed(aware, 5),
                     fixed(healthy, 5)});
        // The paper's example is the 4 m/s^2 fault: there, aware tactics
        // must hold close to baseline. Below that, aware must still at
        // least halve the unaware rate.
        if (cap >= 4.0 && aware > healthy * 1.5) aware_stays_flat = false;
        if (cap < 4.0 && aware > unaware * 0.5) aware_stays_flat = false;
        if (cap <= 4.0 && unaware > healthy * 1.5) unaware_degrades = true;
    }
    std::cout << table.render() << '\n';

    csv.write_file("abl_brake_capability.csv");
    std::cout << "series written to abl_brake_capability.csv\n\n";
    std::cout << "Shape check vs paper: unaware policy suffers under the 4 m/s^2 "
                 "fault = "
              << (unaware_degrades ? "yes" : "NO")
              << "; aware tactical adaptation holds incident rates near the healthy "
                 "baseline = "
              << (aware_stays_flat ? "yes" : "NO") << " -> "
              << (unaware_degrades && aware_stays_flat ? "PASS" : "FAIL") << '\n';
    return unaware_degrades && aware_stays_flat ? 0 : 1;
}
