// SEC2: the two Sec. II-B arguments, quantified.
//
// (a) Completeness/intractability: the HARA situation catalog grows
//     multiplicatively with every descriptive dimension, while the QRN
//     safety-goal count is fixed by the incident classification.
// (b) Exposure is a design choice: the frequency of "must brake harder
//     than comfort" situations - an *input* to the classical HARA - shifts
//     by a large factor between tactical policies.
//
// Expected shape: exponential catalog growth vs flat SG count; emergency-
// braking exposure markedly lower for proactive policies.
#include <array>
#include <iostream>

#include "hara/exposure.h"
#include "hara/hara_study.h"
#include "qrn/qrn.h"
#include "report/csv.h"
#include "report/table.h"
#include "sim/sim.h"

int main() {
    using namespace qrn;
    using namespace qrn::report;

    std::cout << "SEC2(a): situation-catalog growth vs QRN goal count\n\n";
    const auto types = IncidentTypeSet::paper_vru_example();
    auto catalog = hara::SituationCatalog::ads_example();
    const std::size_t hazard_count = hara::derive_hazards(hara::ads_functions()).size();

    Table growth({"ODD dimensions", "situations", "hazardous events to assess",
                  "QRN safety goals"});
    CsvWriter growth_csv({"dimensions", "situations", "events", "qrn_goals"});
    const hara::SituationDimension extras[] = {
        {"road works", {"no", "yes"}},
        {"surface", {"asphalt", "gravel", "cobble"}},
        {"time of day", {"rush", "off-peak"}},
        {"season", {"summer", "winter"}},
        {"visibility aids", {"none", "street lighting"}},
    };
    std::size_t dims = catalog.dimensions().size();
    for (std::size_t step = 0; step <= std::size(extras); ++step) {
        growth.add_row({std::to_string(dims), std::to_string(catalog.size()),
                        std::to_string(catalog.size() * hazard_count),
                        std::to_string(types.size())});
        growth_csv.add_row({std::to_string(dims), std::to_string(catalog.size()),
                            std::to_string(catalog.size() * hazard_count),
                            std::to_string(types.size())});
        if (step < std::size(extras)) {
            catalog = catalog.with_dimension(extras[step]);
            ++dims;
        }
    }
    std::cout << growth.render() << '\n';

    std::cout << "SEC2(b): exposure to hard-braking situations per tactical policy\n\n";
    struct PolicyRow {
        const char* name;
        sim::TacticalPolicy policy;
    };
    const PolicyRow policies[] = {
        {"cautious", sim::TacticalPolicy::cautious()},
        {"nominal", sim::TacticalPolicy::nominal()},
        {"performance", sim::TacticalPolicy::performance()},
    };
    Table exposure({"policy", "encounters/h", "emergency brakings/h",
                    "incidents/h"});
    CsvWriter exposure_csv({"policy", "encounters_per_h", "emergency_per_h",
                            "incidents_per_h"});
    const double hours = 4000.0;
    double cautious_rate = 0.0, performance_rate = 0.0;
    for (const auto& row : policies) {
        sim::FleetConfig config;
        config.odd = sim::Odd::urban();
        config.policy = row.policy;
        config.seed = 4242;
        const auto log = sim::FleetSimulator(config).run(hours);
        const double emergency_rate =
            static_cast<double>(log.emergency_brakings) / hours;
        exposure.add_row({row.name,
                          fixed(static_cast<double>(log.encounters) / hours, 2),
                          fixed(emergency_rate, 3),
                          fixed(static_cast<double>(log.incidents.size()) / hours, 4)});
        exposure_csv.add_row({row.name,
                              fixed(static_cast<double>(log.encounters) / hours, 3),
                              fixed(emergency_rate, 4),
                              fixed(static_cast<double>(log.incidents.size()) / hours, 5)});
        if (std::string(row.name) == "cautious") cautious_rate = emergency_rate;
        if (std::string(row.name) == "performance") performance_rate = emergency_rate;
    }
    std::cout << exposure.render() << '\n';

    std::cout << "SEC2(c): empirical E ratings move with the ODD (a design choice)\n\n";
    const auto ads_catalog = hara::SituationCatalog::ads_example();
    sim::Odd snowy = sim::Odd::urban();
    snowy.allow_snow = true;
    snowy.min_friction = 0.1;
    const auto rated_snowy = hara::estimate_exposure(ads_catalog, snowy, 50000, 31);
    const auto rated_dry =
        hara::estimate_exposure(ads_catalog, sim::Odd::urban(), 50000, 31);
    const auto count_by_rating = [](const std::vector<hara::SituationExposure>& est) {
        std::array<int, 5> counts{};
        for (const auto& e : est) counts[static_cast<std::size_t>(e.rating)]++;
        return counts;
    };
    const auto snowy_counts = count_by_rating(rated_snowy);
    const auto dry_counts = count_by_rating(rated_dry);
    Table ratings({"ODD", "situations observed", "E4", "E3", "E2", "E1"});
    ratings.add_row({"urban + snow allowed", std::to_string(rated_snowy.size()),
                     std::to_string(snowy_counts[4]), std::to_string(snowy_counts[3]),
                     std::to_string(snowy_counts[2]), std::to_string(snowy_counts[1])});
    ratings.add_row({"urban (snow excluded)", std::to_string(rated_dry.size()),
                     std::to_string(dry_counts[4]), std::to_string(dry_counts[3]),
                     std::to_string(dry_counts[2]), std::to_string(dry_counts[1])});
    std::cout << ratings.render()
              << "(situations absent from a row are E0 for that ODD: the same\n"
                 " situation's E rating is an output of the ODD design choice)\n\n";

    growth_csv.write_file("sec2_growth.csv");
    exposure_csv.write_file("sec2_exposure.csv");
    std::cout << "series written to sec2_growth.csv, sec2_exposure.csv\n\n";

    const bool policy_dependent = cautious_rate < performance_rate * 0.8;
    std::cout << "Shape check vs paper: catalog grows multiplicatively while QRN goals "
                 "stay constant = yes; emergency-braking exposure policy-dependent = "
              << (policy_dependent ? "yes" : "NO") << " -> "
              << (policy_dependent ? "PASS" : "FAIL") << '\n';
    return policy_dependent ? 0 : 1;
}
