// FIG5: regenerates the content of paper Fig. 5 - "Assignment of incident
// frequencies to consequence classes in the risk norm".
//
// The figure's narrative, executed end to end:
//  - I1 (near miss) contributes a percentage each to vQ1 and vQ2;
//  - I2 (<= 10 km/h collision) contributes to vS1/vS2 (the paper discusses
//    a 70%/30% split);
//  - I3 (10-70 km/h collision) also contributes to vS3 (fatalities);
//  - improving (reducing) f_I2 lowers the usage of its classes but yields
//    a more challenging SG-I2 - the budget-tightening iteration.
//
// Expected shape: contribution arrows match Fig. 5's structure; the
// tightening iteration strictly shrinks f_I2 while Eq. 1 keeps holding.
#include <iostream>

#include "qrn/qrn.h"
#include "report/csv.h"
#include "report/table.h"

int main() {
    using namespace qrn;
    using namespace qrn::report;

    std::cout << "FIG5: assignment of incident frequencies to consequence classes "
                 "(regenerated)\n\n";

    const auto norm = RiskNorm::paper_example();
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});

    // Panel 1: the per-type contribution splits (the figure's arrows).
    Table splits({"incident type", "definition", "contributes to (share of its occurrences)"});
    CsvWriter csv({"incident_type", "class", "share"});
    for (std::size_t k = 0; k < types.size(); ++k) {
        std::string arrows;
        for (std::size_t j = 0; j < norm.size(); ++j) {
            const double f = matrix.fraction(j, k);
            if (f <= 0.0) continue;
            if (!arrows.empty()) arrows += ", ";
            arrows += norm.classes().at(j).id + ": " + percent(f);
            csv.add_row({types.at(k).id(), norm.classes().at(j).id, percent(f, 3)});
        }
        splits.add_row({types.at(k).id(), types.at(k).interaction_text(), arrows});
    }
    std::cout << splits.render() << '\n';

    // Panel 2: allocation and the derived safety goals.
    const AllocationProblem problem(norm, types, matrix);
    const auto allocation = allocate_water_filling(problem);
    const auto goals = SafetyGoalSet::derive(problem, allocation);
    std::cout << "Derived safety goals:\n";
    for (const auto& goal : goals.all()) std::cout << "  " << goal.id << ": " << goal.text << '\n';

    // Panel 3: the budget-tightening iteration. Tighten the injury-class
    // limits (halving all three keeps the norm monotone) and watch f_I2
    // shrink - the "more challenging SG for I2" of the figure's narrative.
    const auto i2 = types.index_of("I2").value();
    Table iteration({"iteration", "vS1 limit", "f_I2 budget", "Eq. 1 holds"});
    double scale = 1.0;
    Frequency prev_budget;
    bool shrinking = true;
    bool always_feasible = true;
    for (int step = 0; step < 4; ++step) {
        const auto tighter = norm.with_scaled_limit("vS1", scale)
                                 .with_scaled_limit("vS2", scale)
                                 .with_scaled_limit("vS3", scale);
        const AllocationProblem tightened(tighter, types, matrix);
        const auto a = allocate_water_filling(tightened);
        const bool ok = satisfies_norm(tightened, a.budgets);
        always_feasible = always_feasible && ok;
        if (step > 0) shrinking = shrinking && a.budgets[i2] < prev_budget;
        prev_budget = a.budgets[i2];
        iteration.add_row({std::to_string(step),
                           tightened.norm().limit_by_id("vS1").to_string(),
                           a.budgets[i2].to_string(), ok ? "yes" : "NO"});
        scale *= 0.5;
    }
    std::cout << '\n' << iteration.render() << '\n';

    csv.write_file("fig5_assignment.csv");
    std::cout << "series written to fig5_assignment.csv\n\n";

    // Structural checks mirroring the figure.
    const auto idx = [&](const char* id) { return norm.classes().index_of(id).value(); };
    const bool i1_quality = matrix.contributes(idx("vQ1"), 0) &&
                            matrix.contributes(idx("vQ2"), 0) &&
                            !matrix.contributes(idx("vS3"), 0);
    const bool i2_injuries = matrix.contributes(idx("vS1"), 1);
    const bool i3_fatal = matrix.contributes(idx("vS3"), 2);
    const bool pass = i1_quality && i2_injuries && i3_fatal && shrinking && always_feasible;
    std::cout << "Shape check vs paper: I1->quality only = " << (i1_quality ? "yes" : "NO")
              << "; I2->injury classes = " << (i2_injuries ? "yes" : "NO")
              << "; I3->fatalities = " << (i3_fatal ? "yes" : "NO")
              << "; tightening shrinks f_I2 under Eq. 1 = "
              << (shrinking && always_feasible ? "yes" : "NO") << " -> "
              << (pass ? "PASS" : "FAIL") << '\n';
    return pass ? 0 : 1;
}
