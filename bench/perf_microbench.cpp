// Performance microbenchmarks (google-benchmark): the hot paths a fleet-
// scale deployment of the toolkit would exercise - incident classification,
// allocation solving, Eq. 1 verification, Monte-Carlo simulation and exact
// interval estimation - plus serial-vs-parallel campaign runs on the
// qrn_exec thread pool.
//
// Besides the normal console output, the run writes a machine-readable
// baseline (name -> ns/op and items/s) to BENCH_perf.json in the working
// directory (override the path with the QRN_BENCH_JSON environment
// variable), so perf regressions can be diffed between commits: the
// repo-root copy is the tracked baseline and CI gates every PR against it
// with qrn-perfdiff (docs/OBSERVABILITY.md). A failed baseline write is a
// hard error (non-zero exit) - a bench run whose evidence silently
// vanishes is how the baseline went dead for three PRs.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sched/plan.h"
#include "sched/ready_queue.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/stream.h"
#include "store/shard.h"
#include "qrn/qrn.h"
#include "qrn/banding.h"
#include "qrn/serialize.h"
#include "quant/architecture.h"
#include "sim/sim.h"
#include "sim/splitting.h"
#include "stats/sequential.h"
#include "stats/rate_estimation.h"
#include "stats/rng.h"

namespace {

using namespace qrn;

Incident sample_incident(stats::Rng& rng) {
    Incident i;
    i.second = actor_type_from_index(
        static_cast<std::size_t>(rng.uniform_int(1, kActorTypeCount - 1)));
    if (rng.bernoulli(0.5)) {
        i.mechanism = IncidentMechanism::NearMiss;
        i.min_distance_m = rng.uniform(0.0, 5.0);
    }
    i.relative_speed_kmh = rng.uniform(0.0, 150.0);
    return i;
}

void BM_ClassifyIncident(benchmark::State& state) {
    const auto tree = ClassificationTree::paper_example();
    stats::Rng rng(1);
    std::vector<Incident> incidents;
    for (int n = 0; n < 1024; ++n) incidents.push_back(sample_incident(rng));
    std::size_t idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.classify(incidents[idx++ & 1023]));
    }
}
BENCHMARK(BM_ClassifyIncident);

void BM_TypeSetClassify(benchmark::State& state) {
    const auto types = IncidentTypeSet::paper_vru_example();
    stats::Rng rng(2);
    std::vector<Incident> incidents;
    for (int n = 0; n < 1024; ++n) incidents.push_back(sample_incident(rng));
    std::size_t idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(types.classify(incidents[idx++ & 1023]));
    }
}
BENCHMARK(BM_TypeSetClassify);

void BM_AllocateWaterFilling(benchmark::State& state) {
    const auto norm = RiskNorm::paper_example();
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});
    const AllocationProblem problem(norm, types, matrix);
    for (auto _ : state) {
        benchmark::DoNotOptimize(allocate_water_filling(problem));
    }
}
BENCHMARK(BM_AllocateWaterFilling);

void BM_VerifyAgainstEvidence(benchmark::State& state) {
    const auto norm = RiskNorm::paper_example();
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});
    const AllocationProblem problem(norm, types, matrix);
    const auto allocation = allocate_water_filling(problem);
    const std::vector<TypeEvidence> evidence{{"I1", 3, ExposureHours(1e7)},
                                             {"I2", 1, ExposureHours(1e7)},
                                             {"I3", 0, ExposureHours(1e7)}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            verify_against_evidence(problem, allocation, evidence, 0.95));
    }
}
BENCHMARK(BM_VerifyAgainstEvidence);

void BM_FleetSimulationPerHour(benchmark::State& state) {
    sim::FleetConfig config;
    config.seed = 3;
    const sim::FleetSimulator fleet(config);
    const auto hours = static_cast<double>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(fleet.run(hours));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetSimulationPerHour)->Arg(10)->Arg(100)->Arg(1000);

/// One operational stretch end to end: a single-stretch run() isolates the
/// refactored sim inner loop (batched count draws, columnar incident
/// accumulation) plus the fixed per-run prologue, so regressions in the
/// per-stretch cost are tracked separately from campaign scheduling.
void BM_RunStretch(benchmark::State& state) {
    sim::FleetConfig config;
    config.seed = 3;
    const sim::FleetSimulator fleet(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(fleet.run(1.0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunStretch);

void BM_GarwoodUpperBound(benchmark::State& state) {
    const stats::RateObservation obs{static_cast<std::uint64_t>(state.range(0)), 1e6};
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::rate_upper_bound(obs, 0.95));
    }
}
BENCHMARK(BM_GarwoodUpperBound)->Arg(0)->Arg(10)->Arg(1000);

void BM_MeceCertification(benchmark::State& state) {
    const auto tree = ClassificationTree::paper_example();
    for (auto _ : state) {
        stats::Rng rng(4);
        benchmark::DoNotOptimize(tree.certify_mece(
            static_cast<std::size_t>(state.range(0)),
            [&](std::size_t) { return sample_incident(rng); }));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MeceCertification)->Arg(1000)->Arg(10000);

void BM_GenerateCompleteTypes(benchmark::State& state) {
    const InjuryRiskModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(generate_complete_types(model));
    }
}
BENCHMARK(BM_GenerateCompleteTypes);

void BM_MinimalCutSets(benchmark::State& state) {
    // A representative redundant architecture with k-of-n voting.
    std::vector<std::unique_ptr<quant::ArchNode>> top;
    top.push_back(quant::ArchNode::k_of_n("sensing", 2, 5, Frequency::per_hour(1e-4), 0.1));
    top.push_back(quant::ArchNode::element("arbiter", Frequency::per_hour(1e-9)));
    std::vector<std::unique_ptr<quant::ArchNode>> pair;
    pair.push_back(quant::ArchNode::element("a", Frequency::per_hour(1e-4)));
    pair.push_back(quant::ArchNode::element("b", Frequency::per_hour(1e-4)));
    top.push_back(quant::ArchNode::all_of("planner pair", std::move(pair), 0.5));
    const auto tree = quant::ArchNode::any_of("top", std::move(top));
    for (auto _ : state) {
        benchmark::DoNotOptimize(quant::minimal_cut_sets(*tree));
    }
}
BENCHMARK(BM_MinimalCutSets);

void BM_SprtObserve(benchmark::State& state) {
    for (auto _ : state) {
        stats::PoissonSprt sprt(1e-4, 1e-3, 0.05, 0.05);
        for (int i = 0; i < 1000; ++i) sprt.observe(i % 97 == 0 ? 1 : 0, 1.0);
        benchmark::DoNotOptimize(sprt.decision());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SprtObserve);

void BM_JsonRoundTrip(benchmark::State& state) {
    const InjuryRiskModel model;
    const auto types = generate_complete_types(model);
    const auto document = to_json(types).dump(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(incident_types_from_json(json::parse(document)));
    }
    state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(document.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_CampaignRun(benchmark::State& state) {
    sim::CampaignConfig config;
    config.fleets = 4;
    config.hours_per_fleet = 25.0;
    config.base.seed = 11;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::run_campaign(config));
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CampaignRun);

/// Serial-vs-parallel campaign throughput: the same workload (8 fleets x
/// 50 h) at jobs = range(0). jobs=1 is the serial baseline; the outputs
/// are bit-identical across the arguments, so the only difference the
/// benchmark sees is scheduling.
void BM_CampaignJobs(benchmark::State& state) {
    sim::CampaignConfig config;
    config.fleets = 8;
    config.hours_per_fleet = 50.0;
    config.base.seed = 11;
    config.jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::run_campaign(config));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(config.fleets * config.hours_per_fleet));
}
BENCHMARK(BM_CampaignJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// The same campaign workload with the observability layer armed: the
/// delta against BM_CampaignJobs at the same jobs value IS the
/// instrumentation overhead (budget: < 2%; the hooks are one relaxed
/// atomic load when disarmed and per-chunk registry ops when armed).
void BM_CampaignJobsMetrics(benchmark::State& state) {
    sim::CampaignConfig config;
    config.fleets = 8;
    config.hours_per_fleet = 50.0;
    config.base.seed = 11;
    config.jobs = static_cast<unsigned>(state.range(0));
    obs::set_enabled(true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::run_campaign(config));
    }
    obs::set_enabled(false);
    obs::reset();
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(config.fleets * config.hours_per_fleet));
}
BENCHMARK(BM_CampaignJobsMetrics)->Arg(1)->Arg(4)->UseRealTime();

/// The rare-event path: one clone-and-prune splitting campaign over the
/// fleet severity model (3 levels x range(0) trials, jobs=2). Covers the
/// lineage replay cost - clones re-execute their parents' episode prefixes
/// - on top of the per-encounter resolution the fleet benches measure, so
/// a regression in either the driver bookkeeping or resolve_encounter
/// shows up here scaled by the replay factor.
void BM_SplittingCampaign(benchmark::State& state) {
    sim::FleetConfig fleet;
    fleet.seed = 11;
    const sim::FleetSeverityModel model(fleet);
    sim::SplittingConfig config;
    config.levels = {40.0, 120.0, 210.0};
    config.trials_per_level = static_cast<std::uint64_t>(state.range(0));
    config.seed = 11;
    std::uint64_t trials = 0;
    for (auto _ : state) {
        const auto result = sim::run_splitting(model, config, /*jobs=*/2);
        trials += result.total_trials;
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(static_cast<int64_t>(trials));
}
BENCHMARK(BM_SplittingCampaign)->Arg(100)->Arg(500)->UseRealTime();

/// A synthetic fleet log of `records` validate-passing incidents for the
/// shard codec benchmarks below.
sim::IncidentLog shard_bench_log(std::size_t records) {
    stats::Rng rng(17);
    sim::IncidentLog log;
    for (std::size_t n = 0; n < records; ++n) {
        log.incidents.push_back(sample_incident(rng));
    }
    log.exposure = ExposureHours(static_cast<double>(records));
    return log;
}

std::string shard_bench_path(const char* name) {
    return (std::filesystem::temp_directory_path() /
            (std::string("qrn_bench_") + name + ".qrs"))
        .string();
}

/// The one-pass evidence scan: every per-type count from a single sweep
/// over the incident columns (count_matching_all), per record scanned.
/// This is the path pooled_evidence and evidence_for take after the
/// columnar refactor; the former per-type rescan cost K sweeps.
void BM_EvidenceScan(benchmark::State& state) {
    const auto types = IncidentTypeSet::paper_vru_example();
    const auto log = shard_bench_log(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(log.evidence_for(types));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EvidenceScan)->Arg(10000);

/// Sealed-shard write throughput: header + CRC'd blocks + footer + the
/// atomic rename, end to end, per record.
void BM_ShardWrite(benchmark::State& state) {
    const auto log = shard_bench_log(static_cast<std::size_t>(state.range(0)));
    const std::string path = shard_bench_path("write");
    for (auto _ : state) {
        store::write_shard(path, 0xbe5c, 0, log);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    std::filesystem::remove(path);
}
BENCHMARK(BM_ShardWrite)->Arg(1000)->Arg(10000);

/// Streaming read + checksum verification throughput over a sealed shard,
/// per record; the same path the warm campaign cache and `store verify`
/// take.
void BM_ShardRead(benchmark::State& state) {
    const std::string path = shard_bench_path("read");
    store::write_shard(path, 0xbe5c, 0,
                       shard_bench_log(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state) {
        sim::IncidentLog log;
        benchmark::DoNotOptimize(store::read_shard(path, log));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    std::filesystem::remove(path);
}
BENCHMARK(BM_ShardRead)->Arg(1000)->Arg(10000);

/// The serve daemon's hot path, end to end over loopback: one client
/// streaming classify batches of range(0) records each through a real
/// Server on a Unix-domain socket - frame encode/decode, bounded queue,
/// dispatcher, batch classification and the live shard append - per
/// record. The acceptance floor is 1M records/s at the batched sizes.
void BM_ServeClassify(benchmark::State& state) {
    const auto dir =
        std::filesystem::temp_directory_path() / "qrn_bench_serve";
    std::filesystem::remove_all(dir);
    serve::ServiceConfig service_config;
    service_config.store_dir = (dir / "store").string();
    service_config.shard_roll = 1u << 16;
    auto service = std::make_unique<serve::Service>(
        RiskNorm::paper_example(), IncidentTypeSet::paper_vru_example(),
        service_config);
    serve::ServerConfig server_config;
    server_config.socket_path = (dir / "qrn.sock").string();
    serve::Server server(std::move(service), server_config);
    server.start();
    {
        auto client = serve::Client::connect_unix(server_config.socket_path);
        const auto count = static_cast<std::size_t>(state.range(0));
        std::vector<Incident> batch;
        batch.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            batch.push_back(serve::stream_incident(i));
        }
        for (auto _ : state) {
            auto reply = client.classify_with_retry(1.0, batch);
            if (reply.status != serve::Status::Ok) {
                state.SkipWithError("classify batch rejected");
                break;
            }
            benchmark::DoNotOptimize(reply.rows.data());
        }
        client.close();
    }
    server.drain();
    std::filesystem::remove_all(dir);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeClassify)->Arg(512)->Arg(4096)->UseRealTime();

/// The distributed coordinator's per-campaign scheduling overhead: compile
/// a range(0)-fleet campaign into its work DAG (content keys, topo order,
/// critical-path levels, budget metrics) and drain the ready queue in
/// dispatch order, per fleet node. This is everything the coordinator does
/// besides waiting on workers, so it bounds how small a shard can get
/// before scheduling dominates simulation.
void BM_SchedDispatch(benchmark::State& state) {
    sched::CampaignPlan shape;
    shape.policy = "nominal";
    shape.odd = "urban";
    shape.seed = 11;
    shape.fleets = static_cast<std::uint64_t>(state.range(0));
    shape.hours_per_fleet = 50.0;
    const sim::CampaignConfig config = sched::config_from_plan(shape, 1);
    const sched::CampaignPlan plan = sched::make_plan(
        shape.policy, shape.odd, config, sched::campaign_inputs_digest());
    for (auto _ : state) {
        const sched::Dag dag = sched::build_campaign_dag(plan);
        benchmark::DoNotOptimize(sched::compute_metrics(dag));
        sched::ReadyQueue ready;
        for (const sched::PlanNode& node : plan.nodes) {
            const auto i = *dag.index_of(sched::plan_node_id(node.fleet_index));
            ready.push(sched::ReadyItem{i, dag.level(i), dag.node(i).id});
        }
        while (!ready.empty()) {
            benchmark::DoNotOptimize(ready.pop());
        }
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedDispatch)->Arg(100)->Arg(1000);

/// Collects finished runs so a JSON baseline can be written after the
/// console report. GetAdjustedRealTime() already folds in the per-
/// iteration normalization google-benchmark applies for console output.
class BaselineCollector : public benchmark::BenchmarkReporter {
public:
    bool ReportContext(const Context& context) override {
        return console_.ReportContext(context);
    }

    void ReportRuns(const std::vector<Run>& runs) override {
        console_.ReportRuns(runs);
        for (const Run& run : runs) {
            if (run.error_occurred) continue;
            Entry entry;
            entry.name = run.benchmark_name();
            entry.ns_per_op = run.GetAdjustedRealTime();
            const auto items = run.counters.find("items_per_second");
            if (items != run.counters.end()) entry.items_per_second = items->second;
            entries_.push_back(std::move(entry));
        }
    }

    void Finalize() override { console_.Finalize(); }

    /// Writes `{"benchmarks":[{"name":...,"ns_per_op":...},...]}`.
    /// Returns false when the file cannot be created or the write fails;
    /// main() turns that into a non-zero exit so a lost baseline is loud.
    [[nodiscard]] bool write_json(const std::string& path) const {
        std::ofstream out(path);
        if (!out) {
            std::cerr << "perf_microbench: cannot write " << path << '\n';
            return false;
        }
        out << "{\n  \"benchmarks\": [\n";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const Entry& e = entries_[i];
            out << "    {\"name\": \"" << e.name << "\", \"ns_per_op\": " << e.ns_per_op;
            if (e.items_per_second > 0.0) {
                out << ", \"items_per_second\": " << e.items_per_second;
            }
            out << '}' << (i + 1 < entries_.size() ? "," : "") << '\n';
        }
        out << "  ]\n}\n";
        out.flush();
        if (!out.good()) {
            std::cerr << "perf_microbench: write failed for " << path << '\n';
            return false;
        }
        return true;
    }

private:
    struct Entry {
        std::string name;
        double ns_per_op = 0.0;
        double items_per_second = 0.0;
    };

    benchmark::ConsoleReporter console_;
    std::vector<Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    BaselineCollector collector;
    benchmark::RunSpecifiedBenchmarks(&collector);
    benchmark::Shutdown();
    const char* path = std::getenv("QRN_BENCH_JSON");
    return collector.write_json(path != nullptr ? path : "BENCH_perf.json") ? 0 : 1;
}
