// Performance microbenchmarks (google-benchmark): the hot paths a fleet-
// scale deployment of the toolkit would exercise - incident classification,
// allocation solving, Eq. 1 verification, Monte-Carlo simulation and exact
// interval estimation.
#include <benchmark/benchmark.h>

#include "qrn/qrn.h"
#include "qrn/banding.h"
#include "qrn/serialize.h"
#include "quant/architecture.h"
#include "sim/sim.h"
#include "stats/sequential.h"
#include "stats/rate_estimation.h"
#include "stats/rng.h"

namespace {

using namespace qrn;

Incident sample_incident(stats::Rng& rng) {
    Incident i;
    i.second = actor_type_from_index(
        static_cast<std::size_t>(rng.uniform_int(1, kActorTypeCount - 1)));
    if (rng.bernoulli(0.5)) {
        i.mechanism = IncidentMechanism::NearMiss;
        i.min_distance_m = rng.uniform(0.0, 5.0);
    }
    i.relative_speed_kmh = rng.uniform(0.0, 150.0);
    return i;
}

void BM_ClassifyIncident(benchmark::State& state) {
    const auto tree = ClassificationTree::paper_example();
    stats::Rng rng(1);
    std::vector<Incident> incidents;
    for (int n = 0; n < 1024; ++n) incidents.push_back(sample_incident(rng));
    std::size_t idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.classify(incidents[idx++ & 1023]));
    }
}
BENCHMARK(BM_ClassifyIncident);

void BM_TypeSetClassify(benchmark::State& state) {
    const auto types = IncidentTypeSet::paper_vru_example();
    stats::Rng rng(2);
    std::vector<Incident> incidents;
    for (int n = 0; n < 1024; ++n) incidents.push_back(sample_incident(rng));
    std::size_t idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(types.classify(incidents[idx++ & 1023]));
    }
}
BENCHMARK(BM_TypeSetClassify);

void BM_AllocateWaterFilling(benchmark::State& state) {
    const auto norm = RiskNorm::paper_example();
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});
    const AllocationProblem problem(norm, types, matrix);
    for (auto _ : state) {
        benchmark::DoNotOptimize(allocate_water_filling(problem));
    }
}
BENCHMARK(BM_AllocateWaterFilling);

void BM_VerifyAgainstEvidence(benchmark::State& state) {
    const auto norm = RiskNorm::paper_example();
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});
    const AllocationProblem problem(norm, types, matrix);
    const auto allocation = allocate_water_filling(problem);
    const std::vector<TypeEvidence> evidence{{"I1", 3, ExposureHours(1e7)},
                                             {"I2", 1, ExposureHours(1e7)},
                                             {"I3", 0, ExposureHours(1e7)}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            verify_against_evidence(problem, allocation, evidence, 0.95));
    }
}
BENCHMARK(BM_VerifyAgainstEvidence);

void BM_FleetSimulationPerHour(benchmark::State& state) {
    sim::FleetConfig config;
    config.seed = 3;
    const sim::FleetSimulator fleet(config);
    const auto hours = static_cast<double>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(fleet.run(hours));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetSimulationPerHour)->Arg(10)->Arg(100)->Arg(1000);

void BM_GarwoodUpperBound(benchmark::State& state) {
    const stats::RateObservation obs{static_cast<std::uint64_t>(state.range(0)), 1e6};
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::rate_upper_bound(obs, 0.95));
    }
}
BENCHMARK(BM_GarwoodUpperBound)->Arg(0)->Arg(10)->Arg(1000);

void BM_MeceCertification(benchmark::State& state) {
    const auto tree = ClassificationTree::paper_example();
    for (auto _ : state) {
        stats::Rng rng(4);
        benchmark::DoNotOptimize(tree.certify_mece(
            static_cast<std::size_t>(state.range(0)),
            [&](std::size_t) { return sample_incident(rng); }));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MeceCertification)->Arg(1000)->Arg(10000);

void BM_GenerateCompleteTypes(benchmark::State& state) {
    const InjuryRiskModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(generate_complete_types(model));
    }
}
BENCHMARK(BM_GenerateCompleteTypes);

void BM_MinimalCutSets(benchmark::State& state) {
    // A representative redundant architecture with k-of-n voting.
    std::vector<std::unique_ptr<quant::ArchNode>> top;
    top.push_back(quant::ArchNode::k_of_n("sensing", 2, 5, Frequency::per_hour(1e-4), 0.1));
    top.push_back(quant::ArchNode::element("arbiter", Frequency::per_hour(1e-9)));
    std::vector<std::unique_ptr<quant::ArchNode>> pair;
    pair.push_back(quant::ArchNode::element("a", Frequency::per_hour(1e-4)));
    pair.push_back(quant::ArchNode::element("b", Frequency::per_hour(1e-4)));
    top.push_back(quant::ArchNode::all_of("planner pair", std::move(pair), 0.5));
    const auto tree = quant::ArchNode::any_of("top", std::move(top));
    for (auto _ : state) {
        benchmark::DoNotOptimize(quant::minimal_cut_sets(*tree));
    }
}
BENCHMARK(BM_MinimalCutSets);

void BM_SprtObserve(benchmark::State& state) {
    for (auto _ : state) {
        stats::PoissonSprt sprt(1e-4, 1e-3, 0.05, 0.05);
        for (int i = 0; i < 1000; ++i) sprt.observe(i % 97 == 0 ? 1 : 0, 1.0);
        benchmark::DoNotOptimize(sprt.decision());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SprtObserve);

void BM_JsonRoundTrip(benchmark::State& state) {
    const InjuryRiskModel model;
    const auto types = generate_complete_types(model);
    const auto document = to_json(types).dump(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(incident_types_from_json(json::parse(document)));
    }
    state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(document.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_CampaignRun(benchmark::State& state) {
    sim::CampaignConfig config;
    config.fleets = 4;
    config.hours_per_fleet = 25.0;
    config.base.seed = 11;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::run_campaign(config));
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CampaignRun);

}  // namespace
// main() is provided by benchmark::benchmark_main.
