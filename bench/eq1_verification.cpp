// EQ1: the paper's only equation, run against Monte-Carlo fleet evidence.
//
//   sum_k f_{v_j, I_k} <= f_{v_j}^(acceptable)   for every class v_j,
//
// where the f are estimated from a simulated fleet with exact Poisson
// upper confidence bounds. Sweeps fleet exposure to show how the verdict
// strengthens from VIOLATED-looking (loose bounds) to FULFILLED.
//
// Expected shape: class verdicts improve monotonically with exposure;
// the binding class needs the most hours.
#include <iostream>

#include "qrn/qrn.h"
#include "report/csv.h"
#include "report/table.h"
#include "sim/sim.h"

int main() {
    using namespace qrn;
    using namespace qrn::report;

    std::cout << "EQ1: risk-norm verification against simulated fleet evidence\n\n";

    // A pilot-scale norm the cautious policy can actually meet.
    RiskNorm norm(ConsequenceClassSet::paper_example(),
                  {
                      Frequency::per_hour(5e-1), Frequency::per_hour(2e-1),
                      Frequency::per_hour(5e-2), Frequency::per_hour(1e-2),
                      Frequency::per_hour(5e-3), Frequency::per_hour(3e-3),
                  },
                  "pilot norm");
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});
    const AllocationProblem problem(norm, types, matrix);
    const auto allocation = allocate_water_filling(problem);

    sim::FleetConfig config;
    config.odd = sim::Odd::urban();
    config.policy = sim::TacticalPolicy::cautious();
    config.seed = 77;
    const sim::FleetSimulator fleet(config);

    Table sweep({"exposure (h)", "incidents", "classes fulfilled", "classes point-only",
                 "classes violated", "norm verdict"});
    CsvWriter csv({"hours", "incidents", "fulfilled", "point_only", "violated"});
    int last_fulfilled = -1;
    bool monotone = true;
    for (const double hours : {1000.0, 5000.0, 20000.0, 80000.0}) {
        const auto log = fleet.run(hours);
        const auto report = verify_against_evidence(problem, allocation,
                                                    log.evidence_for(types), 0.95);
        int fulfilled = 0, point_only = 0, violated = 0;
        for (const auto& c : report.classes) {
            switch (c.verdict) {
                case ClassVerdict::Fulfilled: ++fulfilled; break;
                case ClassVerdict::PointFulfilled: ++point_only; break;
                case ClassVerdict::Violated: ++violated; break;
            }
        }
        sweep.add_row({fixed(hours, 0), std::to_string(log.incidents.size()),
                       std::to_string(fulfilled), std::to_string(point_only),
                       std::to_string(violated),
                       report.norm_fulfilled()         ? "FULFILLED"
                       : report.norm_point_fulfilled() ? "POINT-ONLY"
                                                       : "VIOLATED"});
        csv.add_row({fixed(hours, 0), std::to_string(log.incidents.size()),
                     std::to_string(fulfilled), std::to_string(point_only),
                     std::to_string(violated)});
        if (fulfilled < last_fulfilled) monotone = false;
        last_fulfilled = fulfilled;
    }
    std::cout << sweep.render() << '\n';

    // Detailed report at the largest exposure.
    const auto log = fleet.run(80000.0);
    const auto report =
        verify_against_evidence(problem, allocation, log.evidence_for(types), 0.95);
    Table detail({"class", "limit", "point usage", "95% upper usage", "verdict"});
    for (const auto& c : report.classes) {
        detail.add_row({c.class_id, c.limit.to_string(), c.point_usage.to_string(),
                        c.upper_usage.to_string(), std::string(to_string(c.verdict))});
    }
    std::cout << "Detail at 80000 h:\n" << detail.render() << '\n';

    csv.write_file("eq1_sweep.csv");
    std::cout << "series written to eq1_sweep.csv\n\n";
    std::cout << "Shape check vs paper: verdicts strengthen with exposure = "
              << (monotone ? "yes" : "NO (sampling noise)") << "; final norm verdict = "
              << (report.norm_point_fulfilled() ? "point-consistent" : "violated")
              << " -> " << (monotone && report.norm_point_fulfilled() ? "PASS" : "CHECK")
              << '\n';
    return 0;
}
