// SEC5B: the ASIL-inheritance pathology (paper Sec. V).
//
// "A safety goal with attribute ASIL A can in theory be refined to
// thousands of software elements, each having dependent safety requirements
// which will inherit the ASIL rating. This means we can still claim ASIL A
// for the SG, despite having thousands of potential contributing ASIL A
// fault causes."
//
// Expected shape: under inheritance the combined violation frequency
// overruns the goal budget linearly in the element count; the quantitative
// equal split keeps the combination exactly at the budget while per-element
// budgets tighten as 1/N.
#include <cmath>
#include <iostream>

#include "quant/asil_compare.h"
#include "report/csv.h"
#include "report/table.h"

int main() {
    using namespace qrn;
    using namespace qrn::quant;
    using namespace qrn::report;

    std::cout << "SEC5B: ASIL inheritance vs quantitative budget split\n\n";

    Table table({"elements", "claimed per element", "combined rate (inheritance)",
                 "goal budget", "overrun", "sound per-element budget"});
    CsvWriter csv({"elements", "combined_rate", "goal_budget", "overrun",
                   "per_element_budget"});
    bool linear = true;
    double prev_overrun = 0.0;
    std::size_t prev_count = 0;
    for (const auto& row : compare_inheritance(
             hara::Asil::A, {1, 10, 100, 1000, 10000})) {
        table.add_row({std::to_string(row.element_count),
                       std::string(hara::to_string(row.claimed)),
                       row.combined_rate.to_string(), row.goal_budget.to_string(),
                       fixed(row.overrun, 1) + "x",
                       row.per_element_budget.to_string()});
        csv.add_row({std::to_string(row.element_count),
                     scientific(row.combined_rate.per_hour_value(), 3),
                     scientific(row.goal_budget.per_hour_value(), 3),
                     fixed(row.overrun, 2),
                     scientific(row.per_element_budget.per_hour_value(), 3)});
        if (prev_count > 0) {
            const double expected =
                prev_overrun * static_cast<double>(row.element_count) /
                static_cast<double>(prev_count);
            linear = linear && std::abs(row.overrun - expected) < 1e-6 * expected;
        }
        prev_overrun = row.overrun;
        prev_count = row.element_count;
    }
    std::cout << table.render() << '\n';

    csv.write_file("sec5_inheritance.csv");
    std::cout << "series written to sec5_inheritance.csv\n\n";
    std::cout << "Shape check vs paper: inheritance overrun grows linearly in N = "
              << (linear ? "yes" : "NO")
              << "; quantitative split keeps the combination at the budget by "
                 "construction -> "
              << (linear ? "PASS" : "FAIL") << '\n';
    return linear ? 0 : 1;
}
