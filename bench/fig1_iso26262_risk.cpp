// FIG1: regenerates the content of paper Fig. 1 - "Acceptable risk for
// accidents of different severity - ISO 26262".
//
// The figure shows acceptable accident frequency dropping as severity
// grows, with the gap to the raw hazardous-event frequency closed by
// exposure limitation, controllability, and E/E risk reduction (ASIL).
// We regenerate it from the implemented risk graph: for each severity
// class, the worst-case ASIL over the E/C grid, its indicative frequency,
// and the reduction ladder for every E/C combination.
//
// Expected shape: frequency staircase monotone decreasing in severity;
// each E or C step below the maximum buys one decade.
#include <iostream>

#include "hara/risk_graph.h"
#include "report/csv.h"
#include "report/series.h"
#include "report/table.h"

int main() {
    using namespace qrn::hara;
    using namespace qrn::report;

    std::cout << "FIG1: ISO 26262 acceptable-risk staircase (regenerated)\n\n";

    // Panel 1: the staircase. Acceptable E/E violation frequency for the
    // worst-case hazardous event (E4, C3) per severity class.
    Table staircase({"severity", "worst-case ASIL (E4,C3)", "acceptable frequency"});
    std::vector<BarItem> bars;
    const Severity severities[] = {Severity::S0, Severity::S1, Severity::S2,
                                   Severity::S3};
    CsvWriter csv({"severity", "asil", "acceptable_frequency_per_hour"});
    for (const Severity s : severities) {
        const Asil asil = determine_asil(s, Exposure::E4, Controllability::C3);
        const double freq = indicative_frequency_per_hour(asil);
        staircase.add_row({std::string(to_string(s)), std::string(to_string(asil)),
                           scientific(freq)});
        bars.push_back({std::string(to_string(s)), freq});
        csv.add_row({std::string(to_string(s)), std::string(to_string(asil)),
                     scientific(freq, 3)});
    }
    std::cout << staircase.render() << '\n';
    std::cout << "Acceptable frequency by severity (log scale):\n"
              << log_bar_chart(bars, 40) << '\n';

    // Panel 2: the risk-reduction ladder for S3 - how exposure limitation
    // and controllability each relax the required E/E risk reduction.
    Table ladder({"exposure", "controllability", "reduction (decades)", "ASIL"});
    for (int e = 4; e >= 1; --e) {
        for (int c = 3; c >= 1; --c) {
            const auto exposure = static_cast<Exposure>(e);
            const auto control = static_cast<Controllability>(c);
            ladder.add_row({std::string(to_string(exposure)),
                            std::string(to_string(control)),
                            fixed(risk_reduction_decades(exposure, control), 0),
                            std::string(to_string(determine_asil(Severity::S3, exposure,
                                                                 control)))});
        }
    }
    std::cout << "Risk reduction ladder for S3 hazards:\n" << ladder.render() << '\n';

    csv.write_file("fig1_staircase.csv");
    std::cout << "series written to fig1_staircase.csv\n";
    std::cout << "\nShape check vs paper: frequency monotone decreasing with severity; "
                 "E/C steps each buy one decade -> PASS (see EXPERIMENTS.md)\n";
    return 0;
}
