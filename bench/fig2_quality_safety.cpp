// FIG2: regenerates the content of paper Fig. 2 - "Safety and incident
// quality - acceptable risk": one monotone frequency-vs-severity norm
// spanning quality consequences (perceived safety, emergency manoeuvres,
// material damage) and safety consequences (injury classes), with the
// paper's example incidents attached to each class.
//
// Expected shape: quality classes sit at strictly higher acceptable
// frequencies than every safety class; frequency monotone decreasing along
// the severity axis.
#include <iostream>

#include "qrn/risk_norm.h"
#include "report/csv.h"
#include "report/series.h"
#include "report/table.h"

int main() {
    using namespace qrn;
    using namespace qrn::report;

    std::cout << "FIG2: unified quality + safety acceptable-risk curve (regenerated)\n\n";
    const auto norm = RiskNorm::paper_example();

    Table table({"class", "name", "domain", "example incident", "acceptable frequency"});
    std::vector<BarItem> bars;
    CsvWriter csv({"class", "domain", "severity_rank", "acceptable_frequency_per_hour"});
    for (std::size_t j = 0; j < norm.size(); ++j) {
        const auto entry = norm.entry(j);
        table.add_row({entry.consequence_class.id, entry.consequence_class.name,
                       std::string(to_string(entry.consequence_class.domain)),
                       entry.consequence_class.example, entry.limit.to_string()});
        bars.push_back({entry.consequence_class.id, entry.limit.per_hour_value()});
        csv.add_row({entry.consequence_class.id,
                     std::string(to_string(entry.consequence_class.domain)),
                     std::to_string(entry.consequence_class.rank),
                     scientific(entry.limit.per_hour_value(), 3)});
    }
    std::cout << table.render() << '\n';
    std::cout << "Acceptable frequency along the severity axis (log scale):\n"
              << log_bar_chart(bars, 40) << '\n';

    // Machine check of the figure's two claims.
    bool monotone = true;
    for (std::size_t j = 1; j < norm.size(); ++j) {
        monotone = monotone && norm.limit(j) <= norm.limit(j - 1);
    }
    const auto min_quality_limit = norm.limit_by_id("vQ3");
    const auto max_safety_limit = norm.limit_by_id("vS1");
    const bool quality_left_of_safety = max_safety_limit < min_quality_limit;

    csv.write_file("fig2_norm.csv");
    std::cout << "series written to fig2_norm.csv\n\n";
    std::cout << "Shape check vs paper: monotone decreasing = "
              << (monotone ? "yes" : "NO") << "; quality classes above safety classes = "
              << (quality_left_of_safety ? "yes" : "NO") << " -> "
              << (monotone && quality_left_of_safety ? "PASS" : "FAIL") << '\n';
    return monotone && quality_left_of_safety ? 0 : 1;
}
