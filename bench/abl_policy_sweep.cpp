// ABL2: proactive-vs-reactive trade-off sweep (paper Sec. II-B(3)).
//
// "More focus on proactive capability would result in less frequent
// situations where we need to brake significantly harder than 4 m/s^2."
// Sweeps the anticipation horizon and the VRU speed-adaptation strength of
// the tactical policy and measures emergency-braking exposure and incident
// rates on the simulated fleet.
//
// Expected shape: both emergency-braking frequency and incident rate fall
// monotonically (modulo Monte-Carlo noise) as proactivity increases.
#include <iostream>

#include "report/csv.h"
#include "report/table.h"
#include "sim/sim.h"

int main() {
    using namespace qrn;
    using namespace qrn::report;

    std::cout << "ABL2: proactive-vs-reactive policy sweep\n\n";
    const double hours = 3000.0;

    Table horizon_table({"anticipation horizon (s)", "emergency brakings/h",
                         "incidents/h", "collisions/h"});
    CsvWriter csv({"knob", "value", "emergency_per_h", "incidents_per_h",
                   "collisions_per_h"});
    double first_rate = -1.0, last_rate = -1.0;
    for (const double horizon : {1.0, 2.0, 4.0, 6.0, 8.0}) {
        sim::FleetConfig config;
        config.odd = sim::Odd::urban();
        config.policy = sim::TacticalPolicy::nominal();
        config.policy.anticipation_horizon_s = horizon;
        config.seed = 555;
        const auto log = sim::FleetSimulator(config).run(hours);
        std::size_t collisions = 0;
        for (const auto& incident : log.incidents) {
            collisions += incident.mechanism == IncidentMechanism::Collision;
        }
        const double emergency = static_cast<double>(log.emergency_brakings) / hours;
        horizon_table.add_row({fixed(horizon, 1), fixed(emergency, 3),
                               fixed(static_cast<double>(log.incidents.size()) / hours, 4),
                               fixed(static_cast<double>(collisions) / hours, 4)});
        csv.add_row({"anticipation_horizon_s", fixed(horizon, 1), fixed(emergency, 4),
                     fixed(static_cast<double>(log.incidents.size()) / hours, 5),
                     fixed(static_cast<double>(collisions) / hours, 5)});
        if (first_rate < 0.0) first_rate = emergency;
        last_rate = emergency;
    }
    std::cout << horizon_table.render() << '\n';
    const bool horizon_helps = last_rate < first_rate;

    Table adapt_table({"VRU speed adaptation", "cruise speed in busy zone (km/h)",
                       "incidents/h"});
    double first_incidents = -1.0, last_incidents = -1.0;
    for (const double adaptation : {0.0, 0.15, 0.3, 0.45}) {
        sim::FleetConfig config;
        config.odd = sim::Odd::urban();
        config.policy = sim::TacticalPolicy::nominal();
        config.policy.vru_speed_adaptation = adaptation;
        config.seed = 556;
        const auto log = sim::FleetSimulator(config).run(hours);
        sim::Environment busy;
        busy.speed_limit_kmh = 50.0;
        busy.vru_density = 4.0;
        adapt_table.add_row(
            {fixed(adaptation, 2),
             fixed(config.policy.cruise_speed_kmh(busy, config.odd), 1),
             fixed(static_cast<double>(log.incidents.size()) / hours, 4)});
        csv.add_row({"vru_speed_adaptation", fixed(adaptation, 2), "",
                     fixed(static_cast<double>(log.incidents.size()) / hours, 5), ""});
        if (first_incidents < 0.0) {
            first_incidents = static_cast<double>(log.incidents.size()) / hours;
        }
        last_incidents = static_cast<double>(log.incidents.size()) / hours;
    }
    std::cout << adapt_table.render() << '\n';
    const bool adaptation_helps = last_incidents < first_incidents;

    csv.write_file("abl_policy_sweep.csv");
    std::cout << "series written to abl_policy_sweep.csv\n\n";
    std::cout << "Shape check vs paper: longer anticipation -> fewer emergency "
                 "brakings = "
              << (horizon_helps ? "yes" : "NO")
              << "; stronger VRU adaptation -> fewer incidents = "
              << (adaptation_helps ? "yes" : "NO") << " -> "
              << (horizon_helps && adaptation_helps ? "PASS" : "CHECK") << '\n';
    return 0;
}
