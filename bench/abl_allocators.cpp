// ABL1: allocation-solver ablation (a design choice DESIGN.md calls out).
//
// The paper frames budget determination as "an allocation process" but does
// not prescribe a solver. This bench compares the four implemented policies
// on the running example and on an ethically-constrained variant, reporting
// the budget each incident type receives, per-class headroom, and whether
// Eq. 1 and the fairness cap hold.
//
// Expected shape: all solvers feasible; water filling dominates plain
// proportional scaling in the non-binding types; the ethical cap reshapes
// budgets without breaking feasibility.
#include <iostream>

#include "qrn/qrn.h"
#include "report/csv.h"
#include "report/table.h"

namespace {

void report_case(const char* title, const qrn::AllocationProblem& problem,
                 qrn::report::CsvWriter& csv) {
    using namespace qrn;
    using namespace qrn::report;

    std::cout << "--- " << title << " ---\n";
    const std::vector<Frequency> demands(problem.types().size(),
                                         Frequency::per_hour(1e-2));
    const Allocation allocations[] = {
        allocate_proportional(problem),
        allocate_inverse_cost(problem),
        allocate_water_filling(problem),
        allocate_tightening(problem, demands),
    };
    Table table({"solver", "f_I1", "f_I2", "f_I3", "min headroom", "Eq. 1"});
    for (const auto& a : allocations) {
        table.add_row({a.solver, a.budgets[0].to_string(), a.budgets[1].to_string(),
                       a.budgets[2].to_string(), percent(a.min_headroom()),
                       satisfies_norm(problem, a.budgets) ? "holds" : "VIOLATED"});
        csv.add_row({title, a.solver, scientific(a.budgets[0].per_hour_value(), 3),
                     scientific(a.budgets[1].per_hour_value(), 3),
                     scientific(a.budgets[2].per_hour_value(), 3),
                     fixed(a.min_headroom(), 4)});
    }
    std::cout << table.render() << '\n';
}

}  // namespace

int main() {
    using namespace qrn;

    std::cout << "ABL1: allocation-solver comparison\n\n";
    const auto norm = RiskNorm::paper_example();
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});

    report::CsvWriter csv({"case", "solver", "f_I1", "f_I2", "f_I3", "min_headroom"});
    report_case("unconstrained", AllocationProblem(norm, types, matrix), csv);
    report_case("ethical cap 50% per class",
                AllocationProblem(norm, types, matrix, {},
                                  EthicalConstraint{0.5}),
                csv);
    report_case("weighted 4:2:1 (urban shuttle demand profile)",
                AllocationProblem(norm, types, matrix, {4.0, 2.0, 1.0}), csv);

    csv.write_file("abl_allocators.csv");
    std::cout << "series written to abl_allocators.csv\n";
    return 0;
}
