// FIG4: regenerates the content of paper Fig. 4 - "Example incident
// classification" - and attaches the machine-checked MECE certificate that
// the paper's completeness argument rests on: one million randomly sampled
// incidents, each accepted by exactly one child at every tree level.
//
// Expected shape: the full Fig. 4 tree (ego-involved and induced halves)
// with zero gaps and zero overlaps over the sampled population.
#include <iostream>
#include <map>
#include <string>

#include "exec/parallel.h"
#include "qrn/banding.h"
#include "qrn/classification.h"
#include "qrn/incident_type.h"
#include "qrn/injury_risk.h"
#include "report/csv.h"
#include "report/table.h"
#include "stats/rng.h"

namespace {

qrn::Incident random_incident(qrn::stats::Rng& rng) {
    using namespace qrn;
    Incident i;
    if (rng.bernoulli(0.6)) {
        i.first = ActorType::EgoVehicle;
        i.second = actor_type_from_index(
            static_cast<std::size_t>(rng.uniform_int(1, kActorTypeCount - 1)));
    } else {
        i.first = actor_type_from_index(
            static_cast<std::size_t>(rng.uniform_int(1, kActorTypeCount - 1)));
        i.second = actor_type_from_index(
            static_cast<std::size_t>(rng.uniform_int(1, kActorTypeCount - 1)));
        i.ego_causing_factor = true;
    }
    if (rng.bernoulli(0.5)) {
        i.mechanism = IncidentMechanism::Collision;
        i.relative_speed_kmh = rng.uniform(0.0, 200.0);
    } else {
        i.mechanism = IncidentMechanism::NearMiss;
        i.relative_speed_kmh = rng.uniform(0.0, 200.0);
        i.min_distance_m = rng.uniform(0.0, 10.0);
    }
    return i;
}

/// Index-pure variant: incident n is a function of (seed, n) alone, so the
/// certification and coverage scans can run on any number of threads with
/// identical output.
qrn::Incident incident_at(std::uint64_t seed, std::size_t n) {
    auto rng = qrn::stats::Rng::stream(seed, n);
    return random_incident(rng);
}

}  // namespace

int main() {
    using namespace qrn;
    using namespace qrn::report;

    std::cout << "FIG4: example incident classification + MECE certificate "
                 "(regenerated)\n\n";
    const auto tree = ClassificationTree::paper_example();
    std::cout << tree.render() << '\n';

    // Leaf census over one million sampled incidents; incident n comes
    // from stream (kSeed, n), so the census and the parallel certificate
    // below see exactly the same population.
    constexpr std::uint64_t kSeed = 0xF16'4;
    constexpr std::size_t kSamples = 1'000'000;
    const unsigned jobs = exec::default_jobs();
    std::map<std::string, std::size_t> census;
    for (std::size_t n = 0; n < kSamples; ++n) {
        census[tree.classify(incident_at(kSeed, n)).leaf()]++;
    }

    const auto certificate = tree.certify_mece(
        kSamples, [](std::size_t n) { return incident_at(kSeed, n); }, 10, jobs);

    Table table({"leaf", "sampled incidents", "share"});
    CsvWriter csv({"leaf", "count", "share"});
    for (const auto& leaf : tree.leaves()) {
        const auto count = census.count(leaf.leaf()) != 0 ? census.at(leaf.leaf()) : 0;
        const double share = static_cast<double>(count) / kSamples;
        table.add_row({leaf.joined(), std::to_string(count), percent(share, 2)});
        csv.add_row({leaf.leaf(), std::to_string(count), percent(share, 4)});
    }
    std::cout << table.render() << '\n';

    std::cout << "MECE certificate: " << certificate.samples << " samples, "
              << certificate.violations.size() << " violations -> "
              << (certificate.certified() ? "CERTIFIED" : "FAILED") << '\n';

    // Beyond MECE: which leaves do the defined incident types actually
    // constrain? The paper's I1/I2/I3 example leaves every non-VRU leaf as
    // a gap; the banding-generated complete catalog closes the ego half.
    const auto paper_types = IncidentTypeSet::paper_vru_example();
    const auto paper_cov = check_type_coverage(
        tree, paper_types, 100000,
        [](std::size_t n) { return incident_at(kSeed, n); }, jobs);
    const InjuryRiskModel injury_model;
    const auto generated_types = generate_complete_types(injury_model);
    const auto generated_cov = check_type_coverage(
        tree, generated_types, 100000,
        [](std::size_t n) { return incident_at(kSeed, n); }, jobs);
    Table coverage({"leaf", "covered by paper I1-I3", "covered by generated catalog"});
    for (std::size_t i = 0; i < paper_cov.leaves.size(); ++i) {
        coverage.add_row({paper_cov.leaves[i].leaf,
                          percent(paper_cov.leaves[i].fraction()),
                          percent(generated_cov.leaves[i].fraction())});
    }
    std::cout << "\nSafety-goal coverage per leaf (gaps a real study must close):\n"
              << coverage.render() << '\n';
    csv.write_file("fig4_census.csv");
    std::cout << "series written to fig4_census.csv\n\n";

    // Every leaf of the paper's figure must actually be populated.
    bool all_populated = true;
    for (const auto& leaf : tree.leaves()) {
        all_populated = all_populated && census.count(leaf.leaf()) != 0;
    }
    std::cout << "Shape check vs paper: full Fig. 4 leaf set populated = "
              << (all_populated ? "yes" : "NO") << "; MECE holds = "
              << (certificate.certified() ? "yes" : "NO") << " -> "
              << (all_populated && certificate.certified() ? "PASS" : "FAIL") << '\n';
    return all_populated && certificate.certified() ? 0 : 1;
}
