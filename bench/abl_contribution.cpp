// ABL4: contribution-fraction provenance ablation.
//
// The paper requires the incident->consequence assignment to be "well
// substantiated" from data. This bench compares the two substantiation
// paths the toolkit offers for the same world: (a) analytic band averages
// of the injury-risk model (from_injury_model) and (b) empirical estimation
// from a labelled synthetic incident database (empirical.h), and shows how
// the resulting allocations and safety-goal budgets agree as the database
// grows.
//
// Expected shape: empirical fractions and budgets converge to the analytic
// ones as the sample grows; small databases give noisy budgets - the reason
// a real safety case needs the conservative upper bounds.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "exec/parallel.h"
#include "qrn/empirical.h"
#include "qrn/qrn.h"
#include "report/csv.h"
#include "report/table.h"

int main() {
    using namespace qrn;
    using namespace qrn::report;

    std::cout << "ABL4: analytic vs empirical contribution fractions\n\n";

    const auto norm = RiskNorm::paper_example();
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel model;
    const auto analytic =
        ContributionMatrix::from_injury_model(norm, types, model, {0.6, 0.4});
    const AllocationProblem analytic_problem(norm, types, analytic);
    const auto analytic_alloc = allocate_water_filling(analytic_problem);

    Table table({"database size", "max |fraction error|", "I2 budget (empirical)",
                 "I2 budget (analytic)", "budget ratio"});
    CsvWriter csv({"samples", "max_fraction_error", "i2_budget_empirical",
                   "i2_budget_analytic"});
    const auto i2 = types.index_of("I2").value();
    double last_err = 1.0;
    bool shrinking = true;
    for (const int per_band : {200, 2000, 20000, 200000}) {
        stats::Rng rng(2468);
        std::vector<Incident> incidents;
        incidents.reserve(static_cast<std::size_t>(per_band) * 3);
        for (int i = 0; i < per_band; ++i) {
            Incident low;
            low.second = ActorType::Vru;
            low.relative_speed_kmh = rng.uniform(1e-6, 10.0);
            incidents.push_back(low);
            Incident high = low;
            high.relative_speed_kmh = rng.uniform(10.0, 70.0);
            incidents.push_back(high);
            Incident nm;
            nm.second = ActorType::Vru;
            nm.mechanism = IncidentMechanism::NearMiss;
            nm.min_distance_m = rng.uniform(0.0, 1.0);
            nm.relative_speed_kmh = rng.uniform(10.0, 40.0);
            incidents.push_back(nm);
        }
        // Stream-seeded overload: incident i labels from stream(2468, i),
        // in parallel chunks, independent of the incident count above.
        const auto labelled = label_incidents(incidents, norm, model, {0.6, 0.4},
                                              std::uint64_t{2468},
                                              qrn::exec::default_jobs());
        const auto counts = tally_contributions(labelled, types, norm.size());
        const auto empirical = counts.point_matrix();

        double max_err = 0.0;
        for (std::size_t j = 0; j < norm.size(); ++j) {
            for (std::size_t k = 0; k < types.size(); ++k) {
                max_err = std::max(max_err, std::fabs(empirical.fraction(j, k) -
                                                      analytic.fraction(j, k)));
            }
        }
        const AllocationProblem empirical_problem(norm, types, empirical);
        const auto empirical_alloc = allocate_water_filling(empirical_problem);
        const double ratio = empirical_alloc.budgets[i2].per_hour_value() /
                             analytic_alloc.budgets[i2].per_hour_value();
        table.add_row({std::to_string(incidents.size()), fixed(max_err, 4),
                       empirical_alloc.budgets[i2].to_string(),
                       analytic_alloc.budgets[i2].to_string(), fixed(ratio, 3)});
        csv.add_row({std::to_string(incidents.size()), fixed(max_err, 5),
                     scientific(empirical_alloc.budgets[i2].per_hour_value(), 3),
                     scientific(analytic_alloc.budgets[i2].per_hour_value(), 3)});
        if (per_band >= 20000) shrinking = shrinking && max_err <= last_err;
        last_err = max_err;
    }
    std::cout << table.render() << '\n';

    csv.write_file("abl_contribution.csv");
    std::cout << "series written to abl_contribution.csv\n\n";
    std::cout << "Shape check vs paper: empirical fractions converge to the analytic "
                 "band averages = "
              << (last_err < 0.01 && shrinking ? "yes" : "NO") << " -> "
              << (last_err < 0.01 ? "PASS" : "FAIL") << '\n';
    return last_err < 0.01 ? 0 : 1;
}
