// FIG3: regenerates the content of paper Fig. 3 - "A risk norm based on
// consequence classes and incident types": per-class frequency budgets with
// the stacked contributions f_{v,I} of each incident type, produced by the
// allocation engine rather than drawn by hand.
//
// Expected shape: within every class the stacked incident-type
// contributions stay at or below the class budget (Eq. 1); the stack for
// the binding class touches its budget line.
#include <iostream>

#include "qrn/qrn.h"
#include "report/csv.h"
#include "report/series.h"
#include "report/table.h"

int main() {
    using namespace qrn;
    using namespace qrn::report;

    std::cout << "FIG3: risk norm with stacked incident-type contributions "
                 "(regenerated)\n\n";

    const auto norm = RiskNorm::paper_example();
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});
    const AllocationProblem problem(norm, types, matrix);
    const auto allocation = allocate_water_filling(problem);

    Table table({"class", "limit", "used", "utilization", "contributors"});
    std::vector<StackedBar> bars;
    CsvWriter csv({"class", "incident_type", "contribution_per_hour", "class_limit"});
    for (std::size_t j = 0; j < norm.size(); ++j) {
        const auto& usage = allocation.usage[j];
        std::string contributors;
        StackedBar bar;
        bar.label = usage.class_id;
        bar.limit = usage.limit.per_hour_value();
        for (std::size_t k = 0; k < types.size(); ++k) {
            const double f =
                matrix.fraction(j, k) * allocation.budgets[k].per_hour_value();
            bar.segments.push_back({types.at(k).id(), f});
            if (matrix.fraction(j, k) > 0.0) {
                if (!contributors.empty()) contributors += ", ";
                contributors += types.at(k).id();
            }
            csv.add_row({usage.class_id, types.at(k).id(), scientific(f, 3),
                         scientific(bar.limit, 3)});
        }
        bars.push_back(std::move(bar));
        table.add_row({usage.class_id, usage.limit.to_string(), usage.used.to_string(),
                       percent(usage.utilization), contributors});
    }
    std::cout << table.render() << '\n';
    std::cout << "Stacked contributions vs budgets ('|' = class budget):\n"
              << stacked_bar_chart(bars, 46) << '\n';

    bool eq1 = satisfies_norm(problem, allocation.budgets);
    bool binding = false;
    for (const auto& u : allocation.usage) binding = binding || u.utilization > 0.999;
    csv.write_file("fig3_contributions.csv");
    std::cout << "series written to fig3_contributions.csv\n\n";
    std::cout << "Shape check vs paper: Eq. 1 holds in every class = "
              << (eq1 ? "yes" : "NO") << "; some class binds its budget = "
              << (binding ? "yes" : "NO") << " -> " << (eq1 && binding ? "PASS" : "FAIL")
              << '\n';
    return eq1 && binding ? 0 : 1;
}
