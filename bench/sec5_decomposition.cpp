// SEC5A: quantitative decomposition vs ASIL decomposition (paper Sec. V).
//
// Redundant sensing/prediction channels whose individual violation rates
// are only QM-grade combine - through proper frequency arithmetic with a
// common exposure window - to meet vehicle-level budgets that ISO 26262's
// qualitative decomposition schemes cannot express.
//
// Expected shape: combined rate falls by orders of magnitude per added
// channel; the "ASIL rules applicable" column is almost entirely 'no'.
#include <iostream>

#include "quant/asil_compare.h"
#include "report/csv.h"
#include "report/table.h"

int main() {
    using namespace qrn;
    using namespace qrn::quant;
    using namespace qrn::report;

    std::cout << "SEC5A: redundancy credit - quantitative vs ASIL rules\n\n";

    const auto target = Frequency::per_hour(1e-8);  // ASIL-D-grade budget
    Table table({"channel rate", "channel band", "architecture", "combined rate",
                 "combined band", "meets 1e-8", "ASIL rules"});
    CsvWriter csv({"channel_rate", "copies", "combined_rate", "meets_target",
                   "asil_rules_applicable"});
    std::size_t classically_expressible = 0, rows_total = 0;
    bool monotone = true;
    for (const double rate : {1e-3, 1e-4, 1e-5}) {
        const auto channel = Frequency::per_hour(rate);
        Frequency prev = Frequency::per_hour(1.0);
        for (const auto& row :
             compare_redundancy(channel, 0.1, {1, 2, 3, 4}, target)) {
            table.add_row({row.channel_rate.to_string(),
                           std::string(hara::to_string(row.channel_band)),
                           row.architecture, row.combined_rate.to_string(),
                           std::string(hara::to_string(row.combined_band)),
                           row.combined_rate <= target ? "yes" : "no",
                           row.asil_rules_applicable ? "expressible" : "no"});
            csv.add_row({scientific(rate, 1), row.architecture,
                         scientific(row.combined_rate.per_hour_value(), 3),
                         row.combined_rate <= target ? "1" : "0",
                         row.asil_rules_applicable ? "1" : "0"});
            monotone = monotone && row.combined_rate <= prev;
            prev = row.combined_rate;
            classically_expressible += row.asil_rules_applicable ? 1 : 0;
            ++rows_total;
        }
        table.add_separator();
    }
    std::cout << table.render() << '\n';

    csv.write_file("sec5_decomposition.csv");
    std::cout << "series written to sec5_decomposition.csv\n\n";
    std::cout << "Shape check vs paper: combined rate monotone in copies = "
              << (monotone ? "yes" : "NO") << "; QM-grade channels reach the budget "
              << "while the classical rules express " << classically_expressible << "/"
              << rows_total << " of these architectures -> "
              << (monotone && classically_expressible == 0 ? "PASS" : "CHECK") << '\n';
    return 0;
}
