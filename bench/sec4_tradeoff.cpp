// SEC4: the solution-domain trade-off of paper Sec. IV.
//
// "This way of working gives considerable freedom to define a safety
// strategy using trade-offs between performance of sensors/actuators,
// driving style (e.g. cautionary vs. performance) and verification effort
// (e.g. adjusting critical ODD parameters to ease difficult verification
// tasks)."
//
// Evaluates the standard design options (style x sensing x ODD) against an
// allocated QRN and reports, per option, the worst goal utilization and the
// verification effort.
//
// Expected shape: moving along any axis toward safety (cautious style,
// premium sensing, restricted ODD) reduces the worst utilization; several
// distinct designs meet the same goals - the freedom the paper promises.
#include <iostream>

#include "fsc/tradeoff.h"
#include "report/csv.h"
#include "report/table.h"

int main() {
    using namespace qrn;
    using namespace qrn::report;

    std::cout << "SEC4: design-space trade-offs under one risk norm\n\n";

    RiskNorm norm(ConsequenceClassSet::paper_example(),
                  {
                      Frequency::per_hour(1.0), Frequency::per_hour(5e-1),
                      Frequency::per_hour(2e-1), Frequency::per_hour(1e-1),
                      Frequency::per_hour(5e-2), Frequency::per_hour(2e-2),
                  },
                  "trade-off norm");
    const auto types = IncidentTypeSet::paper_vru_example();
    const InjuryRiskModel injury;
    const auto matrix =
        ContributionMatrix::from_injury_model(norm, types, injury, {0.6, 0.4});
    const AllocationProblem problem(norm, types, matrix);
    const auto allocation = allocate_water_filling(problem);

    const auto options = fsc::standard_options();
    const auto evals = fsc::explore(problem, allocation, options, 8000.0, 321);

    Table table({"design option", "incidents/h", "worst goal util.", "goals met",
                 "verification hours"});
    CsvWriter csv({"option", "incidents_per_h", "worst_util", "goals_met",
                   "verification_hours"});
    for (const auto& e : evals) {
        table.add_row({e.name, scientific(e.incident_rate.per_hour_value(), 2),
                       percent(e.worst_goal_utilization),
                       e.goals_point_met ? "yes" : "no",
                       fixed(e.verification_hours, 0)});
        csv.add_row({e.name, scientific(e.incident_rate.per_hour_value(), 4),
                     fixed(e.worst_goal_utilization, 4),
                     e.goals_point_met ? "1" : "0", fixed(e.verification_hours, 0)});
    }
    std::cout << table.render() << '\n';

    // Axis checks: cautious < nominal < performance on worst utilization;
    // premium sensing and ODD restriction each improve on nominal.
    const auto util = [&](std::size_t i) { return evals[i].worst_goal_utilization; };
    const bool style_axis = util(2) < util(1) && util(1) < util(0);
    const bool sensing_axis = util(3) <= util(1);
    const bool odd_axis = util(4) < util(1);
    const bool freedom = [&] {
        int met = 0;
        for (const auto& e : evals) met += e.goals_point_met;
        return met >= 2;  // more than one admissible design
    }();

    csv.write_file("sec4_tradeoff.csv");
    std::cout << "series written to sec4_tradeoff.csv\n\n";
    std::cout << "Shape check vs paper: driving-style axis monotone = "
              << (style_axis ? "yes" : "NO")
              << "; sensing upgrade helps = " << (sensing_axis ? "yes" : "NO")
              << "; ODD restriction helps = " << (odd_axis ? "yes" : "NO")
              << "; multiple admissible designs = " << (freedom ? "yes" : "NO") << " -> "
              << (style_axis && sensing_axis && odd_axis && freedom ? "PASS" : "CHECK")
              << '\n';
    return 0;
}
